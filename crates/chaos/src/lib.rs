//! # aria-chaos — deterministic fault injection for the untrusted boundary
//!
//! The Aria threat model (paper §III) assumes the *host* controls every
//! byte outside the enclave: the untrusted heap the sealed entries live
//! in, the Merkle-protected counter area, the allocator's free lists.
//! This crate turns that adversary into a reproducible test fixture.
//!
//! A [`FaultPlan`] names a set of injection **sites** ([`FaultSite`]),
//! a per-site rate, a global budget and a seed. A [`ChaosEngine`] built
//! from the plan answers one question — [`ChaosEngine::try_inject`] —
//! from per-site splitmix64 streams, so the *n*-th decision at a given
//! site depends only on `(seed, site, n)`. Re-running the same driver
//! with the same plan replays the exact same injection schedule.
//!
//! Two kinds of faults are produced:
//!
//! * **Write-path faults** ([`HeapInjector`]) hook the untrusted heap's
//!   write path via [`aria_mem::WriteFault`]: single-bit flips inside a
//!   sealed entry's MAC-covered region ([`FaultSite::EntryFlip`]) and
//!   torn multi-slot stores that persist only a prefix
//!   ([`FaultSite::TornWrite`]).
//! * **Driver-side faults** — stale Merkle node replays, node bit
//!   flips, index-connection pointer swaps, free-list metadata tampering
//!   — are performed by the test driver (see the `chaosbench` binary in
//!   `aria-bench`) which consults the same engine for *when* to strike,
//!   keeping the whole schedule under one seed.
//!
//! Nothing in this crate knows how to *detect* faults; detection is the
//! job of the layers above (entry MACs, Merkle paths, allocator bitmap
//! audits) and the point of injecting is to prove they do.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use aria_mem::{UPtr, UserHeap, WriteFault};

/// splitmix64 — the same mixer the sharded front-end uses for key
/// placement; good enough statistics, trivially reproducible.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A named place in the untrusted boundary where a fault can land.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum FaultSite {
    /// Flip one bit inside the MAC-covered region of a sealed entry as
    /// it crosses into untrusted memory. Detected as
    /// `Violation::EntryMacMismatch`.
    EntryFlip = 0,
    /// Tear a multi-slot entry write: only a prefix (always covering
    /// the 24-byte header) reaches untrusted memory. Detected as
    /// `Violation::EntryMacMismatch`.
    TornWrite = 1,
    /// Write back a stale snapshot of a counter-area Merkle node — a
    /// classic rollback. Detected as `Violation::MerkleMismatch`.
    StaleNodeReplay = 2,
    /// Flip one byte of a counter-area Merkle node in untrusted memory.
    /// Detected as `Violation::MerkleMismatch`.
    NodeFlip = 3,
    /// Swap the index-connection (`next`) pointers of two hash-chain
    /// entries. The AdField scheme makes each victim's MAC cover the
    /// identity of the cell pointing at it, so this is detected as
    /// `Violation::EntryMacMismatch` (§V-C).
    IndexPointerSwap = 4,
    /// Re-queue a live block on the allocator's untrusted free list
    /// (double-allocation setup). Detected as
    /// `Violation::AllocatorMetadata` by the free-list audit.
    FreeListTamper = 5,
    /// Kill a shard group's acting primary worker (thread panic). Not a
    /// data fault: the replicated front-end must fail over to a backup
    /// with zero acknowledged-write loss and later re-sync the killed
    /// replica.
    PrimaryKill = 6,
    /// Corrupt a rejoining replica *during* anti-entropy re-sync, after
    /// the delta apply and before root comparison. Detected as
    /// `StoreError::ReplicaDiverged` — the replica must never be
    /// re-admitted.
    ReplicaDivergence = 7,
    /// Flip one byte of a sealed record in the cold segment log on
    /// disk. Detected at read time as `Violation::EntryMacMismatch`, or
    /// at restart as `StoreError::RecoveryDiverged` (log corrupt /
    /// tampered).
    LogBitFlip = 8,
    /// Tear a log append: only a prefix of the sealed record reaches
    /// the segment file (power cut mid-write). The torn tail must be
    /// truncated on replay, never decoded as data.
    TornAppend = 9,
    /// Replace the log directory with an older, internally-consistent
    /// snapshot (host rollback). Detected as
    /// `StoreError::RecoveryDiverged` by the checkpoint epoch floor.
    StaleCheckpointRollback = 10,
    /// Stall a shard group's acting primary worker: the thread sleeps
    /// past the watchdog window while ops keep queueing. Not a data
    /// fault: the stuck-shard watchdog must quarantine the stalled
    /// primary through the health machine instead of letting callers
    /// queue forever.
    ShardStall = 11,
    /// Flip one byte of a migration bulk-copy chunk in flight between
    /// source and target shard groups during an elastic reshard. The
    /// target's content-root comparison against the source's digest
    /// must reject the handoff and abort the migration — the source
    /// stays authoritative, no acked write is lost.
    MigrationStreamTamper = 12,
    /// Kill the migration *target* mid-copy (before the routing flip).
    /// The migration must abort, the half-built target must leave no
    /// trace, and the source keeps serving the old epoch.
    TargetKill = 13,
    /// Replay a data op stamped with a routing epoch from *before* a
    /// committed migration (stale client cache / captured frame). The
    /// server must refuse with `WrongShard` instead of applying the op
    /// on the old owner.
    StaleEpochReplay = 14,
}

/// Number of distinct fault sites.
pub const SITE_COUNT: usize = 15;

impl FaultSite {
    /// Every site, in `repr` order.
    pub const ALL: [FaultSite; SITE_COUNT] = [
        FaultSite::EntryFlip,
        FaultSite::TornWrite,
        FaultSite::StaleNodeReplay,
        FaultSite::NodeFlip,
        FaultSite::IndexPointerSwap,
        FaultSite::FreeListTamper,
        FaultSite::PrimaryKill,
        FaultSite::ReplicaDivergence,
        FaultSite::LogBitFlip,
        FaultSite::TornAppend,
        FaultSite::StaleCheckpointRollback,
        FaultSite::ShardStall,
        FaultSite::MigrationStreamTamper,
        FaultSite::TargetKill,
        FaultSite::StaleEpochReplay,
    ];

    /// Stable machine-readable name (used in plans, reports, CI logs).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::EntryFlip => "entry_flip",
            FaultSite::TornWrite => "torn_write",
            FaultSite::StaleNodeReplay => "stale_node_replay",
            FaultSite::NodeFlip => "node_flip",
            FaultSite::IndexPointerSwap => "index_pointer_swap",
            FaultSite::FreeListTamper => "freelist_tamper",
            FaultSite::PrimaryKill => "primary_kill",
            FaultSite::ReplicaDivergence => "replica_divergence",
            FaultSite::LogBitFlip => "log_bit_flip",
            FaultSite::TornAppend => "torn_append",
            FaultSite::StaleCheckpointRollback => "stale_checkpoint_rollback",
            FaultSite::ShardStall => "shard_stall",
            FaultSite::MigrationStreamTamper => "migration_stream_tamper",
            FaultSite::TargetKill => "target_kill",
            FaultSite::StaleEpochReplay => "stale_epoch_replay",
        }
    }

    /// Parse a [`Self::name`] back into a site.
    pub fn from_name(name: &str) -> Option<FaultSite> {
        FaultSite::ALL.iter().copied().find(|s| s.name() == name)
    }

    /// Per-site stream salt: separates the splitmix64 draw streams so
    /// adding a site to a plan never perturbs another site's schedule.
    fn salt(self) -> u64 {
        0x9e37_79b9_7f4a_7c15u64.wrapping_mul(self as u64 + 1)
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A reproducible fault schedule: seed, per-site rates, global budget.
///
/// Rates are expressed per 10 000 draws, so `250` means "2.5 % of the
/// times this site is consulted, inject". The budget caps total
/// injections across *all* sites; once spent the engine goes quiet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Master seed; every per-site stream is derived from it.
    pub seed: u64,
    /// Injection probability per site, in parts per 10 000 draws.
    pub rates: [u32; SITE_COUNT],
    /// Maximum total injections across all sites.
    pub budget: u64,
}

impl FaultPlan {
    /// Denominator of the per-site rates.
    pub const RATE_SCALE: u32 = 10_000;

    /// An empty plan (no sites armed) under `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, rates: [0; SITE_COUNT], budget: u64::MAX }
    }

    /// Same rate for every site.
    pub fn uniform(seed: u64, rate_per_10k: u32, budget: u64) -> Self {
        FaultPlan { seed, rates: [rate_per_10k; SITE_COUNT], budget }
    }

    /// Builder: set one site's rate (parts per 10 000 draws).
    pub fn with_rate(mut self, site: FaultSite, rate_per_10k: u32) -> Self {
        self.rates[site as usize] = rate_per_10k;
        self
    }

    /// Builder: set the global injection budget.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }
}

/// Snapshot of one site's draw/injection counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteStats {
    /// How many times the site was consulted.
    pub draws: u64,
    /// How many consultations injected a fault.
    pub injected: u64,
}

/// Snapshot of the whole engine's activity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Per-site counters, indexed by `FaultSite as usize`.
    pub sites: [SiteStats; SITE_COUNT],
    /// Total injections across all sites.
    pub injected_total: u64,
}

impl ChaosStats {
    /// Counters for one site.
    pub fn site(&self, site: FaultSite) -> SiteStats {
        self.sites[site as usize]
    }
}

#[derive(Default)]
struct SiteState {
    draws: u64,
    injected: u64,
}

/// The deterministic injection oracle.
///
/// Shared (`Arc`) between the heap's write-path hook and any number of
/// driver threads. Each site owns an independent splitmix64 stream
/// keyed by `(plan.seed, site)`, advanced once per [`try_inject`] call,
/// so per-site schedules replay exactly across runs regardless of how
/// calls to *other* sites interleave. The global budget is the one
/// cross-site coupling: once `injected_total == plan.budget` every
/// site goes quiet.
///
/// [`try_inject`]: ChaosEngine::try_inject
pub struct ChaosEngine {
    plan: FaultPlan,
    armed: AtomicBool,
    injected_total: AtomicU64,
    sites: Mutex<[SiteState; SITE_COUNT]>,
    tele: std::sync::OnceLock<Arc<aria_telemetry::ChaosTelemetry>>,
}

impl ChaosEngine {
    /// Build an engine from a plan, initially **armed**.
    pub fn new(plan: FaultPlan) -> Arc<ChaosEngine> {
        Arc::new(ChaosEngine {
            plan,
            armed: AtomicBool::new(true),
            injected_total: AtomicU64::new(0),
            sites: Mutex::new(Default::default()),
            tele: std::sync::OnceLock::new(),
        })
    }

    /// Attach a telemetry recorder; injections are counted per site.
    /// Only the first attachment wins (the engine is shared as `Arc`).
    pub fn set_telemetry(&self, tele: Arc<aria_telemetry::ChaosTelemetry>) {
        let _ = self.tele.set(tele);
    }

    /// The plan this engine replays.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Arm or disarm injection globally. Disarmed engines still count
    /// draws (the schedule keeps advancing deterministically) but never
    /// inject — used to fence recovery's own writes out of the blast
    /// radius.
    pub fn arm(&self, on: bool) {
        self.armed.store(on, Ordering::SeqCst);
    }

    /// Whether the engine is currently armed.
    pub fn armed(&self) -> bool {
        self.armed.load(Ordering::SeqCst)
    }

    /// Consult the schedule at `site`. Returns `Some(entropy)` when a
    /// fault should be injected *now* — the entropy word is a further
    /// deterministic value the caller uses to pick a bit offset, victim
    /// index, tear point, etc. Returns `None` (no fault) when the
    /// stream says pass, the engine is disarmed, the site's rate is
    /// zero, or the budget is spent.
    pub fn try_inject(&self, site: FaultSite) -> Option<u64> {
        let rate = self.plan.rates[site as usize];
        let mut sites = self.sites.lock().unwrap_or_else(|p| p.into_inner());
        let st = &mut sites[site as usize];
        st.draws += 1;
        let word = splitmix64(self.plan.seed ^ site.salt() ^ st.draws);
        if rate == 0 || !self.armed() {
            return None;
        }
        if word % u64::from(FaultPlan::RATE_SCALE) >= u64::from(rate) {
            return None;
        }
        // Budget gate: claim a slot only if one is left.
        let claimed = self
            .injected_total
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < self.plan.budget).then_some(n + 1)
            })
            .is_ok();
        if !claimed {
            return None;
        }
        st.injected += 1;
        if let Some(t) = self.tele.get() {
            t.record_injection(site as usize);
        }
        Some(splitmix64(word))
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected_total.load(Ordering::SeqCst)
    }

    /// Whether the global budget is fully spent.
    pub fn budget_spent(&self) -> bool {
        self.injected() >= self.plan.budget
    }

    /// Snapshot all counters.
    pub fn stats(&self) -> ChaosStats {
        let sites = self.sites.lock().unwrap_or_else(|p| p.into_inner());
        let mut out = ChaosStats::default();
        for (i, st) in sites.iter().enumerate() {
            out.sites[i] = SiteStats { draws: st.draws, injected: st.injected };
        }
        out.injected_total = self.injected();
        out
    }
}

impl std::fmt::Debug for ChaosEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosEngine")
            .field("plan", &self.plan)
            .field("armed", &self.armed())
            .field("injected", &self.injected())
            .finish()
    }
}

/// Minimum sealed-entry length worth corrupting: 24-byte header +
/// 16-byte MAC and at least a byte of ciphertext. Smaller writes are
/// pointer cells / free-list slots whose corruption classes are
/// exercised by their own dedicated sites.
const MIN_ENTRY_WRITE: usize = 41;

/// Offset of the first MAC-covered byte in a sealed entry: the 8-byte
/// `next` pointer is index-connection data protected by the AdField
/// scheme, not the entry MAC, so flips land at `redptr` or later for a
/// clean `EntryMacMismatch` mapping.
const MACED_OFFSET: usize = 8;

/// Write-path fault injector: an [`aria_mem::WriteFault`] implementation
/// driven by a shared [`ChaosEngine`].
///
/// Install with [`HeapInjector::install`] (or `UserHeap::set_fault_hook`
/// directly). Only entry-sized writes (≥ [`MIN_ENTRY_WRITE`] bytes) are
/// considered — 8/16-byte pointer-cell and free-list writes pass
/// through untouched so every injected fault maps to a well-defined
/// violation class.
pub struct HeapInjector {
    engine: Arc<ChaosEngine>,
}

impl HeapInjector {
    /// Build an injector that consults `engine`.
    pub fn new(engine: Arc<ChaosEngine>) -> Self {
        HeapInjector { engine }
    }

    /// Convenience: install a fresh injector for `engine` on `heap`.
    pub fn install(heap: &mut UserHeap, engine: Arc<ChaosEngine>) {
        heap.set_fault_hook(Some(Arc::new(Mutex::new(HeapInjector::new(engine)))));
    }
}

impl WriteFault for HeapInjector {
    fn on_write(&mut self, _ptr: UPtr, bytes: &mut [u8]) -> Option<usize> {
        if bytes.len() < MIN_ENTRY_WRITE {
            return None;
        }
        if let Some(entropy) = self.engine.try_inject(FaultSite::EntryFlip) {
            // One bit anywhere in the MAC-covered region.
            let span_bits = (bytes.len() - MACED_OFFSET) * 8;
            let bit = (entropy % span_bits as u64) as usize;
            bytes[MACED_OFFSET + bit / 8] ^= 1 << (bit % 8);
        }
        if let Some(entropy) = self.engine.try_inject(FaultSite::TornWrite) {
            // Persist the full header plus a strict prefix of the
            // ciphertext/MAC region.
            let tearable = bytes.len() - MACED_OFFSET * 3; // keep in [24, len)
            let keep = MACED_OFFSET * 3 + (entropy % tearable as u64) as usize;
            return Some(keep);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(plan: &FaultPlan, site: FaultSite, draws: u64) -> Vec<Option<u64>> {
        let eng = ChaosEngine::new(plan.clone());
        (0..draws).map(|_| eng.try_inject(site)).collect()
    }

    #[test]
    fn same_plan_replays_exactly() {
        let plan = FaultPlan::uniform(0xDEAD_BEEF, 500, u64::MAX);
        for site in FaultSite::ALL {
            let a = schedule(&plan, site, 4_000);
            let b = schedule(&plan, site, 4_000);
            assert_eq!(a, b, "site {site} schedule must replay");
            let hits = a.iter().filter(|d| d.is_some()).count();
            // 5 % nominal rate over 4 000 draws: expect ~200, allow wide slack.
            assert!((80..400).contains(&hits), "site {site}: {hits} hits");
        }
    }

    #[test]
    fn sites_have_independent_streams() {
        let plan = FaultPlan::uniform(42, 1_000, u64::MAX);
        let a = schedule(&plan, FaultSite::EntryFlip, 2_000);
        let b = schedule(&plan, FaultSite::NodeFlip, 2_000);
        assert_ne!(a, b, "distinct sites must not share a stream");

        // Interleaving calls to another site must not perturb a site's
        // own schedule.
        let eng = ChaosEngine::new(plan.clone());
        let interleaved: Vec<_> = (0..2_000)
            .map(|i| {
                if i % 3 == 0 {
                    eng.try_inject(FaultSite::TornWrite);
                }
                eng.try_inject(FaultSite::EntryFlip)
            })
            .collect();
        assert_eq!(a, interleaved);
    }

    #[test]
    fn seed_changes_the_schedule() {
        let a = schedule(&FaultPlan::uniform(1, 500, u64::MAX), FaultSite::EntryFlip, 2_000);
        let b = schedule(&FaultPlan::uniform(2, 500, u64::MAX), FaultSite::EntryFlip, 2_000);
        assert_ne!(a, b);
    }

    #[test]
    fn budget_caps_total_injections() {
        let plan = FaultPlan::uniform(7, FaultPlan::RATE_SCALE, 10); // rate 100 %
        let eng = ChaosEngine::new(plan);
        let mut hits = 0;
        for i in 0..100 {
            let site = FaultSite::ALL[i % SITE_COUNT];
            if eng.try_inject(site).is_some() {
                hits += 1;
            }
        }
        assert_eq!(hits, 10);
        assert_eq!(eng.injected(), 10);
        assert!(eng.budget_spent());
    }

    #[test]
    fn disarm_silences_but_keeps_the_stream_position() {
        let plan = FaultPlan::uniform(9, FaultPlan::RATE_SCALE, u64::MAX);
        let eng = ChaosEngine::new(plan);
        eng.arm(false);
        for _ in 0..5 {
            assert_eq!(eng.try_inject(FaultSite::EntryFlip), None);
        }
        assert_eq!(eng.stats().site(FaultSite::EntryFlip).draws, 5);
        assert_eq!(eng.injected(), 0);
        eng.arm(true);
        assert!(eng.try_inject(FaultSite::EntryFlip).is_some());
    }

    #[test]
    fn zero_rate_site_never_injects() {
        let plan = FaultPlan::new(3).with_rate(FaultSite::NodeFlip, FaultPlan::RATE_SCALE);
        let eng = ChaosEngine::new(plan);
        for _ in 0..1_000 {
            assert_eq!(eng.try_inject(FaultSite::EntryFlip), None);
        }
        assert!(eng.try_inject(FaultSite::NodeFlip).is_some());
    }

    #[test]
    fn site_names_round_trip() {
        for site in FaultSite::ALL {
            assert_eq!(FaultSite::from_name(site.name()), Some(site));
        }
        assert_eq!(FaultSite::from_name("nonsense"), None);
    }

    #[test]
    fn heap_injector_flips_only_maced_bytes_and_tears_after_header() {
        let plan = FaultPlan::new(11)
            .with_rate(FaultSite::EntryFlip, FaultPlan::RATE_SCALE)
            .with_budget(1);
        let mut inj = HeapInjector::new(ChaosEngine::new(plan));
        let clean = vec![0u8; 96];
        let mut buf = clean.clone();
        assert_eq!(inj.on_write(UPtr::NULL, &mut buf), None);
        assert_eq!(buf[..MACED_OFFSET], clean[..MACED_OFFSET], "next ptr untouched");
        let flipped: u32 = buf.iter().zip(&clean).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit flips");

        let plan = FaultPlan::new(12)
            .with_rate(FaultSite::TornWrite, FaultPlan::RATE_SCALE)
            .with_budget(1);
        let mut inj = HeapInjector::new(ChaosEngine::new(plan));
        let mut buf = vec![0u8; 96];
        let keep = inj.on_write(UPtr::NULL, &mut buf).expect("tear");
        assert!((24..96).contains(&keep), "tear keeps header, loses a suffix: {keep}");

        // Small (pointer-cell) writes pass through untouched.
        let plan = FaultPlan::uniform(13, FaultPlan::RATE_SCALE, u64::MAX);
        let mut inj = HeapInjector::new(ChaosEngine::new(plan));
        let mut cell = [0u8; 8];
        assert_eq!(inj.on_write(UPtr::NULL, &mut cell), None);
        assert_eq!(cell, [0u8; 8]);
    }
}
