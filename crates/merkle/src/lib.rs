//! Flat N-ary Merkle tree over the encryption-counter area (paper §IV-D,
//! Figure 5).
//!
//! Aria protects each KV pair with a per-pair encryption counter; the
//! counters themselves are protected against replay by a Merkle tree whose
//! *leaf nodes are blocks of counters* and whose inner nodes are blocks of
//! MACs, all stored in contiguous untrusted memory, one flat array per
//! level. Only the 16-byte root MAC lives in the enclave.
//!
//! * Each node is `arity x 16` bytes: a leaf node packs `arity` 16-byte
//!   counters; an inner node packs the `arity` MACs of its children. The
//!   MAC input length therefore equals the node size — a larger arity
//!   flattens the tree (fewer verification levels) at the price of longer
//!   MAC inputs and larger swap units (the Figure 15 trade-off).
//! * The address of a node's parent and its slot within the parent are
//!   pure arithmetic on the node index, matching the paper's
//!   contiguous-layout optimization (no per-node pointers; hardware
//!   prefetch friendly).
//!
//! This crate owns the *untrusted* state of the tree and the pure
//! structure/MAC arithmetic. Cycle-cost charging and the caching of nodes
//! inside the EPC are the Secure Cache's job (`aria-cache`); the
//! [`MerkleTree::verify_path_plain`] reference walk here is used by tests
//! and by initialization.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

use aria_crypto::{CipherSuite, Mac};

/// Bytes per counter and per MAC.
pub const SLOT: usize = 16;

/// Identifies one Merkle-tree node: `level` 0 is the counter (leaf) level,
/// `level = height - 1` is the single top node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId {
    /// Tree level, counting from the leaves.
    pub level: u32,
    /// Node index within the level.
    pub index: u64,
}

/// Result of verifying a node against its parent chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verification {
    /// MAC chain checked out.
    Ok,
    /// A node's MAC did not match the one stored in its parent.
    Mismatch {
        /// The node whose MAC failed.
        node: NodeId,
    },
}

/// A flat N-ary Merkle tree in (simulated) untrusted memory.
pub struct MerkleTree {
    arity: usize,
    node_size: usize,
    num_counters: u64,
    /// `levels[l]` is the packed node array of level `l`.
    levels: Vec<Vec<u8>>,
    /// Node count per level.
    level_nodes: Vec<u64>,
    /// The root MAC (conceptually inside the enclave).
    root: Mac,
    suite: Arc<dyn CipherSuite>,
    /// Optional telemetry sink (untrusted state; observability only).
    tele: Option<Arc<aria_telemetry::MerkleTelemetry>>,
}

impl MerkleTree {
    /// Build and securely initialize a tree covering `num_counters`
    /// counters with the given branching factor.
    ///
    /// Initialization follows the paper: every counter gets a distinct
    /// initial value, then MACs are computed bottom-up and the final root
    /// is retained in the enclave. (The paper seeds counters randomly
    /// inside the enclave; we derive them from `seed` so experiments are
    /// reproducible.)
    pub fn new(num_counters: u64, arity: usize, suite: Arc<dyn CipherSuite>, seed: u64) -> Self {
        assert!(arity >= 2, "Merkle tree arity must be at least 2");
        assert!(num_counters > 0, "Merkle tree must cover at least one counter");
        let node_size = arity * SLOT;

        // Level sizes: leaves cover the counters, then shrink by `arity`
        // until a single node remains.
        let mut level_nodes = vec![num_counters.div_ceil(arity as u64)];
        while *level_nodes.last().unwrap() > 1 {
            let next = level_nodes.last().unwrap().div_ceil(arity as u64);
            level_nodes.push(next);
        }

        let mut levels: Vec<Vec<u8>> =
            level_nodes.iter().map(|&n| vec![0u8; n as usize * node_size]).collect();

        // Counter initialization: unique per-slot values derived from the
        // seed (splitmix-style), so no (key, counter) pair ever repeats
        // across counters.
        let leaf_bytes = &mut levels[0];
        for (i, chunk) in leaf_bytes.chunks_exact_mut(SLOT).enumerate() {
            let mut x = seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            chunk[..8].copy_from_slice(&x.to_le_bytes());
            chunk[8..].copy_from_slice(&(i as u64).to_le_bytes());
        }

        let mut tree = MerkleTree {
            arity,
            node_size,
            num_counters,
            levels,
            level_nodes,
            root: [0u8; 16],
            suite,
            tele: None,
        };
        tree.rebuild();
        tree
    }

    /// Attach a telemetry sink recording hash ops and verified nodes.
    pub fn set_telemetry(&mut self, tele: Arc<aria_telemetry::MerkleTelemetry>) {
        self.tele = Some(tele);
    }

    /// Recompute every inner node and the root from the current leaf
    /// contents (used at initialization and by tests after direct edits).
    pub fn rebuild(&mut self) {
        for level in 0..self.levels.len() - 1 {
            for index in 0..self.level_nodes[level] {
                let mac = self.mac_of(NodeId { level: level as u32, index });
                self.store_child_mac_internal(level + 1, index, &mac);
            }
        }
        let top = NodeId { level: (self.levels.len() - 1) as u32, index: 0 };
        self.root = self.mac_of(top);
    }

    fn store_child_mac_internal(&mut self, parent_level: usize, child_index: u64, mac: &Mac) {
        let parent_index = child_index / self.arity as u64;
        let slot = (child_index % self.arity as u64) as usize;
        let off = parent_index as usize * self.node_size + slot * SLOT;
        self.levels[parent_level][off..off + SLOT].copy_from_slice(mac);
    }

    // --- geometry ---------------------------------------------------------

    /// Branching factor.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Bytes per node (= MAC input length).
    pub fn node_size(&self) -> usize {
        self.node_size
    }

    /// Number of levels including the leaf level.
    pub fn height(&self) -> u32 {
        self.levels.len() as u32
    }

    /// Counters covered by the tree.
    pub fn num_counters(&self) -> u64 {
        self.num_counters
    }

    /// Nodes in `level`.
    pub fn nodes_in_level(&self, level: u32) -> u64 {
        self.level_nodes[level as usize]
    }

    /// Bytes occupied by each level (leaf level first).
    pub fn level_bytes(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.len()).collect()
    }

    /// Total untrusted bytes of the tree (counters + inner nodes).
    pub fn total_bytes(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }

    /// The leaf node and slot holding counter `idx`.
    pub fn locate_counter(&self, idx: u64) -> (NodeId, usize) {
        debug_assert!(idx < self.num_counters);
        (NodeId { level: 0, index: idx / self.arity as u64 }, (idx % self.arity as u64) as usize)
    }

    /// Parent of `node`; `None` for the top node.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        if node.level as usize == self.levels.len() - 1 {
            None
        } else {
            Some(NodeId { level: node.level + 1, index: node.index / self.arity as u64 })
        }
    }

    /// Slot of `node` within its parent.
    pub fn slot_in_parent(&self, node: NodeId) -> usize {
        (node.index % self.arity as u64) as usize
    }

    /// Whether `node` is the single top node.
    pub fn is_top(&self, node: NodeId) -> bool {
        node.level as usize == self.levels.len() - 1
    }

    // --- node access --------------------------------------------------------

    /// Raw bytes of a node in untrusted memory.
    pub fn node(&self, id: NodeId) -> &[u8] {
        let off = id.index as usize * self.node_size;
        &self.levels[id.level as usize][off..off + self.node_size]
    }

    /// Overwrite a node in untrusted memory (Secure Cache write-back, or
    /// attacker).
    pub fn write_node(&mut self, id: NodeId, bytes: &[u8]) {
        assert_eq!(bytes.len(), self.node_size);
        let off = id.index as usize * self.node_size;
        self.levels[id.level as usize][off..off + self.node_size].copy_from_slice(bytes);
    }

    /// Mutable attacker-side view of a node (no verification, no costs).
    pub fn node_mut_raw(&mut self, id: NodeId) -> &mut [u8] {
        let off = id.index as usize * self.node_size;
        &mut self.levels[id.level as usize][off..off + self.node_size]
    }

    /// Compute the MAC of a node's current untrusted bytes.
    pub fn mac_of(&self, id: NodeId) -> Mac {
        if let Some(t) = &self.tele {
            t.hash_ops.inc();
        }
        self.suite.mac(self.node(id))
    }

    /// Compute the MAC of caller-provided node bytes (e.g., a cached copy
    /// being evicted).
    pub fn mac_of_bytes(&self, bytes: &[u8]) -> Mac {
        debug_assert_eq!(bytes.len(), self.node_size);
        if let Some(t) = &self.tele {
            t.hash_ops.inc();
        }
        self.suite.mac(bytes)
    }

    /// The MAC of child `slot` as stored in the untrusted bytes of the
    /// parent node `parent`.
    pub fn stored_child_mac(&self, parent: NodeId, slot: usize) -> Mac {
        let node = self.node(parent);
        let mut mac = [0u8; SLOT];
        mac.copy_from_slice(&node[slot * SLOT..(slot + 1) * SLOT]);
        mac
    }

    /// Read counter `idx` from untrusted memory (caller must have verified
    /// the leaf's integrity first).
    pub fn counter_bytes(&self, idx: u64) -> [u8; SLOT] {
        let (leaf, slot) = self.locate_counter(idx);
        let node = self.node(leaf);
        let mut ctr = [0u8; SLOT];
        ctr.copy_from_slice(&node[slot * SLOT..(slot + 1) * SLOT]);
        ctr
    }

    // --- root ----------------------------------------------------------------

    /// The enclave-resident root MAC.
    pub fn root(&self) -> Mac {
        self.root
    }

    /// Replace the root (Secure Cache updates it when the top node's
    /// content changes).
    pub fn set_root(&mut self, mac: Mac) {
        self.root = mac;
    }

    /// The cipher suite the tree MACs with.
    pub fn suite(&self) -> &Arc<dyn CipherSuite> {
        &self.suite
    }

    // --- reference verification (no cache) ------------------------------------

    /// Walk from `node` to the root verifying each node against its parent
    /// (and the top node against the enclave root). Used by tests and by
    /// cold paths; the Secure Cache implements the cached short-circuit
    /// version.
    pub fn verify_path_plain(&self, mut node: NodeId) -> Verification {
        loop {
            let mac = self.mac_of(node);
            match self.parent(node) {
                None => {
                    if mac != self.root {
                        return Verification::Mismatch { node };
                    }
                    if let Some(t) = &self.tele {
                        t.verified_nodes.inc();
                    }
                    return Verification::Ok;
                }
                Some(parent) => {
                    if mac != self.stored_child_mac(parent, self.slot_in_parent(node)) {
                        return Verification::Mismatch { node };
                    }
                    if let Some(t) = &self.tele {
                        t.verified_nodes.inc();
                    }
                    node = parent;
                }
            }
        }
    }

    /// Root-anchored audit of the whole tree: returns every **leaf**
    /// node whose contents cannot be trusted.
    ///
    /// Trust propagates top-down from the only ground truth available —
    /// the enclave-resident root MAC plus the caller-supplied `trusted`
    /// set (nodes whose current untrusted bytes were just written from
    /// EPC-resident copies, e.g. a drained Secure Cache). A node is
    /// trusted iff it is in `trusted`, or its parent is trusted and the
    /// parent's stored child MAC matches the node's bytes. Everything
    /// else is condemned: an adversary without the MAC key cannot forge
    /// a matching chain, so a trusted leaf is guaranteed genuine, while
    /// a condemned leaf may merely sit under a corrupted inner node —
    /// the audit over-condemns, never under-condemns.
    pub fn audit_leaves(&self, trusted: &std::collections::HashSet<NodeId>) -> Vec<NodeId> {
        let height = self.levels.len();
        let top = NodeId { level: (height - 1) as u32, index: 0 };
        let mut level_trust = vec![trusted.contains(&top) || self.mac_of(top) == self.root];
        for level in (0..height - 1).rev() {
            let mut next = Vec::with_capacity(self.level_nodes[level] as usize);
            for index in 0..self.level_nodes[level] {
                let id = NodeId { level: level as u32, index };
                let ok = trusted.contains(&id) || {
                    let parent_idx = (index / self.arity as u64) as usize;
                    level_trust[parent_idx]
                        && self.stored_child_mac(
                            self.parent(id).expect("non-top node has a parent"),
                            self.slot_in_parent(id),
                        ) == self.mac_of(id)
                };
                next.push(ok);
            }
            level_trust = next;
        }
        level_trust
            .iter()
            .enumerate()
            .filter(|(_, ok)| !**ok)
            .map(|(index, _)| NodeId { level: 0, index: index as u64 })
            .collect()
    }

    /// The range of counter ids covered by leaf node `leaf` (used by
    /// recovery to reinitialize the counters of a condemned leaf).
    pub fn counters_in_leaf(&self, leaf: NodeId) -> std::ops::Range<u64> {
        debug_assert_eq!(leaf.level, 0);
        let start = leaf.index * self.arity as u64;
        start..(start + self.arity as u64).min(self.num_counters)
    }

    /// Overwrite counter `idx` in the leaf bytes **without** MAC
    /// propagation (recovery reinitializes condemned slots, then calls
    /// [`MerkleTree::rebuild`] once).
    pub fn write_counter_raw(&mut self, idx: u64, value: &[u8; SLOT]) {
        let (leaf, slot) = self.locate_counter(idx);
        let off = leaf.index as usize * self.node_size + slot * SLOT;
        self.levels[0][off..off + SLOT].copy_from_slice(value);
    }

    /// Update counter `idx` in untrusted memory and propagate MACs to the
    /// root (the no-cache reference path; Secure Cache short-circuits at
    /// cached ancestors instead).
    pub fn update_counter_plain(&mut self, idx: u64, value: &[u8; SLOT]) {
        let (leaf, slot) = self.locate_counter(idx);
        let off = leaf.index as usize * self.node_size + slot * SLOT;
        self.levels[0][off..off + SLOT].copy_from_slice(value);
        let mut node = leaf;
        loop {
            let mac = self.mac_of(node);
            match self.parent(node) {
                None => {
                    self.root = mac;
                    return;
                }
                Some(parent) => {
                    self.store_child_mac_internal(parent.level as usize, node.index, &mac);
                    node = parent;
                }
            }
        }
    }
}

impl std::fmt::Debug for MerkleTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MerkleTree")
            .field("arity", &self.arity)
            .field("num_counters", &self.num_counters)
            .field("height", &self.height())
            .field("total_bytes", &self.total_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aria_crypto::RealSuite;

    fn tree(counters: u64, arity: usize) -> MerkleTree {
        MerkleTree::new(counters, arity, Arc::new(RealSuite::from_master(&[7u8; 16])), 42)
    }

    #[test]
    fn geometry_small() {
        let t = tree(1000, 8);
        // 1000 counters -> 125 leaf nodes -> 16 -> 2 -> 1.
        assert_eq!(t.height(), 4);
        assert_eq!(t.nodes_in_level(0), 125);
        assert_eq!(t.nodes_in_level(1), 16);
        assert_eq!(t.nodes_in_level(2), 2);
        assert_eq!(t.nodes_in_level(3), 1);
        assert_eq!(t.node_size(), 128);
    }

    #[test]
    fn single_node_tree() {
        let t = tree(4, 8);
        assert_eq!(t.height(), 1);
        assert_eq!(t.verify_path_plain(NodeId { level: 0, index: 0 }), Verification::Ok);
    }

    #[test]
    fn fresh_tree_verifies_everywhere() {
        let t = tree(500, 4);
        for idx in [0u64, 1, 255, 499] {
            let (leaf, _) = t.locate_counter(idx);
            assert_eq!(t.verify_path_plain(leaf), Verification::Ok);
        }
    }

    #[test]
    fn counters_are_unique_at_init() {
        let t = tree(2000, 8);
        let mut seen = std::collections::HashSet::new();
        for i in 0..2000 {
            assert!(seen.insert(t.counter_bytes(i)), "duplicate initial counter {i}");
        }
    }

    #[test]
    fn tampering_any_leaf_is_detected() {
        let mut t = tree(300, 4);
        let (leaf, _) = t.locate_counter(123);
        t.node_mut_raw(leaf)[5] ^= 0x01;
        assert!(matches!(t.verify_path_plain(leaf), Verification::Mismatch { .. }));
    }

    #[test]
    fn tampering_inner_node_is_detected() {
        let mut t = tree(5000, 8);
        let inner = NodeId { level: 1, index: 3 };
        t.node_mut_raw(inner)[0] ^= 0xff;
        // Any leaf under that inner node fails.
        let leaf = NodeId { level: 0, index: 3 * 8 };
        assert!(matches!(t.verify_path_plain(leaf), Verification::Mismatch { .. }));
    }

    #[test]
    fn tampering_top_node_is_detected_by_root() {
        let mut t = tree(300, 4);
        let top = NodeId { level: t.height() - 1, index: 0 };
        t.node_mut_raw(top)[1] ^= 0x80;
        assert!(matches!(
            t.verify_path_plain(NodeId { level: 0, index: 0 }),
            Verification::Mismatch { .. }
        ));
    }

    #[test]
    fn update_counter_keeps_tree_consistent() {
        let mut t = tree(1000, 8);
        t.update_counter_plain(777, &[0xaa; 16]);
        assert_eq!(t.counter_bytes(777), [0xaa; 16]);
        for idx in [0u64, 776, 777, 778, 999] {
            let (leaf, _) = t.locate_counter(idx);
            assert_eq!(t.verify_path_plain(leaf), Verification::Ok, "idx {idx}");
        }
    }

    #[test]
    fn replaying_old_counter_is_detected() {
        let mut t = tree(64, 4);
        let (leaf, _) = t.locate_counter(10);
        let old_leaf_bytes = t.node(leaf).to_vec();
        // Legitimate update bumps the counter and the MAC chain.
        t.update_counter_plain(10, &[0x11; 16]);
        assert_eq!(t.verify_path_plain(leaf), Verification::Ok);
        // Attacker replays the *old* leaf bytes.
        t.write_node(leaf, &old_leaf_bytes);
        assert!(matches!(t.verify_path_plain(leaf), Verification::Mismatch { .. }));
    }

    #[test]
    fn replaying_whole_subtree_is_detected() {
        let mut t = tree(4096, 8);
        let (leaf, _) = t.locate_counter(100);
        // Snapshot leaf + all ancestors except the top.
        let mut path = vec![leaf];
        while let Some(p) = t.parent(*path.last().unwrap()) {
            path.push(p);
        }
        let snapshots: Vec<(NodeId, Vec<u8>)> =
            path.iter().map(|&n| (n, t.node(n).to_vec())).collect();
        t.update_counter_plain(100, &[0x22; 16]);
        // Replay every node on the path, including the top node; only the
        // enclave root stays fresh — and catches it.
        for (n, bytes) in &snapshots {
            t.write_node(*n, bytes);
        }
        assert!(matches!(t.verify_path_plain(leaf), Verification::Mismatch { .. }));
    }

    #[test]
    fn audit_condemns_exactly_the_corrupted_leaf() {
        let mut t = tree(1000, 8);
        let (leaf, _) = t.locate_counter(321);
        t.node_mut_raw(leaf)[3] ^= 0x01;
        let condemned = t.audit_leaves(&std::collections::HashSet::new());
        assert_eq!(condemned, vec![leaf]);
    }

    #[test]
    fn audit_condemns_subtree_under_corrupted_inner_node() {
        let mut t = tree(1000, 8);
        let inner = NodeId { level: 1, index: 2 };
        t.node_mut_raw(inner)[0] ^= 0xff;
        let condemned = t.audit_leaves(&std::collections::HashSet::new());
        // All 8 leaves under inner node (1, 2) are unverifiable.
        let expect: Vec<NodeId> = (16..24).map(|index| NodeId { level: 0, index }).collect();
        assert_eq!(condemned, expect);
    }

    #[test]
    fn audit_trusts_caller_supplied_nodes() {
        let mut t = tree(1000, 8);
        let inner = NodeId { level: 1, index: 2 };
        t.node_mut_raw(inner)[0] ^= 0xff;
        // If the enclave says the inner node's current bytes are its own
        // (e.g. the cache just drained it), its consistent children
        // survive — but the node's own stored child MACs now gate them.
        let mut trusted = std::collections::HashSet::new();
        trusted.insert(inner);
        let condemned = t.audit_leaves(&trusted);
        // Corrupting byte 0 destroyed the stored MAC of child slot 0 only.
        assert_eq!(condemned, vec![NodeId { level: 0, index: 16 }]);
    }

    #[test]
    fn audit_clean_tree_condemns_nothing() {
        let t = tree(4096, 8);
        assert!(t.audit_leaves(&std::collections::HashSet::new()).is_empty());
    }

    #[test]
    fn counters_in_leaf_covers_tail() {
        let t = tree(1001, 8);
        assert_eq!(t.counters_in_leaf(NodeId { level: 0, index: 0 }), 0..8);
        // 1001 counters -> last leaf (index 125) holds only counter 1000.
        assert_eq!(t.counters_in_leaf(NodeId { level: 0, index: 125 }), 1000..1001);
    }

    #[test]
    fn write_counter_raw_then_rebuild_verifies() {
        let mut t = tree(100, 4);
        t.write_counter_raw(42, &[0x5a; 16]);
        // Raw write breaks the chain until rebuild.
        let (leaf, _) = t.locate_counter(42);
        assert!(matches!(t.verify_path_plain(leaf), Verification::Mismatch { .. }));
        t.rebuild();
        assert_eq!(t.counter_bytes(42), [0x5a; 16]);
        assert_eq!(t.verify_path_plain(leaf), Verification::Ok);
    }

    #[test]
    fn arity_flattens_height() {
        let t2 = tree(1_000_000, 2);
        let t16 = tree(1_000_000, 16);
        assert!(t16.height() < t2.height());
        assert_eq!(t16.node_size(), 256);
    }

    #[test]
    fn level_bytes_sum_to_total() {
        let t = tree(10_000, 8);
        assert_eq!(t.level_bytes().iter().sum::<usize>(), t.total_bytes());
        // Leaf level dominates.
        assert!(t.level_bytes()[0] > t.total_bytes() / 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use aria_crypto::RealSuite;
    use proptest::prelude::*;

    proptest! {
        /// After any sequence of legitimate counter updates, every path
        /// verifies; after any single-bit corruption of any node, the
        /// affected path fails.
        #[test]
        fn update_then_corrupt(
            counters in 16u64..400,
            arity in 2usize..9,
            updates in proptest::collection::vec((any::<u64>(), any::<u8>()), 1..30),
            corrupt_level_pick in any::<u32>(),
            corrupt_byte in any::<usize>(),
        ) {
            let suite = Arc::new(RealSuite::from_master(&[3u8; 16]));
            let mut t = MerkleTree::new(counters, arity, suite, 7);
            for (idx, v) in &updates {
                t.update_counter_plain(idx % counters, &[*v; 16]);
            }
            for idx in 0..counters.min(16) {
                let (leaf, _) = t.locate_counter(idx);
                prop_assert_eq!(t.verify_path_plain(leaf), Verification::Ok);
            }
            // Corrupt one byte of one node.
            let level = corrupt_level_pick % t.height();
            let index = (corrupt_byte as u64) % t.nodes_in_level(level);
            let id = NodeId { level, index };
            let byte = corrupt_byte % t.node_size();
            t.node_mut_raw(id)[byte] ^= 0x01;
            // Verify a leaf under the corrupted node fails.
            let mut leaf_index = index;
            for _ in 0..level {
                leaf_index *= arity as u64;
            }
            let leaf = NodeId { level: 0, index: leaf_index };
            let detected = matches!(t.verify_path_plain(leaf), Verification::Mismatch { .. });
            prop_assert!(detected);
        }
    }
}
