//! The append-only segment log: rotation, replay with torn-tail
//! truncation, verified point reads, dead-byte accounting for the
//! compactor, and a crash/tamper fault hook for the chaos harness.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

use crate::record::{DecodedRecord, RecordKind, RecordPtr, Sealer, MAX_FRAME_LEN, MIN_FRAME_LEN};
use crate::{segment_path, LogConfig, LogError};

/// One record surfaced during replay. Records are surfaced in on-disk
/// order (segment id, then offset) — the *caller* resolves latest-wins
/// by `seqno`, because compaction rewrites preserve the original seqno
/// of a record while moving it to a younger segment.
#[derive(Debug)]
pub struct ReplayRecord {
    /// Where the record lives (for later reads / dead-marking).
    pub ptr: RecordPtr,
    /// The record's logical write sequence number.
    pub seqno: u64,
    /// Put or tombstone.
    pub kind: RecordKind,
    /// Plaintext key.
    pub key: Vec<u8>,
    /// Plaintext value (empty for tombstones).
    pub value: Vec<u8>,
}

/// What an append did, for index maintenance.
#[derive(Debug, Clone, Copy)]
pub struct AppendInfo {
    /// Where the new record was written.
    pub ptr: RecordPtr,
    /// The sequence number the record was stamped with.
    pub seqno: u64,
}

/// Per-segment occupancy counters, exposed for telemetry and the
/// compactor's victim choice.
#[derive(Debug, Clone, Copy, Default)]
pub struct SegmentStats {
    /// Total bytes of record frames in the segment.
    pub total_bytes: u64,
    /// Bytes belonging to superseded (dead) records.
    pub dead_bytes: u64,
    /// Number of record frames.
    pub records: u64,
    /// Number of superseded record frames.
    pub dead_records: u64,
}

impl SegmentStats {
    /// Fraction of the segment's bytes that are dead (0.0 when empty).
    pub fn dead_ratio(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.dead_bytes as f64 / self.total_bytes as f64
        }
    }
}

/// Fault hook invoked on the encoded frame just before it hits the
/// file. Returning `Some(n)` writes only the first `n` bytes (a torn
/// append — the process is assumed to die before retrying); the hook
/// may also mutate bytes in place (a host-side bit flip). Installed by
/// the chaos harness only.
pub type AppendFaultHook = Box<dyn FnMut(&mut Vec<u8>) -> Option<usize> + Send>;

/// Reserve seqnos in blocks of this size: the sealed `SEQNO` file is
/// rewritten (one fsync) once per block, and each reopen burns at most
/// one block of the 2^64 seqno space.
const SEQNO_RESERVE_STEP: u64 = 1 << 16;

/// An append-only log of sealed records split across rotated segment
/// files. All reads verify CRC + MAC before returning plaintext.
pub struct SegmentLog {
    dir: PathBuf,
    cfg: LogConfig,
    sealer: Sealer,
    log_key: [u8; 16],
    /// Occupancy for every segment, active included.
    stats: BTreeMap<u64, SegmentStats>,
    active_id: u64,
    active_len: u64,
    writer: File,
    next_seqno: u64,
    /// Exclusive sealed upper bound on allocated seqnos: every seqno
    /// handed out is `< reserved`, and `reserved` is fsynced to the
    /// `SEQNO` file before allocation crosses the previous bound. A
    /// reopen resumes at the bound, so a seqno lost to a torn tail is
    /// never re-allocated to a different plaintext (CTR keystream
    /// reuse).
    reserved: u64,
    /// Bytes appended since the last fsync while group-commit is on
    /// (`sync_writes` with a non-zero `sync_window_bytes`). These bytes
    /// are NOT yet durable; the owner must not acknowledge them until a
    /// covering [`SegmentLog::sync`].
    unsynced_bytes: u64,
    /// Data fsyncs issued (append path + explicit syncs), for tests and
    /// telemetry to verify group-commit actually coalesces.
    syncs: u64,
    fault_hook: Option<AppendFaultHook>,
}

impl SegmentLog {
    /// Open (or create) the log in `cfg.dir`, replaying every record in
    /// segment order through `sink`. A torn tail on the *last* segment
    /// is truncated away; any other framing violation is an error and
    /// the log refuses to open.
    pub fn open(
        cfg: LogConfig,
        log_key: &[u8; 16],
        sink: &mut dyn FnMut(ReplayRecord),
    ) -> Result<SegmentLog, LogError> {
        cfg.validate()?;
        std::fs::create_dir_all(&cfg.dir).map_err(|e| LogError::io("create-dir", e))?;
        let sealer = Sealer::new(log_key);

        let mut ids = list_segment_ids(&cfg.dir)?;
        ids.sort_unstable();

        let mut stats = BTreeMap::new();
        let mut next_seqno = 1u64;
        for (i, &id) in ids.iter().enumerate() {
            let last = i + 1 == ids.len();
            let seg_stats = replay_segment(&cfg.dir, id, &sealer, last, &mut next_seqno, sink)?;
            stats.insert(id, seg_stats);
        }

        // Resume seqno allocation at the sealed reservation bound, not
        // at max(replayed) + 1: a torn-tail truncation may have erased
        // records whose seqnos (and CTR keystreams) were already used.
        // The file is written before the first segment is created, so
        // "segments exist but no reservation" is host tampering.
        match crate::meta::load_seqno_reserve(&cfg.dir, log_key)? {
            Some(bound) => next_seqno = next_seqno.max(bound),
            None if !ids.is_empty() => {
                return Err(LogError::MetaCorrupt { file: "SEQNO" });
            }
            None => {}
        }
        let reserved = next_seqno + SEQNO_RESERVE_STEP;
        crate::meta::save_seqno_reserve(&cfg.dir, log_key, reserved)?;

        let active_id = ids.last().copied().unwrap_or(0);
        stats.entry(active_id).or_default();
        let path = segment_path(&cfg.dir, active_id);
        let mut writer = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| LogError::io("open-segment", e))?;
        let active_len =
            writer.seek(SeekFrom::End(0)).map_err(|e| LogError::io("seek-segment", e))?;

        Ok(SegmentLog {
            dir: cfg.dir.clone(),
            cfg,
            sealer,
            log_key: *log_key,
            stats,
            active_id,
            active_len,
            writer,
            next_seqno,
            reserved,
            unsynced_bytes: 0,
            syncs: 0,
            fault_hook: None,
        })
    }

    /// Append a record under a freshly allocated sequence number.
    pub fn append(
        &mut self,
        kind: RecordKind,
        key: &[u8],
        value: &[u8],
    ) -> Result<AppendInfo, LogError> {
        let seqno = self.next_seqno;
        if seqno >= self.reserved {
            let bound = seqno + SEQNO_RESERVE_STEP;
            crate::meta::save_seqno_reserve(&self.dir, &self.log_key, bound)?;
            self.reserved = bound;
        }
        let info = self.append_with_seqno(seqno, kind, key, value)?;
        self.next_seqno = seqno + 1;
        Ok(info)
    }

    /// Append a record that *reuses* an existing sequence number — the
    /// compactor moving a live record into a younger segment. Keeping
    /// the seqno keeps the ciphertext and the replay latest-wins
    /// resolution byte-for-byte stable, so checkpointed content roots
    /// survive compaction.
    pub fn append_rewrite(
        &mut self,
        seqno: u64,
        kind: RecordKind,
        key: &[u8],
        value: &[u8],
    ) -> Result<AppendInfo, LogError> {
        debug_assert!(seqno < self.next_seqno, "rewrite must reuse an allocated seqno");
        self.append_with_seqno(seqno, kind, key, value)
    }

    fn append_with_seqno(
        &mut self,
        seqno: u64,
        kind: RecordKind,
        key: &[u8],
        value: &[u8],
    ) -> Result<AppendInfo, LogError> {
        let mut frame = self.sealer.encode(seqno, kind, key, value);
        let frame_len = frame.len() as u64;
        if self.active_len > 0 && self.active_len + frame_len > self.cfg.segment_bytes {
            self.rotate()?;
        }
        let mut write_len = frame.len();
        if let Some(hook) = self.fault_hook.as_mut() {
            if let Some(torn) = hook(&mut frame) {
                write_len = torn.min(frame.len());
            }
        }
        let ptr =
            RecordPtr { segment: self.active_id, offset: self.active_len, len: frame_len as u32 };
        self.writer.write_all(&frame[..write_len]).map_err(|e| LogError::io("append", e))?;
        if self.cfg.sync_writes {
            if self.cfg.sync_window_bytes == 0 {
                // Classic durability: every append pays its own fsync.
                self.do_sync()?;
            } else {
                // Group commit: accumulate until the window fills; the
                // owner's covering sync() before acking closes smaller
                // windows.
                self.unsynced_bytes += frame_len;
                if self.unsynced_bytes >= self.cfg.sync_window_bytes {
                    self.do_sync()?;
                }
            }
        }
        // Account the intended length even when the hook tore the
        // write: the harness kills the process right after, and replay
        // truncates the tail.
        self.active_len += frame_len;
        let s = self.stats.entry(self.active_id).or_default();
        s.total_bytes += frame_len;
        s.records += 1;
        Ok(AppendInfo { ptr, seqno })
    }

    fn do_sync(&mut self) -> Result<(), LogError> {
        self.writer.sync_data().map_err(|e| LogError::io("sync", e))?;
        self.unsynced_bytes = 0;
        self.syncs += 1;
        Ok(())
    }

    fn rotate(&mut self) -> Result<(), LogError> {
        // A retiring segment is always fully synced — the group-commit
        // window never spans a rotation.
        self.do_sync()?;
        self.active_id += 1;
        self.active_len = 0;
        self.stats.entry(self.active_id).or_default();
        let path = segment_path(&self.dir, self.active_id);
        self.writer = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| LogError::io("open-segment", e))?;
        Ok(())
    }

    /// Read and verify the record at `ptr`. Any mismatch between the
    /// bytes on disk and what was sealed is a typed error, never a
    /// wrong answer.
    pub fn read(
        &mut self,
        ptr: RecordPtr,
    ) -> Result<(RecordKind, Vec<u8>, Vec<u8>, u64), LogError> {
        if ptr.segment == self.active_id {
            // The writer's append cursor and a reader share the file;
            // flush ordering is append-before-index-update, so the
            // bytes are already there.
            self.writer.flush().map_err(|e| LogError::io("flush", e))?;
        }
        let path = segment_path(&self.dir, ptr.segment);
        let mut f = File::open(&path).map_err(|e| LogError::io("open-segment", e))?;
        f.seek(SeekFrom::Start(ptr.offset)).map_err(|e| LogError::io("seek-segment", e))?;
        let mut frame = vec![0u8; ptr.len as usize];
        f.read_exact(&mut frame)
            .map_err(|_| LogError::Corrupt { segment: ptr.segment, offset: ptr.offset })?;
        let stored = u32::from_le_bytes(frame[..4].try_into().expect("4 bytes"));
        if stored.checked_add(4) != Some(ptr.len) {
            return Err(LogError::Corrupt { segment: ptr.segment, offset: ptr.offset });
        }
        let rec: DecodedRecord = self.sealer.decode(&frame, ptr.segment, ptr.offset)?;
        Ok((rec.kind, rec.key, rec.value, rec.seqno))
    }

    /// Mark the record at `ptr` superseded, feeding the compactor's
    /// victim choice.
    pub fn mark_dead(&mut self, ptr: RecordPtr) {
        if let Some(s) = self.stats.get_mut(&ptr.segment) {
            s.dead_bytes = (s.dead_bytes + ptr.len as u64).min(s.total_bytes);
            s.dead_records = (s.dead_records + 1).min(s.records);
        }
    }

    /// The sealed (non-active) segment with the highest dead ratio at
    /// or above `min_dead_ratio`, if any.
    pub fn victim_segment(&self, min_dead_ratio: f64) -> Option<u64> {
        self.stats
            .iter()
            .filter(|(&id, s)| id != self.active_id && s.total_bytes > 0)
            .filter(|(_, s)| s.dead_ratio() >= min_dead_ratio)
            .max_by(|a, b| {
                a.1.dead_ratio().partial_cmp(&b.1.dead_ratio()).expect("ratios are finite")
            })
            .map(|(&id, _)| id)
    }

    /// Delete a fully-compacted segment file. Refuses the active
    /// segment.
    pub fn remove_segment(&mut self, id: u64) -> Result<(), LogError> {
        assert_ne!(id, self.active_id, "cannot remove the active segment");
        std::fs::remove_file(segment_path(&self.dir, id))
            .map_err(|e| LogError::io("remove-segment", e))?;
        self.stats.remove(&id);
        Ok(())
    }

    /// Flush and fsync the active segment — the covering fsync that
    /// closes an open group-commit window.
    pub fn sync(&mut self) -> Result<(), LogError> {
        self.do_sync()
    }

    /// Bytes appended since the last fsync (0 when every append syncs).
    /// Non-zero means acknowledging those writes requires a covering
    /// [`SegmentLog::sync`] first.
    pub fn pending_sync_bytes(&self) -> u64 {
        self.unsynced_bytes
    }

    /// Data fsyncs issued so far (group-commit coalescing metric).
    pub fn sync_count(&self) -> u64 {
        self.syncs
    }

    /// The highest sequence number handed out so far (0 if none).
    pub fn last_seqno(&self) -> u64 {
        self.next_seqno - 1
    }

    /// The current append frontier: (active segment id, byte offset).
    /// Everything at strictly lower (segment, offset) is flushed state
    /// a crash cut can land in.
    pub fn frontier(&self) -> (u64, u64) {
        (self.active_id, self.active_len)
    }

    /// Occupancy stats per segment, in id order.
    pub fn segment_stats(&self) -> Vec<(u64, SegmentStats)> {
        self.stats.iter().map(|(&id, &s)| (id, s)).collect()
    }

    /// Total record bytes across all segments.
    pub fn total_bytes(&self) -> u64 {
        self.stats.values().map(|s| s.total_bytes).sum()
    }

    /// Number of segment files.
    pub fn segment_count(&self) -> usize {
        self.stats.len()
    }

    /// Install (or clear) the append fault hook. Chaos harness only.
    pub fn set_fault_hook(&mut self, hook: Option<AppendFaultHook>) {
        self.fault_hook = hook;
    }
}

/// Whether `dir` holds any segment files (used by [`crate::meta`] to
/// refuse re-minting a nonce over an existing log).
pub(crate) fn dir_has_segments(dir: &std::path::Path) -> Result<bool, LogError> {
    match std::fs::read_dir(dir) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
        Err(e) => Err(LogError::io("read-dir", e)),
        Ok(_) => Ok(!list_segment_ids(dir)?.is_empty()),
    }
}

fn list_segment_ids(dir: &std::path::Path) -> Result<Vec<u64>, LogError> {
    let mut ids = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| LogError::io("read-dir", e))?;
    for entry in entries {
        let entry = entry.map_err(|e| LogError::io("read-dir", e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(id) = name.strip_prefix("seg-").and_then(|s| s.strip_suffix(".log")) {
            if let Ok(id) = id.parse::<u64>() {
                ids.push(id);
            }
        }
    }
    Ok(ids)
}

/// Replay one segment file. `last` selects torn-tail tolerance: only
/// the final segment may end mid-frame (a crash), and the tear is
/// truncated off so the next append starts clean. `next_seqno` is
/// raised past every seqno seen.
fn replay_segment(
    dir: &std::path::Path,
    id: u64,
    sealer: &Sealer,
    last: bool,
    next_seqno: &mut u64,
    sink: &mut dyn FnMut(ReplayRecord),
) -> Result<SegmentStats, LogError> {
    let path = segment_path(dir, id);
    let mut bytes = Vec::new();
    File::open(&path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| LogError::io("open-segment", e))?;

    let mut stats = SegmentStats::default();
    let mut off = 0usize;
    while off < bytes.len() {
        let remaining = bytes.len() - off;
        let torn = |n: usize| -> bool { remaining < n };
        // An incomplete length field, or a frame whose declared extent
        // runs past EOF, is a torn tail — tolerable only on the last
        // segment.
        let frame_total = if torn(4) {
            None
        } else {
            let flen = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"));
            if !(MIN_FRAME_LEN..=MAX_FRAME_LEN).contains(&flen) {
                // A length a writer could never have produced: not a
                // tear, corruption.
                return Err(LogError::Corrupt { segment: id, offset: off as u64 });
            }
            if torn(4 + flen as usize) {
                None
            } else {
                Some(4 + flen as usize)
            }
        };
        let Some(frame_total) = frame_total else {
            if last {
                // Crash tear: drop the tail and stop.
                let f = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| LogError::io("open-segment", e))?;
                f.set_len(off as u64).map_err(|e| LogError::io("truncate", e))?;
                break;
            }
            return Err(LogError::Corrupt { segment: id, offset: off as u64 });
        };
        let frame = &bytes[off..off + frame_total];
        let rec = sealer.decode(frame, id, off as u64)?;
        let ptr = RecordPtr { segment: id, offset: off as u64, len: frame_total as u32 };
        *next_seqno = (*next_seqno).max(rec.seqno + 1);
        stats.total_bytes += frame_total as u64;
        stats.records += 1;
        sink(ReplayRecord {
            ptr,
            seqno: rec.seqno,
            kind: rec.kind,
            key: rec.key,
            value: rec.value,
        });
        off += frame_total;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{crash_cut, flip_byte, segment_file_len};

    const KEY: &[u8; 16] = b"segment-test-key";

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "aria-log-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn collect_replay(
        dir: &std::path::Path,
        segment_bytes: u64,
    ) -> Result<Vec<ReplayRecord>, LogError> {
        let mut seen = Vec::new();
        SegmentLog::open(
            LogConfig::new(dir.to_path_buf()).segment_bytes(segment_bytes),
            KEY,
            &mut |r| seen.push(r),
        )?;
        Ok(seen)
    }

    #[test]
    fn append_read_replay_round_trip() {
        let dir = tmpdir("rt");
        let mut log = SegmentLog::open(LogConfig::new(dir.clone()), KEY, &mut |_| {}).unwrap();
        let a = log.append(RecordKind::Put, b"k1", b"v1").unwrap();
        let b = log.append(RecordKind::Put, b"k2", b"v2").unwrap();
        let c = log.append(RecordKind::Delete, b"k1", b"").unwrap();
        assert_eq!((a.seqno, b.seqno, c.seqno), (1, 2, 3));
        let (kind, key, value, seqno) = log.read(b.ptr).unwrap();
        assert_eq!(
            (kind, key.as_slice(), value.as_slice(), seqno),
            (RecordKind::Put, b"k2".as_slice(), b"v2".as_slice(), 2)
        );
        drop(log);

        let seen = collect_replay(&dir, 8 << 20).unwrap();
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[2].kind, RecordKind::Delete);
        assert_eq!(seen[2].key, b"k1");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_spreads_records_across_segments() {
        let dir = tmpdir("rot");
        let mut log =
            SegmentLog::open(LogConfig::new(dir.clone()).segment_bytes(4096), KEY, &mut |_| {})
                .unwrap();
        for i in 0..200u32 {
            log.append(RecordKind::Put, &i.to_le_bytes(), &[0u8; 64]).unwrap();
        }
        assert!(log.segment_count() > 1, "200 records must rotate past 4 KiB");
        drop(log);
        let seen = collect_replay(&dir, 4096).unwrap();
        assert_eq!(seen.len(), 200);
        // Seqnos survive replay in order.
        assert!(seen.windows(2).all(|w| w[0].seqno < w[1].seqno));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_truncated_and_prefix_survives() {
        let dir = tmpdir("torn");
        let mut log = SegmentLog::open(LogConfig::new(dir.clone()), KEY, &mut |_| {}).unwrap();
        for i in 0..20u32 {
            log.append(RecordKind::Put, &i.to_le_bytes(), b"payload").unwrap();
        }
        let (seg, frontier) = log.frontier();
        drop(log);

        // Cut inside the last record at every byte of its frame.
        let full = segment_file_len(&dir, seg).unwrap();
        assert_eq!(full, frontier);
        for cut in [frontier - 1, frontier - 17, frontier - 30] {
            // Restore then cut.
            let dir2 = tmpdir("torn-cut");
            copy_dir(&dir, &dir2);
            crash_cut(&dir2, seg, cut).unwrap();
            let seen = collect_replay(&dir2, 8 << 20).unwrap();
            assert_eq!(seen.len(), 19, "cut at {cut} must drop exactly the torn record");
            // File was truncated to the last intact frame boundary.
            let after = segment_file_len(&dir2, seg).unwrap();
            assert!(after <= cut);
            // And the log is appendable again.
            let mut log = SegmentLog::open(LogConfig::new(dir2.clone()), KEY, &mut |_| {}).unwrap();
            log.append(RecordKind::Put, b"new", b"write").unwrap();
            let _ = std::fs::remove_dir_all(&dir2);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_is_detected_not_truncated() {
        let dir = tmpdir("flip");
        let mut log = SegmentLog::open(LogConfig::new(dir.clone()), KEY, &mut |_| {}).unwrap();
        for i in 0..10u32 {
            log.append(RecordKind::Put, &i.to_le_bytes(), b"payload").unwrap();
        }
        drop(log);
        // Flip a byte in the middle of the file (inside some record's
        // sealed body, not a length field).
        let len = segment_file_len(&dir, 0).unwrap();
        flip_byte(&dir, 0, len / 2, 0x10).unwrap();
        let err = collect_replay(&dir, 8 << 20).expect_err("flip must fail replay");
        assert!(
            matches!(err, LogError::Corrupt { segment: 0, .. }),
            "plain flip breaks the CRC: {err:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_rewrite_preserves_seqno_and_bytes() {
        let dir = tmpdir("compact");
        let mut log =
            SegmentLog::open(LogConfig::new(dir.clone()).segment_bytes(4096), KEY, &mut |_| {})
                .unwrap();
        let mut ptrs = Vec::new();
        for i in 0..100u32 {
            ptrs.push(log.append(RecordKind::Put, &i.to_le_bytes(), &[7u8; 64]).unwrap());
        }
        // Kill most of segment 0, then compact it.
        let victims: Vec<_> = ptrs.iter().filter(|p| p.ptr.segment == 0).collect();
        assert!(victims.len() > 2);
        for info in &victims[..victims.len() - 1] {
            log.mark_dead(info.ptr);
        }
        let victim = log.victim_segment(0.5).expect("segment 0 is mostly dead");
        assert_eq!(victim, 0);
        // Rewrite the one live record.
        let live = victims[victims.len() - 1];
        let (kind, key, value, seqno) = log.read(live.ptr).unwrap();
        assert_eq!(seqno, live.seqno);
        let moved = log.append_rewrite(seqno, kind, &key, &value).unwrap();
        assert_eq!(moved.seqno, seqno);
        log.remove_segment(0).unwrap();
        let next = log.append(RecordKind::Put, b"after", b"compaction").unwrap();
        assert!(next.seqno > 100, "fresh seqnos must not collide after rewrite");
        drop(log);

        // Replay: the rewritten record must surface with its original
        // seqno; the removed segment is simply gone.
        let seen = collect_replay(&dir, 4096).unwrap();
        let found = seen.iter().find(|r| r.seqno == seqno).expect("rewritten record");
        assert_eq!(found.key, key);
        assert_eq!(found.value, value);
        assert!(seen.iter().all(|r| r.ptr.segment != 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_append_hook_simulates_crash() {
        let dir = tmpdir("hook");
        let mut log = SegmentLog::open(LogConfig::new(dir.clone()), KEY, &mut |_| {}).unwrap();
        log.append(RecordKind::Put, b"whole", b"record").unwrap();
        log.set_fault_hook(Some(Box::new(|frame: &mut Vec<u8>| Some(frame.len() / 2))));
        log.append(RecordKind::Put, b"torn", b"record").unwrap();
        drop(log);
        let seen = collect_replay(&dir, 8 << 20).unwrap();
        assert_eq!(seen.len(), 1, "torn append must vanish on replay");
        assert_eq!(seen[0].key, b"whole");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_window_coalesces_fsyncs() {
        let dir = tmpdir("gc-coalesce");
        // Per-append fsync: every append is one sync.
        let mut log =
            SegmentLog::open(LogConfig::new(dir.clone()).sync_writes(true), KEY, &mut |_| {})
                .unwrap();
        for i in 0..8u32 {
            log.append(RecordKind::Put, &i.to_le_bytes(), b"payload").unwrap();
        }
        assert_eq!(log.sync_count(), 8);
        drop(log);
        let _ = std::fs::remove_dir_all(&dir);

        // Windowed: appends accumulate, the covering sync pays once.
        let dir = tmpdir("gc-window");
        let mut log = SegmentLog::open(
            LogConfig::new(dir.clone()).sync_writes(true).sync_window_bytes(1 << 20),
            KEY,
            &mut |_| {},
        )
        .unwrap();
        for i in 0..8u32 {
            log.append(RecordKind::Put, &i.to_le_bytes(), b"payload").unwrap();
        }
        assert_eq!(log.sync_count(), 0, "small appends must not fsync inside the window");
        assert!(log.pending_sync_bytes() > 0);
        log.sync().unwrap();
        assert_eq!(log.sync_count(), 1, "one covering fsync for the whole batch");
        assert_eq!(log.pending_sync_bytes(), 0);
        // A full window triggers an inline fsync without waiting for
        // the owner.
        let big = vec![0u8; 4096];
        let mut tiny = SegmentLog::open(
            LogConfig::new(tmpdir("gc-full")).sync_writes(true).sync_window_bytes(4096),
            KEY,
            &mut |_| {},
        )
        .unwrap();
        tiny.append(RecordKind::Put, b"k", &big).unwrap();
        assert_eq!(tiny.sync_count(), 1, "window overflow must fsync inline");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_inside_sync_window_loses_only_unacked_suffix() {
        let dir = tmpdir("gc-crash");
        let mut log = SegmentLog::open(
            LogConfig::new(dir.clone()).sync_writes(true).sync_window_bytes(1 << 20),
            KEY,
            &mut |_| {},
        )
        .unwrap();
        // Ten acked writes: the covering sync ran before any ack.
        for i in 0..10u32 {
            log.append(RecordKind::Put, &i.to_le_bytes(), b"acked").unwrap();
        }
        log.sync().unwrap();
        let (seg, durable_frontier) = log.frontier();
        // Five more inside the open window — never acked.
        for i in 10..15u32 {
            log.append(RecordKind::Put, &i.to_le_bytes(), b"unacked").unwrap();
        }
        drop(log);
        // The crash model: everything past the last fsync is lost.
        crash_cut(&dir, seg, durable_frontier).unwrap();
        let seen = collect_replay(&dir, 8 << 20).unwrap();
        assert_eq!(seen.len(), 10, "exactly the acked prefix survives");
        assert!(seen.iter().all(|r| r.value == b"acked"));
        // And the log remains appendable with fresh seqnos.
        let mut log = SegmentLog::open(
            LogConfig::new(dir.clone()).sync_writes(true).sync_window_bytes(1 << 20),
            KEY,
            &mut |_| {},
        )
        .unwrap();
        let fresh = log.append(RecordKind::Put, b"after", b"crash").unwrap();
        assert!(fresh.seqno > 15, "torn seqnos must not be reused");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_seqno_is_never_reallocated() {
        let dir = tmpdir("seqno-reuse");
        let mut log = SegmentLog::open(LogConfig::new(dir.clone()), KEY, &mut |_| {}).unwrap();
        for i in 0..5u32 {
            log.append(RecordKind::Put, &i.to_le_bytes(), b"payload").unwrap();
        }
        let (seg, frontier) = log.frontier();
        drop(log);
        // Tear the last record (seqno 5) off; the host may have kept
        // the torn ciphertext bytes.
        crash_cut(&dir, seg, frontier - 3).unwrap();
        let mut seen = Vec::new();
        let mut log =
            SegmentLog::open(LogConfig::new(dir.clone()), KEY, &mut |r| seen.push(r.seqno))
                .unwrap();
        assert_eq!(seen.last().copied(), Some(4));
        // The next allocation must NOT reuse seqno 5 with different
        // plaintext — that would repeat a CTR (key, counter) pair. The
        // sealed reservation forces allocation past the pre-crash
        // bound.
        let fresh = log.append(RecordKind::Put, b"other", b"plaintext").unwrap();
        assert!(fresh.seqno > 5, "torn seqno reallocated: got {}", fresh.seqno);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_seqno_reservation_with_segments_refused() {
        let dir = tmpdir("seqno-gone");
        let mut log = SegmentLog::open(LogConfig::new(dir.clone()), KEY, &mut |_| {}).unwrap();
        log.append(RecordKind::Put, b"k", b"v").unwrap();
        drop(log);
        std::fs::remove_file(crate::meta::seqno_path(&dir)).unwrap();
        let err = match SegmentLog::open(LogConfig::new(dir.clone()), KEY, &mut |_| {}) {
            Ok(_) => panic!("deleted reservation over live segments must refuse"),
            Err(e) => e,
        };
        assert_eq!(err, LogError::MetaCorrupt { file: "SEQNO" });
        assert!(err.is_tamper());
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn copy_dir(from: &PathBuf, to: &PathBuf) {
        std::fs::create_dir_all(to).unwrap();
        for entry in std::fs::read_dir(from).unwrap() {
            let entry = entry.unwrap();
            std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
        }
    }
}
