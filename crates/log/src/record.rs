//! Sealed record framing: CRC for crash detection, CMAC for tamper
//! detection, CTR encryption for confidentiality.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     frame_len  — bytes that follow this field
//! 4       4     crc32      — IEEE CRC over bytes [8, 8+frame_len-4)
//! 8       8     seqno
//! 16      1     kind       — 0 put, 1 delete (tombstone)
//! 17      4     klen
//! 21      4     vlen
//! 25      k+v   ciphertext — CTR(key || value), counter from seqno
//! 25+k+v  16    mac        — CMAC over seqno|kind|klen|vlen|ciphertext
//! ```
//!
//! The split of responsibilities matters for recovery semantics: the
//! CRC is *not* a secret and a malicious host can recompute it, so it
//! proves nothing about integrity — it exists purely so a reader can
//! distinguish "the tail of this file was torn by a crash" from "these
//! bytes were deliberately rewritten" (which passes the CRC but fails
//! the MAC). Encrypt-then-MAC; the MAC covers the header fields so a
//! record cannot be re-typed (put↔delete) or length-spliced.

use aria_crypto::{CipherSuite, RealSuite, MAC_LEN};

use crate::LogError;

/// Largest key a log record will frame.
pub const MAX_KEY_LEN: usize = 1 << 20;
/// Largest value a log record will frame.
pub const MAX_VALUE_LEN: usize = 1 << 25;

/// Fixed bytes before the ciphertext: frame_len + crc + seqno + kind +
/// klen + vlen.
pub(crate) const HEADER_LEN: usize = 4 + 4 + 8 + 1 + 4 + 4;

/// Upper bound on `frame_len` accepted from disk; anything larger is
/// corruption (a crash can truncate a frame, not inflate one).
pub(crate) const MAX_FRAME_LEN: u32 =
    (HEADER_LEN - 4 + MAX_KEY_LEN + MAX_VALUE_LEN + MAC_LEN) as u32;

/// Smallest `frame_len` a writer can produce (empty key and value).
pub(crate) const MIN_FRAME_LEN: u32 = (HEADER_LEN - 4 + MAC_LEN) as u32;

/// What a record asserts about its key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// The key maps to the record's value.
    Put,
    /// The key was deleted at this sequence number (tombstone; the
    /// value payload is empty).
    Delete,
}

impl RecordKind {
    fn to_byte(self) -> u8 {
        match self {
            RecordKind::Put => 0,
            RecordKind::Delete => 1,
        }
    }

    fn from_byte(b: u8) -> Option<RecordKind> {
        match b {
            0 => Some(RecordKind::Put),
            1 => Some(RecordKind::Delete),
            _ => None,
        }
    }
}

/// Stable address of a record: segment id, byte offset of the frame
/// within the segment, and total frame length (including the 4-byte
/// `frame_len` field itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecordPtr {
    /// Segment file id.
    pub segment: u64,
    /// Byte offset of the frame inside the segment.
    pub offset: u64,
    /// Total on-disk frame length in bytes.
    pub len: u32,
}

/// Seals and opens records under a 16-byte log key. The CTR counter
/// block is derived from the record's seqno, which is unique per
/// logical write and *preserved by compaction rewrites* — so a rewrite
/// of the same (seqno, key, value) produces byte-identical ciphertext
/// and the content root stays stable across compaction.
///
/// Because the counter depends only on the seqno, keystream uniqueness
/// rests on two caller obligations: the log key must be unique *per
/// log* (derive it by mixing the directory's [`crate::meta`] `LOGID`
/// nonce into the master secret — never seal two logs under one key),
/// and a seqno, once allocated, must never be re-allocated to
/// different plaintext (enforced by the sealed `SEQNO` reservation in
/// [`crate::SegmentLog`]).
pub(crate) struct Sealer {
    suite: RealSuite,
}

impl Sealer {
    pub(crate) fn new(log_key: &[u8; 16]) -> Sealer {
        Sealer { suite: RealSuite::from_master(log_key) }
    }

    fn counter_block(seqno: u64) -> [u8; 16] {
        let mut ctr = [0u8; 16];
        ctr[..8].copy_from_slice(&seqno.to_le_bytes());
        ctr[8..].copy_from_slice(b"arialogr");
        ctr
    }

    /// Encode one record into a fresh frame buffer.
    pub(crate) fn encode(&self, seqno: u64, kind: RecordKind, key: &[u8], value: &[u8]) -> Vec<u8> {
        debug_assert!(key.len() <= MAX_KEY_LEN && value.len() <= MAX_VALUE_LEN);
        let body = key.len() + value.len();
        let frame_len = (HEADER_LEN - 4 + body + MAC_LEN) as u32;
        let mut buf = Vec::with_capacity(4 + frame_len as usize);
        buf.extend_from_slice(&frame_len.to_le_bytes());
        buf.extend_from_slice(&[0u8; 4]); // crc placeholder
        buf.extend_from_slice(&seqno.to_le_bytes());
        buf.push(kind.to_byte());
        buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(value.len() as u32).to_le_bytes());
        let ct_start = buf.len();
        buf.extend_from_slice(key);
        buf.extend_from_slice(value);
        self.suite.crypt(&Self::counter_block(seqno), &mut buf[ct_start..]);
        let mac = self.suite.mac_parts(&[&buf[8..]]);
        buf.extend_from_slice(&mac);
        let crc = crc32(&buf[8..]);
        buf[4..8].copy_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Decode the record framed at `frame` (a complete frame as sliced
    /// by the caller using `frame_len`). `segment`/`offset` only
    /// locate errors.
    pub(crate) fn decode(
        &self,
        frame: &[u8],
        segment: u64,
        offset: u64,
    ) -> Result<DecodedRecord, LogError> {
        let corrupt = LogError::Corrupt { segment, offset };
        if frame.len() < HEADER_LEN + MAC_LEN {
            return Err(corrupt);
        }
        let stored_crc = u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes"));
        if crc32(&frame[8..]) != stored_crc {
            return Err(corrupt);
        }
        let seqno = u64::from_le_bytes(frame[8..16].try_into().expect("8 bytes"));
        let kind_byte = frame[16];
        let klen = u32::from_le_bytes(frame[17..21].try_into().expect("4 bytes")) as usize;
        let vlen = u32::from_le_bytes(frame[21..25].try_into().expect("4 bytes")) as usize;
        if klen > MAX_KEY_LEN
            || vlen > MAX_VALUE_LEN
            || frame.len() != HEADER_LEN + klen + vlen + MAC_LEN
        {
            return Err(corrupt);
        }
        // From here the frame is CRC-consistent; failures are tampering.
        let tampered = LogError::Tampered { segment, offset };
        let mac_start = frame.len() - MAC_LEN;
        let mac: [u8; MAC_LEN] = frame[mac_start..].try_into().expect("16 bytes");
        if !self.suite.verify_parts(&[&frame[8..mac_start]], &mac) {
            return Err(tampered);
        }
        let kind = RecordKind::from_byte(kind_byte).ok_or(tampered)?;
        let mut plain = frame[HEADER_LEN..mac_start].to_vec();
        self.suite.crypt(&Self::counter_block(seqno), &mut plain);
        let value = plain.split_off(klen);
        Ok(DecodedRecord { seqno, kind, key: plain, value })
    }
}

/// A record decoded and verified from disk.
#[derive(Debug)]
pub(crate) struct DecodedRecord {
    pub seqno: u64,
    pub kind: RecordKind,
    pub key: Vec<u8>,
    pub value: Vec<u8>,
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected). Table built at compile time.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in data {
        c = CRC32_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sealer() -> Sealer {
        Sealer::new(b"log-key-16-bytes")
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip_put_and_delete() {
        let s = sealer();
        for (kind, key, value) in [
            (RecordKind::Put, b"alpha".as_slice(), b"value-1".as_slice()),
            (RecordKind::Delete, b"gone".as_slice(), b"".as_slice()),
            (RecordKind::Put, b"".as_slice(), b"".as_slice()),
        ] {
            let frame = s.encode(7, kind, key, value);
            let frame_len = u32::from_le_bytes(frame[..4].try_into().unwrap());
            assert_eq!(frame.len(), 4 + frame_len as usize);
            let rec = s.decode(&frame, 0, 0).expect("round trip");
            assert_eq!(rec.seqno, 7);
            assert_eq!(rec.kind, kind);
            assert_eq!(rec.key, key);
            assert_eq!(rec.value, value);
        }
    }

    #[test]
    fn ciphertext_hides_plaintext_and_is_seqno_deterministic() {
        let s = sealer();
        let a = s.encode(1, RecordKind::Put, b"secret-key", b"secret-value");
        // Plaintext must not appear in the frame.
        assert!(!a.windows(10).any(|w| w == b"secret-key"));
        // Same seqno+payload → identical bytes (compaction rewrites are
        // byte-stable); different seqno → different ciphertext.
        assert_eq!(a, s.encode(1, RecordKind::Put, b"secret-key", b"secret-value"));
        assert_ne!(a, s.encode(2, RecordKind::Put, b"secret-key", b"secret-value"));
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let s = sealer();
        let frame = s.encode(42, RecordKind::Put, b"key", b"value");
        // Bytes 0..4 are frame_len, which governs how the caller slices
        // the frame out of the segment; flips there are exercised by the
        // segment-level tests. Everything from the CRC on is covered
        // here.
        for i in 4..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            let err = s.decode(&bad, 3, 99).expect_err("flip must be rejected");
            assert!(
                matches!(err, LogError::Corrupt { segment: 3, offset: 99 }),
                "flip at {i} gave {err:?}"
            );
        }
    }

    #[test]
    fn crc_fixed_flip_is_tampering() {
        let s = sealer();
        let mut frame = s.encode(9, RecordKind::Put, b"key", b"value");
        // Adversary flips a ciphertext byte and recomputes the CRC.
        let i = HEADER_LEN + 1;
        frame[i] ^= 0xff;
        let crc = crc32(&frame[8..]);
        frame[4..8].copy_from_slice(&crc.to_le_bytes());
        let err = s.decode(&frame, 5, 17).expect_err("must fail MAC");
        assert_eq!(err, LogError::Tampered { segment: 5, offset: 17 });
        assert!(err.is_tamper());
    }

    #[test]
    fn retyping_a_record_is_tampering() {
        let s = sealer();
        let mut frame = s.encode(9, RecordKind::Put, b"key", b"");
        frame[16] = RecordKind::Delete.to_byte(); // put → tombstone
        let crc = crc32(&frame[8..]);
        frame[4..8].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(s.decode(&frame, 0, 0), Err(LogError::Tampered { .. })));
    }

    #[test]
    fn wrong_key_cannot_open_records() {
        let frame = sealer().encode(1, RecordKind::Put, b"k", b"v");
        let other = Sealer::new(b"other-key-16-byt");
        assert!(matches!(other.decode(&frame, 0, 0), Err(LogError::Tampered { .. })));
    }
}
