//! Per-log-directory metadata files: the log identity nonce and the
//! sealed sequence-number reservation.
//!
//! **`LOGID`** — 16 random bytes stamped into the directory the first
//! time a log is created there. The caller mixes this nonce into the
//! log-key derivation, so two logs sealed under the same master secret
//! (e.g. the shards of one `ShardedStore`) still encrypt under
//! *distinct* keys — without it, shard A's record seqno `n` and shard
//! B's record seqno `n` would share an AES-CTR keystream and the
//! untrusted host could XOR the ciphertexts. The file is plain (it is
//! an input to key derivation, so it cannot be MACed under the derived
//! key), but it is self-protecting: any change to it changes the
//! derived key, which makes every already-sealed record and checkpoint
//! fail its MAC — the store refuses to serve rather than decrypting
//! with the wrong key.
//!
//! **`SEQNO`** — a sealed high-water reservation on sequence numbers:
//!
//! ```text
//! 0   4   magic "ASQN"
//! 4   4   crc32 over bytes [8..end)
//! 8   8   reserved  — seqnos < reserved may have been allocated
//! 16  16  mac       — CMAC over bytes [8..16) under the log key
//! ```
//!
//! The writer fsyncs a raised reservation *before* allocating past the
//! previous one, and a fresh open resumes allocation at the reserved
//! bound rather than at `max(replayed seqno) + 1`. That closes a
//! keystream-reuse hole: after a crash tears the tail record off the
//! active segment, replay no longer re-allocates the torn record's
//! seqno to a different plaintext (a host that kept the torn frame
//! would otherwise hold two ciphertexts under one (key, counter)
//! pair). The cost is a bounded gap in the seqno space per reopen,
//! which latest-wins replay is indifferent to.

use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use aria_crypto::{CipherSuite, RealSuite, MAC_LEN};

use crate::record::crc32;
use crate::LogError;

const LOGID_MAGIC: &[u8; 4] = b"ALID";
const LOGID_LEN: usize = 4 + 16;

const SEQNO_MAGIC: &[u8; 4] = b"ASQN";
const SEQNO_LEN: usize = 4 + 4 + 8 + MAC_LEN;

/// Path of the log identity (nonce) file inside a log directory.
pub fn logid_path(dir: &Path) -> PathBuf {
    dir.join("LOGID")
}

/// Path of the sealed seqno reservation file inside a log directory.
pub fn seqno_path(dir: &Path) -> PathBuf {
    dir.join("SEQNO")
}

fn atomic_write(dir: &Path, name: &str, bytes: &[u8]) -> Result<(), LogError> {
    let tmp = dir.join(format!("{name}.tmp"));
    let mut f = std::fs::File::create(&tmp).map_err(|e| LogError::io("meta-write", e))?;
    f.write_all(bytes).map_err(|e| LogError::io("meta-write", e))?;
    f.sync_data().map_err(|e| LogError::io("meta-sync", e))?;
    drop(f);
    std::fs::rename(&tmp, dir.join(name)).map_err(|e| LogError::io("meta-rename", e))?;
    Ok(())
}

/// 16 bytes from the OS entropy pool. `aria-rand` is a deterministic
/// simulation PRNG, not a CSPRNG, so it must not mint key material;
/// if `/dev/urandom` is unavailable (non-Unix test hosts), fall back
/// to whitened clock/pid/address entropy — weak, but the nonce only
/// needs uniqueness per directory, not unpredictability.
fn random_nonce() -> [u8; 16] {
    let mut nonce = [0u8; 16];
    let from_os =
        std::fs::File::open("/dev/urandom").and_then(|mut f| f.read_exact(&mut nonce)).is_ok();
    if !from_os || nonce == [0u8; 16] {
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let mix = |x: &mut u64, v: u64| {
            *x = (*x ^ v).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            *x ^= *x >> 31;
        };
        if let Ok(d) = std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
            mix(&mut x, d.as_nanos() as u64);
            mix(&mut x, (d.as_nanos() >> 64) as u64);
        }
        mix(&mut x, std::process::id() as u64);
        mix(&mut x, &nonce as *const _ as usize as u64);
        nonce[..8].copy_from_slice(&x.to_le_bytes());
        mix(&mut x, 0x2545_f491_4f6c_dd1d);
        nonce[8..].copy_from_slice(&x.to_le_bytes());
    }
    nonce
}

/// Load the log directory's identity nonce, creating it (from OS
/// entropy) on first boot. A directory that already holds segment
/// files but no `LOGID` is [`LogError::MetaCorrupt`]: the file is
/// written before the first segment ever is, so it cannot be missing
/// unless the host removed it.
pub fn load_or_create_log_nonce(dir: &Path) -> Result<[u8; 16], LogError> {
    std::fs::create_dir_all(dir).map_err(|e| LogError::io("create-dir", e))?;
    let path = logid_path(dir);
    match std::fs::read(&path) {
        Ok(buf) => {
            if buf.len() != LOGID_LEN || &buf[..4] != LOGID_MAGIC {
                return Err(LogError::MetaCorrupt { file: "LOGID" });
            }
            Ok(buf[4..].try_into().expect("16 bytes"))
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            if crate::segment::dir_has_segments(dir)? {
                return Err(LogError::MetaCorrupt { file: "LOGID" });
            }
            let nonce = random_nonce();
            let mut buf = Vec::with_capacity(LOGID_LEN);
            buf.extend_from_slice(LOGID_MAGIC);
            buf.extend_from_slice(&nonce);
            atomic_write(dir, "LOGID", &buf)?;
            Ok(nonce)
        }
        Err(e) => Err(LogError::io("meta-open", e)),
    }
}

/// Atomically persist the seqno reservation `reserved` (sealed under
/// the log key).
pub(crate) fn save_seqno_reserve(
    dir: &Path,
    log_key: &[u8; 16],
    reserved: u64,
) -> Result<(), LogError> {
    let suite = RealSuite::from_master(log_key);
    let mut buf = Vec::with_capacity(SEQNO_LEN);
    buf.extend_from_slice(SEQNO_MAGIC);
    buf.extend_from_slice(&[0u8; 4]);
    buf.extend_from_slice(&reserved.to_le_bytes());
    let mac = suite.mac_parts(&[&buf[8..]]);
    buf.extend_from_slice(&mac);
    let crc = crc32(&buf[8..]);
    buf[4..8].copy_from_slice(&crc.to_le_bytes());
    atomic_write(dir, "SEQNO", &buf)
}

/// Load and verify the seqno reservation. `Ok(None)` means the file
/// does not exist (first boot — the caller decides whether that is
/// plausible); a present-but-unverifiable file is
/// [`LogError::MetaCorrupt`].
pub(crate) fn load_seqno_reserve(dir: &Path, log_key: &[u8; 16]) -> Result<Option<u64>, LogError> {
    let buf = match std::fs::read(seqno_path(dir)) {
        Ok(buf) => buf,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(LogError::io("meta-open", e)),
    };
    let corrupt = LogError::MetaCorrupt { file: "SEQNO" };
    if buf.len() != SEQNO_LEN || &buf[..4] != SEQNO_MAGIC {
        return Err(corrupt);
    }
    let stored_crc = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    if crc32(&buf[8..]) != stored_crc {
        return Err(corrupt);
    }
    let suite = RealSuite::from_master(log_key);
    let mac_start = SEQNO_LEN - MAC_LEN;
    let mac: [u8; MAC_LEN] = buf[mac_start..].try_into().expect("16 bytes");
    if !suite.verify_parts(&[&buf[8..mac_start]], &mac) {
        return Err(corrupt);
    }
    Ok(Some(u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"))))
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: &[u8; 16] = b"meta-test-key-00";

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "aria-meta-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn nonce_is_created_once_and_stable() {
        let dir = tmpdir("nonce");
        let a = load_or_create_log_nonce(&dir).unwrap();
        let b = load_or_create_log_nonce(&dir).unwrap();
        assert_eq!(a, b, "reloading must return the persisted nonce");
        assert_ne!(a, [0u8; 16]);
        let other = tmpdir("nonce-other");
        let c = load_or_create_log_nonce(&other).unwrap();
        assert_ne!(a, c, "distinct directories must get distinct nonces");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&other);
    }

    #[test]
    fn missing_nonce_with_segments_is_meta_corrupt() {
        let dir = tmpdir("nonce-gone");
        load_or_create_log_nonce(&dir).unwrap();
        std::fs::write(crate::segment_path(&dir, 0), b"").unwrap();
        std::fs::remove_file(logid_path(&dir)).unwrap();
        assert_eq!(
            load_or_create_log_nonce(&dir),
            Err(LogError::MetaCorrupt { file: "LOGID" }),
            "a deleted nonce must not be silently re-minted over live segments"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seqno_reserve_round_trip_and_flips_refused() {
        let dir = tmpdir("seqno");
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(load_seqno_reserve(&dir, KEY).unwrap(), None);
        save_seqno_reserve(&dir, KEY, 70_000).unwrap();
        assert_eq!(load_seqno_reserve(&dir, KEY).unwrap(), Some(70_000));
        let path = seqno_path(&dir);
        let good = std::fs::read(&path).unwrap();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x11;
            std::fs::write(&path, &bad).unwrap();
            assert_eq!(
                load_seqno_reserve(&dir, KEY),
                Err(LogError::MetaCorrupt { file: "SEQNO" }),
                "flip at byte {i} must be refused"
            );
        }
        std::fs::write(&path, &good[..good.len() - 3]).unwrap();
        assert!(load_seqno_reserve(&dir, KEY).is_err());
        std::fs::write(&path, &good).unwrap();
        assert!(load_seqno_reserve(&dir, b"a-different-key!").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
