//! The verified checkpoint: a tiny sealed file that pins the store's
//! content root to a log position.
//!
//! Layout (little-endian):
//!
//! ```text
//! 0   4   magic "ACKP"
//! 4   4   crc32 over bytes [8..end)
//! 8   8   epoch        — monotonically increasing checkpoint counter
//! 16  8   last_seqno   — log frontier this root was computed at
//! 24  8   pairs        — live pair count at the checkpoint
//! 32  16  root         — commutative content-root digest
//! 48  16  mac          — CMAC over bytes [8..48) under the log key
//! ```
//!
//! The CRC again only classifies damage (crash vs tamper); the MAC is
//! what makes the file trustworthy. The *epoch* is the rollback
//! defence: the file itself cannot prove freshness (the host can keep
//! an old file + matching old segments), so recovery compares the
//! epoch against a minimum the caller obtained out-of-band — in real
//! SGX a monotonic counter, here a value the harness carries across
//! restarts. See DESIGN.md §15.

use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use aria_crypto::{CipherSuite, RealSuite, MAC_LEN};

use crate::record::crc32;
use crate::LogError;

const MAGIC: &[u8; 4] = b"ACKP";
const PAYLOAD_LEN: usize = 8 + 8 + 8 + 16;
const FILE_LEN: usize = 8 + PAYLOAD_LEN + MAC_LEN;

/// A checkpoint of the store's verified content at a log position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint {
    /// Monotonic checkpoint counter; recovery refuses epochs below the
    /// caller's expectation (rollback defence).
    pub epoch: u64,
    /// The log sequence number the root covers: replaying records with
    /// `seqno <= last_seqno` must reproduce exactly this root.
    pub last_seqno: u64,
    /// Live pair count at the checkpoint (diagnostic only; the root is
    /// authoritative).
    pub pairs: u64,
    /// Commutative content-root digest over all live pairs.
    pub root: [u8; 16],
}

/// Path of the checkpoint file inside a log directory.
pub fn checkpoint_path(dir: &Path) -> PathBuf {
    dir.join("CHECKPOINT")
}

/// Atomically persist `cp` into `dir` (temp file + rename, fsynced).
pub fn save_checkpoint(dir: &Path, log_key: &[u8; 16], cp: &Checkpoint) -> Result<(), LogError> {
    let suite = RealSuite::from_master(log_key);
    let mut buf = Vec::with_capacity(FILE_LEN);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&[0u8; 4]);
    buf.extend_from_slice(&cp.epoch.to_le_bytes());
    buf.extend_from_slice(&cp.last_seqno.to_le_bytes());
    buf.extend_from_slice(&cp.pairs.to_le_bytes());
    buf.extend_from_slice(&cp.root);
    let mac = suite.mac_parts(&[&buf[8..]]);
    buf.extend_from_slice(&mac);
    let crc = crc32(&buf[8..]);
    buf[4..8].copy_from_slice(&crc.to_le_bytes());

    let tmp = dir.join("CHECKPOINT.tmp");
    let mut f = std::fs::File::create(&tmp).map_err(|e| LogError::io("checkpoint-write", e))?;
    f.write_all(&buf).map_err(|e| LogError::io("checkpoint-write", e))?;
    f.sync_data().map_err(|e| LogError::io("checkpoint-sync", e))?;
    drop(f);
    std::fs::rename(&tmp, checkpoint_path(dir))
        .map_err(|e| LogError::io("checkpoint-rename", e))?;
    Ok(())
}

/// Load and verify the checkpoint in `dir`. `Ok(None)` means no
/// checkpoint file exists (a first boot); any present-but-unverifiable
/// file is [`LogError::CheckpointCorrupt`] — recovery must refuse, not
/// guess.
pub fn load_checkpoint(dir: &Path, log_key: &[u8; 16]) -> Result<Option<Checkpoint>, LogError> {
    let path = checkpoint_path(dir);
    let mut buf = Vec::new();
    match std::fs::File::open(&path) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(LogError::io("checkpoint-open", e)),
        Ok(mut f) => {
            f.read_to_end(&mut buf).map_err(|e| LogError::io("checkpoint-read", e))?;
        }
    }
    if buf.len() != FILE_LEN || &buf[..4] != MAGIC {
        return Err(LogError::CheckpointCorrupt);
    }
    let stored_crc = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    if crc32(&buf[8..]) != stored_crc {
        return Err(LogError::CheckpointCorrupt);
    }
    let suite = RealSuite::from_master(log_key);
    let mac_start = FILE_LEN - MAC_LEN;
    let mac: [u8; MAC_LEN] = buf[mac_start..].try_into().expect("16 bytes");
    if !suite.verify_parts(&[&buf[8..mac_start]], &mac) {
        return Err(LogError::CheckpointCorrupt);
    }
    Ok(Some(Checkpoint {
        epoch: u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")),
        last_seqno: u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes")),
        pairs: u64::from_le_bytes(buf[24..32].try_into().expect("8 bytes")),
        root: buf[32..48].try_into().expect("16 bytes"),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: &[u8; 16] = b"checkpoint-key-0";

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "aria-ckp-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip_and_absent() {
        let dir = tmpdir("rt");
        assert_eq!(load_checkpoint(&dir, KEY).unwrap(), None);
        let cp = Checkpoint { epoch: 3, last_seqno: 999, pairs: 42, root: [0xab; 16] };
        save_checkpoint(&dir, KEY, &cp).unwrap();
        assert_eq!(load_checkpoint(&dir, KEY).unwrap(), Some(cp));
        // Overwrite is atomic and monotone from the caller's side.
        let cp2 = Checkpoint { epoch: 4, last_seqno: 1200, pairs: 40, root: [0xcd; 16] };
        save_checkpoint(&dir, KEY, &cp2).unwrap();
        assert_eq!(load_checkpoint(&dir, KEY).unwrap(), Some(cp2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_byte_flip_refused() {
        let dir = tmpdir("flip");
        let cp = Checkpoint { epoch: 1, last_seqno: 10, pairs: 5, root: [7; 16] };
        save_checkpoint(&dir, KEY, &cp).unwrap();
        let path = checkpoint_path(&dir);
        let good = std::fs::read(&path).unwrap();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x20;
            std::fs::write(&path, &bad).unwrap();
            assert_eq!(
                load_checkpoint(&dir, KEY),
                Err(LogError::CheckpointCorrupt),
                "flip at byte {i} must be refused"
            );
        }
        // Truncation too.
        std::fs::write(&path, &good[..good.len() - 1]).unwrap();
        assert_eq!(load_checkpoint(&dir, KEY), Err(LogError::CheckpointCorrupt));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_key_refused() {
        let dir = tmpdir("key");
        save_checkpoint(
            &dir,
            KEY,
            &Checkpoint { epoch: 1, last_seqno: 1, pairs: 1, root: [1; 16] },
        )
        .unwrap();
        assert_eq!(load_checkpoint(&dir, b"a-different-key!"), Err(LogError::CheckpointCorrupt));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
