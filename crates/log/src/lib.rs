//! # aria-log — sealed append-only segment log + verified checkpoint
//!
//! The durability substrate for Aria's hot/cold tiering: each shard
//! appends every write to a segment log of **sealed records** (value
//! and key CTR-encrypted under a log key derived from the store's
//! master secret, authenticated by a CMAC) framed by a CRC32 so the
//! enclave can tell *crash damage* (torn tail, garbage suffix) apart
//! from *tampering* (CRC-consistent bytes whose MAC does not verify).
//!
//! On-disk layout inside the log directory:
//!
//! * `seg-<id>.log` — append-only record segments, rotated at
//!   [`LogConfig::segment_bytes`]. Record framing is described in
//!   [`record`].
//! * `CHECKPOINT` — the latest verified checkpoint (epoch, last
//!   sequence number, pair count, content-root digest), written
//!   atomically via a temp file + rename. See [`checkpoint`].
//! * `LOGID` — the directory's random identity nonce, mixed into the
//!   log-key derivation so logs sharing a master secret never share a
//!   CTR keystream. See [`meta`].
//! * `SEQNO` — the sealed seqno high-water reservation, preventing
//!   seqno (and therefore keystream) reuse after a torn-tail
//!   truncation. See [`meta`].
//!
//! Opening a log replays every segment in id order. A record that ends
//! past the end of the **last** segment is a torn tail from a crash and
//! is truncated away; any other framing or CRC failure is
//! [`LogError::Corrupt`], and a CRC-consistent record whose MAC fails
//! is [`LogError::Tampered`] — bit flips are *detected*, never silently
//! truncated into oblivion.
//!
//! The log stores bytes on the untrusted host filesystem; nothing read
//! back is trusted until its MAC verifies inside the (simulated)
//! enclave. What the log alone cannot detect is *rollback* — the host
//! serving a stale-but-internally-consistent prefix. That is the
//! checkpoint's job, together with a minimum-epoch expectation the
//! caller carries (modelling an SGX monotonic counter); see
//! `aria-store`'s tiered recovery and DESIGN.md §15.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod meta;
pub mod record;
pub mod segment;

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

pub use checkpoint::{load_checkpoint, save_checkpoint, Checkpoint};
pub use meta::load_or_create_log_nonce;
pub use record::{RecordKind, RecordPtr, MAX_KEY_LEN, MAX_VALUE_LEN};
pub use segment::{AppendFaultHook, AppendInfo, ReplayRecord, SegmentLog, SegmentStats};

/// Why a log operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogError {
    /// An underlying filesystem operation failed. Not an integrity
    /// verdict — the bytes never made it to or from disk.
    Io {
        /// The operation that failed (`"open"`, `"append"`, ...).
        op: &'static str,
        /// The I/O error kind.
        kind: io::ErrorKind,
        /// Human-readable detail for logs.
        msg: String,
    },
    /// A record frame is structurally broken where a crash cannot
    /// explain it: bad CRC on a fully-present frame, impossible length
    /// fields, or a tear in a non-final segment. The log refuses to
    /// decode past it.
    Corrupt {
        /// Segment the broken frame lives in.
        segment: u64,
        /// Byte offset of the frame within the segment.
        offset: u64,
    },
    /// A record frame is CRC-consistent but its MAC does not verify:
    /// the host rewrote sealed bytes (and fixed up the CRC, which is
    /// not a secret). Detected tampering, never served.
    Tampered {
        /// Segment the tampered frame lives in.
        segment: u64,
        /// Byte offset of the frame within the segment.
        offset: u64,
    },
    /// The checkpoint file exists but fails its CRC or MAC, or has an
    /// impossible layout. Recovery must refuse rather than guess.
    CheckpointCorrupt,
    /// A sealed log metadata file (`LOGID` identity nonce or `SEQNO`
    /// reservation) is malformed, fails its MAC, or is missing where
    /// the write protocol guarantees it exists. Both files are written
    /// atomically before the state they protect, so a crash cannot
    /// explain their absence — this is host tampering.
    MetaCorrupt {
        /// Which file failed (`"LOGID"` or `"SEQNO"`).
        file: &'static str,
    },
    /// The configuration is unusable (zero segment size, missing dir).
    Config(String),
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::Io { op, kind, msg } => write!(f, "log {op} failed ({kind:?}): {msg}"),
            LogError::Corrupt { segment, offset } => {
                write!(f, "corrupt log record in segment {segment} at offset {offset}")
            }
            LogError::Tampered { segment, offset } => {
                write!(f, "tampered log record in segment {segment} at offset {offset}")
            }
            LogError::CheckpointCorrupt => write!(f, "checkpoint file corrupt or tampered"),
            LogError::MetaCorrupt { file } => {
                write!(f, "log metadata file {file} missing, corrupt or tampered")
            }
            LogError::Config(msg) => write!(f, "log config: {msg}"),
        }
    }
}

impl std::error::Error for LogError {}

impl LogError {
    pub(crate) fn io(op: &'static str, e: io::Error) -> LogError {
        LogError::Io { op, kind: e.kind(), msg: e.to_string() }
    }

    /// Whether this error reports detected tampering (as opposed to
    /// crash damage or plain I/O failure).
    pub fn is_tamper(&self) -> bool {
        matches!(
            self,
            LogError::Tampered { .. } | LogError::CheckpointCorrupt | LogError::MetaCorrupt { .. }
        )
    }
}

/// Configuration for a [`SegmentLog`].
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Directory holding the segments and checkpoint.
    pub dir: PathBuf,
    /// Rotate the active segment once it reaches this many bytes.
    pub segment_bytes: u64,
    /// `fsync` data after appends (benches leave it off and model the
    /// flush boundary explicitly). With [`LogConfig::sync_window_bytes`]
    /// at 0 every append pays its own fsync; with a window, fsyncs are
    /// group-committed.
    pub sync_writes: bool,
    /// Group-commit window, in bytes, effective only with
    /// [`LogConfig::sync_writes`]. `0` keeps the classic
    /// fsync-per-append. Non-zero lets appends accumulate un-fsynced
    /// until the window fills (then an inline fsync covers them) or the
    /// owner calls [`SegmentLog::sync`] — the covering fsync it must
    /// issue *before acknowledging* any write in the window. A crash
    /// inside the window can lose only that unacknowledged suffix.
    pub sync_window_bytes: u64,
}

impl LogConfig {
    /// A configuration rooted at `dir` with an 8 MiB segment target.
    pub fn new<P: Into<PathBuf>>(dir: P) -> LogConfig {
        LogConfig {
            dir: dir.into(),
            segment_bytes: 8 << 20,
            sync_writes: false,
            sync_window_bytes: 0,
        }
    }

    /// Set the segment rotation threshold.
    pub fn segment_bytes(mut self, bytes: u64) -> LogConfig {
        self.segment_bytes = bytes;
        self
    }

    /// Enable fsync-per-append.
    pub fn sync_writes(mut self, on: bool) -> LogConfig {
        self.sync_writes = on;
        self
    }

    /// Set the group-commit fsync window (bytes; 0 = fsync per append).
    pub fn sync_window_bytes(mut self, bytes: u64) -> LogConfig {
        self.sync_window_bytes = bytes;
        self
    }

    pub(crate) fn validate(&self) -> Result<(), LogError> {
        // A segment must fit at least one maximal record, or rotation
        // would loop forever trying to make room.
        if self.segment_bytes < 4096 {
            return Err(LogError::Config(format!(
                "segment_bytes {} is below the 4096-byte minimum",
                self.segment_bytes
            )));
        }
        Ok(())
    }
}

/// Path of segment `id` inside `dir`.
pub fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:08}.log"))
}

// ---------------------------------------------------------------------------
// Crash/tamper actuators for tests, benches and chaos drivers.
//
// These operate on the raw files, the way a crashing kernel or a
// malicious host would — the log itself never calls them.

/// Truncate segment `id` to `keep_bytes`, simulating a SIGKILL-style
/// crash that lost the tail of the last write. Returns the previous
/// file length.
pub fn crash_cut(dir: &Path, id: u64, keep_bytes: u64) -> io::Result<u64> {
    let path = segment_path(dir, id);
    let len = std::fs::metadata(&path)?.len();
    let f = std::fs::OpenOptions::new().write(true).open(&path)?;
    f.set_len(keep_bytes.min(len))?;
    Ok(len)
}

/// XOR one byte of segment `id` at `offset` with `mask`, simulating
/// host tampering (or bit rot) in the cold store.
pub fn flip_byte(dir: &Path, id: u64, offset: u64, mask: u8) -> io::Result<()> {
    use std::io::{Read, Seek, SeekFrom, Write};
    let path = segment_path(dir, id);
    let mut f = std::fs::OpenOptions::new().read(true).write(true).open(&path)?;
    let mut b = [0u8; 1];
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(&mut b)?;
    b[0] ^= if mask == 0 { 0x01 } else { mask };
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(&b)?;
    Ok(())
}

/// Length in bytes of segment `id` on disk.
pub fn segment_file_len(dir: &Path, id: u64) -> io::Result<u64> {
    Ok(std::fs::metadata(segment_path(dir, id))?.len())
}
