//! Property tests for the log codec through its public API: round-trip
//! fidelity, crash-cut prefix semantics, and the tamper guarantee that
//! a flipped byte is never *mis-decoded* — every surviving record is
//! byte-identical to one that was appended.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use aria_log::{crash_cut, flip_byte, LogConfig, LogError, RecordKind, ReplayRecord, SegmentLog};
use proptest::prelude::*;

const KEY: &[u8; 16] = b"props-log-key-00";

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "aria-log-props-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

type Op = (bool, Vec<u8>, Vec<u8>);

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (
            any::<bool>(),
            proptest::collection::vec(any::<u8>(), 0..24),
            proptest::collection::vec(any::<u8>(), 0..48),
        ),
        1..24,
    )
}

/// Append `ops`, returning what was written (kind, key, value, seqno).
fn write_ops(
    dir: &Path,
    segment_bytes: u64,
    ops: &[Op],
) -> Vec<(RecordKind, Vec<u8>, Vec<u8>, u64)> {
    let mut log = SegmentLog::open(
        LogConfig::new(dir.to_path_buf()).segment_bytes(segment_bytes),
        KEY,
        &mut |_| {},
    )
    .expect("fresh open");
    let mut written = Vec::new();
    for (is_put, key, value) in ops {
        let kind = if *is_put { RecordKind::Put } else { RecordKind::Delete };
        let value: &[u8] = if *is_put { value } else { &[] };
        let info = log.append(kind, key, value).expect("append");
        written.push((kind, key.clone(), value.to_vec(), info.seqno));
    }
    written
}

fn replay_all(dir: &Path, segment_bytes: u64) -> Result<Vec<ReplayRecord>, LogError> {
    let mut seen = Vec::new();
    SegmentLog::open(
        LogConfig::new(dir.to_path_buf()).segment_bytes(segment_bytes),
        KEY,
        &mut |r| seen.push(r),
    )?;
    Ok(seen)
}

fn total_len(dir: &Path) -> (u64, u64) {
    // (last segment id, its length)
    let mut last = 0u64;
    for entry in std::fs::read_dir(dir).unwrap() {
        let name = entry.unwrap().file_name();
        let name = name.to_string_lossy().to_string();
        if let Some(id) = name.strip_prefix("seg-").and_then(|s| s.strip_suffix(".log")) {
            last = last.max(id.parse::<u64>().unwrap());
        }
    }
    (last, aria_log::segment_file_len(dir, last).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn replay_round_trips_every_record(ops in ops_strategy(), small_seg in any::<bool>()) {
        let dir = tmpdir();
        let seg = if small_seg { 4096 } else { 8 << 20 };
        let written = write_ops(&dir, seg, &ops);
        let seen = replay_all(&dir, seg).expect("clean replay");
        prop_assert_eq!(seen.len(), written.len());
        for (r, w) in seen.iter().zip(written.iter()) {
            prop_assert_eq!(r.kind, w.0);
            prop_assert_eq!(&r.key, &w.1);
            prop_assert_eq!(&r.value, &w.2);
            prop_assert_eq!(r.seqno, w.3);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_cut_yields_exact_prefix(ops in ops_strategy(), cut_frac in 0.0f64..1.0) {
        let dir = tmpdir();
        let written = write_ops(&dir, 8 << 20, &ops);
        let (seg, len) = total_len(&dir);
        prop_assert_eq!(seg, 0);
        let cut = (len as f64 * cut_frac) as u64;
        crash_cut(&dir, seg, cut).unwrap();
        let seen = replay_all(&dir, 8 << 20).expect("cut replay must succeed");
        // Whatever survives is an exact prefix of what was appended.
        prop_assert!(seen.len() <= written.len());
        for (r, w) in seen.iter().zip(written.iter()) {
            prop_assert_eq!(r.kind, w.0);
            prop_assert_eq!(&r.key, &w.1);
            prop_assert_eq!(&r.value, &w.2);
        }
        // And every record wholly below the cut survived.
        for (i, r) in seen.iter().enumerate() {
            prop_assert_eq!(r.seqno, written[i].3);
        }
        let survivors = seen.len();
        drop(seen);
        // Re-open after truncation and append: the log must be writable
        // and the new record must replay.
        {
            let mut log = SegmentLog::open(
                LogConfig::new(dir.to_path_buf()),
                KEY,
                &mut |_| {},
            ).expect("post-cut open");
            log.append(RecordKind::Put, b"post-crash", b"write").expect("append after cut");
        }
        let seen2 = replay_all(&dir, 8 << 20).expect("replay after post-cut append");
        prop_assert_eq!(seen2.len(), survivors + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_flip_never_misdecodes(ops in ops_strategy(), pos_frac in 0.0f64..1.0, mask in 1u8..=255) {
        let dir = tmpdir();
        let written = write_ops(&dir, 8 << 20, &ops);
        let (seg, len) = total_len(&dir);
        prop_assert!(len > 0, "ops_strategy always writes at least one record");
        let pos = ((len - 1) as f64 * pos_frac) as u64;
        flip_byte(&dir, seg, pos, mask).unwrap();
        match replay_all(&dir, 8 << 20) {
            // Detected: the only acceptable errors are integrity ones.
            Err(LogError::Corrupt { .. }) | Err(LogError::Tampered { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
            // Undetected at the log layer: only possible when the flip
            // hit a frame_len field and manufactured a "torn tail" —
            // every surviving record must still be byte-exact, and the
            // loss must be a suffix (the checkpoint root catches the
            // loss one layer up).
            Ok(seen) => {
                prop_assert!(seen.len() < written.len(),
                    "a flip cannot leave all records intact");
                for (r, w) in seen.iter().zip(written.iter()) {
                    prop_assert_eq!(r.kind, w.0);
                    prop_assert_eq!(&r.key, &w.1);
                    prop_assert_eq!(&r.value, &w.2);
                    prop_assert_eq!(r.seqno, w.3);
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
