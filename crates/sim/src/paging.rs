//! Hardware secure-paging simulator.
//!
//! SGX evicts 4 KB EPC pages to untrusted memory (encrypting and
//! integrity-protecting them) when an enclave's working set exceeds the
//! EPC, and faults them back on access. The OS-driven replacement is
//! approximated here with the CLOCK second-chance algorithm, which — like
//! the real mechanism — is *hotness-aware at page granularity*: a 4 KB
//! page holding both hot and cold data is kept or evicted as a unit, the
//! exact effect §III of the paper contrasts with Secure Cache's
//! fine-grained swap.

use crate::cost::PAGE_SIZE;

#[derive(Clone, Copy, Default)]
struct Page {
    resident: bool,
    referenced: bool,
}

/// CLOCK-based pager over a fixed set of virtual enclave pages.
pub struct PagingSim {
    pages: Vec<Page>,
    /// Maximum number of simultaneously resident pages.
    capacity: usize,
    resident: usize,
    hand: usize,
    faults: u64,
    hits: u64,
    evictions: u64,
}

impl PagingSim {
    /// Create a pager over `total_bytes` of enclave-resident data with
    /// room for `capacity_bytes` of it in the EPC at once.
    pub fn new(total_bytes: usize, capacity_bytes: usize) -> Self {
        let n_pages = total_bytes.div_ceil(PAGE_SIZE);
        PagingSim {
            pages: vec![Page::default(); n_pages],
            capacity: (capacity_bytes / PAGE_SIZE).max(1),
            resident: 0,
            hand: 0,
            faults: 0,
            hits: 0,
            evictions: 0,
        }
    }

    /// Total pages in the region.
    pub fn total_pages(&self) -> usize {
        self.pages.len()
    }

    /// Whether the region fits in the EPC entirely (paging never occurs).
    pub fn fits(&self) -> bool {
        self.pages.len() <= self.capacity
    }

    /// Grow the region (e.g., the store expanded). New pages start
    /// non-resident.
    pub fn grow(&mut self, new_total_bytes: usize) {
        let n_pages = new_total_bytes.div_ceil(PAGE_SIZE);
        if n_pages > self.pages.len() {
            self.pages.resize(n_pages, Page::default());
        }
    }

    /// Change the resident capacity (e.g., multiple tenants sharing EPC).
    /// If shrunk below current residency, pages are evicted lazily by the
    /// CLOCK hand on subsequent faults.
    pub fn set_capacity_bytes(&mut self, capacity_bytes: usize) {
        self.capacity = (capacity_bytes / PAGE_SIZE).max(1);
    }

    fn evict_one(&mut self) {
        // CLOCK second chance: clear reference bits until a victim shows.
        loop {
            let idx = self.hand;
            self.hand = (self.hand + 1) % self.pages.len();
            let page = &mut self.pages[idx];
            if !page.resident {
                continue;
            }
            if page.referenced {
                page.referenced = false;
            } else {
                page.resident = false;
                self.resident -= 1;
                self.evictions += 1;
                return;
            }
        }
    }

    /// Touch one page; returns `true` on a fault (page had to be swapped
    /// in).
    pub fn touch_page(&mut self, page: usize) -> bool {
        // Over-capacity eviction can be pending after set_capacity_bytes.
        while self.resident > self.capacity {
            self.evict_one();
        }
        let p = &mut self.pages[page];
        if p.resident {
            p.referenced = true;
            self.hits += 1;
            return false;
        }
        if self.resident >= self.capacity {
            self.evict_one();
        }
        let p = &mut self.pages[page];
        p.resident = true;
        p.referenced = true;
        self.resident += 1;
        self.faults += 1;
        true
    }

    /// Touch a byte range; returns the number of faults incurred.
    pub fn touch_range(&mut self, offset: usize, len: usize) -> u64 {
        let first = offset / PAGE_SIZE;
        let last = (offset + len.max(1) - 1) / PAGE_SIZE;
        let mut faults = 0;
        for page in first..=last.min(self.pages.len().saturating_sub(1)) {
            if self.touch_page(page) {
                faults += 1;
            }
        }
        faults
    }

    /// Faults so far.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Resident-page hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Currently resident pages.
    pub fn resident_pages(&self) -> usize {
        self.resident
    }

    /// Bytes of EPC currently held by resident pages.
    pub fn resident_bytes(&self) -> usize {
        self.resident * PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_when_region_fits() {
        let mut p = PagingSim::new(16 * PAGE_SIZE, 32 * PAGE_SIZE);
        assert!(p.fits());
        for i in 0..16 {
            p.touch_page(i);
        }
        assert_eq!(p.faults(), 16); // cold faults only
        for i in 0..16 {
            assert!(!p.touch_page(i));
        }
        assert_eq!(p.faults(), 16);
    }

    #[test]
    fn thrashing_when_working_set_exceeds_capacity() {
        let mut p = PagingSim::new(8 * PAGE_SIZE, 4 * PAGE_SIZE);
        assert!(!p.fits());
        // Cyclic scan over 8 pages with capacity 4 defeats CLOCK: every
        // touch after warm-up faults.
        for round in 0..10 {
            for i in 0..8 {
                let fault = p.touch_page(i);
                if round > 0 {
                    assert!(fault, "round {round} page {i} should fault");
                }
            }
        }
    }

    #[test]
    fn clock_keeps_hot_pages_resident() {
        let mut p = PagingSim::new(64 * PAGE_SIZE, 8 * PAGE_SIZE);
        // Page 0 is touched between every cold touch: it must stay
        // resident (second chance protects it).
        p.touch_page(0);
        let mut hot_faults = 0;
        for i in 1..64 {
            p.touch_page(i);
            if p.touch_page(0) {
                hot_faults += 1;
            }
        }
        // Strict CLOCK may evict the hot page at a wrap boundary when every
        // resident page is referenced; second chance must still protect it
        // almost always.
        assert!(hot_faults <= 2, "hot page evicted {hot_faults} times");
    }

    #[test]
    fn touch_range_spans_pages() {
        let mut p = PagingSim::new(4 * PAGE_SIZE, 4 * PAGE_SIZE);
        assert_eq!(p.touch_range(PAGE_SIZE - 8, 16), 2);
        assert_eq!(p.touch_range(PAGE_SIZE - 8, 16), 0);
        // Pages 0 and 1 are now resident; a fresh page still faults.
        assert_eq!(p.touch_range(0, 1), 0);
        assert_eq!(p.touch_range(2 * PAGE_SIZE, 1), 1);
    }

    #[test]
    fn capacity_shrink_evicts_lazily() {
        let mut p = PagingSim::new(8 * PAGE_SIZE, 8 * PAGE_SIZE);
        for i in 0..8 {
            p.touch_page(i);
        }
        assert_eq!(p.resident_pages(), 8);
        p.set_capacity_bytes(2 * PAGE_SIZE);
        p.touch_page(0);
        assert!(p.resident_pages() <= 2);
    }

    #[test]
    fn grow_adds_cold_pages() {
        let mut p = PagingSim::new(2 * PAGE_SIZE, 16 * PAGE_SIZE);
        p.grow(4 * PAGE_SIZE);
        assert_eq!(p.total_pages(), 4);
        assert!(p.touch_page(3));
    }
}
