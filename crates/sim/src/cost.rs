//! Cycle-cost model for the simulated SGX platform.
//!
//! Every architectural cost the paper's evaluation depends on is a field
//! here, so experiments can sweep or zero individual terms. Defaults are
//! calibrated to the numbers the paper itself cites for an i7-7700
//! (3.6 GHz): ~40 K cycles per secure-paging event (§I, citing SCONE),
//! 8–14 K cycles per ECALL/OCALL (§II-A, citing HotCalls), EPC access at
//! roughly twice the latency of untrusted DRAM (§IV-E, citing HotCalls),
//! and ~1.5 cycles/byte AES with a fixed setup per invocation.

/// Bytes per CPU cache line; memory costs are charged per line touched.
pub const CACHE_LINE: usize = 64;

/// Bytes per EPC page; hardware secure paging operates at this granularity.
pub const PAGE_SIZE: usize = 4096;

/// All tunable cycle costs of the simulated platform.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Core clock in GHz, used only to convert cycles to ops/s.
    pub clock_ghz: f64,
    /// One hardware secure-paging event (EPC page fault): OS context
    /// switch, copy, re-encryption and SGX integrity-tree update.
    pub epc_page_fault: u64,
    /// Extra charge for touching a resident page of a paged region
    /// (models the EPC walk the paper quotes at ~200 cycles).
    pub epc_page_hit: u64,
    /// Crossing into the enclave.
    pub ecall: u64,
    /// Crossing out of the enclave (e.g., untrusted `malloc`).
    pub ocall: u64,
    /// Fixed cost of one access to untrusted memory (row activation,
    /// pointer chase).
    pub untrusted_access_base: u64,
    /// Per-cache-line streaming cost in untrusted memory.
    pub untrusted_access_per_line: u64,
    /// Fixed cost of one access to EPC memory (MEE decrypt + verify).
    pub epc_access_base: u64,
    /// Per-cache-line cost in EPC memory (~2x untrusted).
    pub epc_access_per_line: u64,
    /// Fixed cost of one AES-CTR invocation (key schedule is cached; this
    /// is call overhead).
    pub aes_setup: u64,
    /// Cost per 16-byte AES block encrypted/decrypted.
    pub aes_per_block: u64,
    /// Fixed cost of one CMAC invocation.
    pub cmac_setup: u64,
    /// Cost per 16-byte CMAC block absorbed.
    pub cmac_per_block: u64,
    /// Fixed per-request overhead (dispatch, argument marshalling).
    pub request_fixed: u64,
    /// Hit-path metadata update for an LRU-managed Secure Cache (list
    /// unlink/relink in EPC memory); FIFO avoids this (§IV-E).
    pub lru_hit_update: u64,
    /// Hash-map style lookup in Secure Cache metadata (per probe).
    pub cache_lookup: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            clock_ghz: 3.6,
            epc_page_fault: 40_000,
            epc_page_hit: 200,
            ecall: 10_000,
            ocall: 10_000,
            untrusted_access_base: 100,
            untrusted_access_per_line: 30,
            epc_access_base: 150,
            epc_access_per_line: 60,
            aes_setup: 100,
            aes_per_block: 24,
            cmac_setup: 200,
            cmac_per_block: 24,
            request_fixed: 600,
            lru_hit_update: 150,
            cache_lookup: 80,
        }
    }
}

impl CostModel {
    /// A model with every SGX-specific cost zeroed: plain DRAM accesses
    /// only, no crypto, no crossings. Used for the "Aria w/o SGX"
    /// comparison in Figure 12.
    pub fn no_sgx() -> Self {
        CostModel {
            epc_page_fault: 0,
            epc_page_hit: 0,
            ecall: 0,
            ocall: 0,
            epc_access_base: 100, // EPC behaves like ordinary DRAM
            epc_access_per_line: 30,
            aes_setup: 0,
            aes_per_block: 0,
            cmac_setup: 0,
            cmac_per_block: 0,
            lru_hit_update: 0,
            ..CostModel::default()
        }
    }

    #[inline]
    fn lines(bytes: usize) -> u64 {
        (bytes.max(1).div_ceil(CACHE_LINE)) as u64
    }

    /// Cycles to read or write `bytes` of untrusted memory.
    #[inline]
    pub fn untrusted_access(&self, bytes: usize) -> u64 {
        self.untrusted_access_base + self.untrusted_access_per_line * Self::lines(bytes)
    }

    /// Cycles to read or write `bytes` of EPC memory (MEE-protected).
    #[inline]
    pub fn epc_access(&self, bytes: usize) -> u64 {
        self.epc_access_base + self.epc_access_per_line * Self::lines(bytes)
    }

    /// Cycles to CTR-encrypt or decrypt `bytes`.
    #[inline]
    pub fn ctr_crypt(&self, bytes: usize) -> u64 {
        self.aes_setup + self.aes_per_block * (bytes.div_ceil(16) as u64)
    }

    /// Cycles to CMAC `bytes`.
    #[inline]
    pub fn cmac(&self, bytes: usize) -> u64 {
        self.cmac_setup + self.cmac_per_block * (bytes.div_ceil(16).max(1) as u64)
    }

    /// Convert an accumulated cycle count into operations per second.
    pub fn throughput(&self, ops: u64, cycles: u64) -> f64 {
        if cycles == 0 {
            return f64::INFINITY;
        }
        ops as f64 * self.clock_ghz * 1e9 / cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_citations() {
        let c = CostModel::default();
        assert_eq!(c.epc_page_fault, 40_000);
        assert!(c.ecall >= 8_000 && c.ecall <= 14_000);
        // EPC roughly 2x untrusted per line.
        assert!(c.epc_access_per_line >= 2 * c.untrusted_access_per_line - 5);
    }

    #[test]
    fn access_costs_scale_with_lines() {
        let c = CostModel::default();
        assert_eq!(c.untrusted_access(1), c.untrusted_access(64));
        assert!(c.untrusted_access(65) > c.untrusted_access(64));
        assert_eq!(c.untrusted_access(128) - c.untrusted_access(64), c.untrusted_access_per_line);
    }

    #[test]
    fn crypt_costs_scale_with_blocks() {
        let c = CostModel::default();
        assert_eq!(c.ctr_crypt(16) - c.ctr_crypt(1), 0);
        assert_eq!(c.ctr_crypt(32) - c.ctr_crypt(16), c.aes_per_block);
        assert_eq!(c.cmac(48), c.cmac_setup + 3 * c.cmac_per_block);
    }

    #[test]
    fn throughput_conversion() {
        let c = CostModel::default();
        // 3600 cycles/op at 3.6 GHz = 1 M ops/s.
        let t = c.throughput(1_000, 3_600_000);
        assert!((t - 1_000_000.0).abs() < 1.0);
    }

    #[test]
    fn no_sgx_zeroes_protection_costs() {
        let c = CostModel::no_sgx();
        assert_eq!(c.ecall, 0);
        assert_eq!(c.cmac(1024), 0);
        assert_eq!(c.ctr_crypt(1024), 0);
        assert_eq!(c.epc_access(64), c.untrusted_access(64));
    }
}
