//! The simulated enclave: EPC budget accounting, cycle clock, event
//! statistics and hardware-paged regions.
//!
//! A single [`Enclave`] instance represents one SGX enclave (one tenant).
//! It is shared by every component of one store instance via
//! `Rc<Enclave>`; all state is in `Cell`/`RefCell` so the methods take
//! `&self`. Multi-tenant experiments build one enclave per tenant, each
//! with a slice of the physical EPC.

use std::cell::{Cell, RefCell};

use crate::cost::CostModel;
use crate::paging::PagingSim;

/// Usable EPC on the paper's evaluation machine (91 MB).
pub const DEFAULT_EPC_BYTES: usize = 91 * 1024 * 1024;

/// Error returned when an explicit EPC reservation exceeds the budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpcExhausted {
    /// Bytes requested by the failing reservation.
    pub requested: usize,
    /// Bytes still available.
    pub available: usize,
}

impl std::fmt::Display for EpcExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "EPC exhausted: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for EpcExhausted {}

/// Handle to a hardware-paged region declared inside the enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagedRegionId(usize);

/// Monotonic counters describing everything that happened inside the
/// enclave since construction (or the last [`Enclave::reset_metrics`]).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct EnclaveSnapshot {
    /// Simulated cycles elapsed.
    pub cycles: u64,
    /// ECALLs performed.
    pub ecalls: u64,
    /// OCALLs performed.
    pub ocalls: u64,
    /// Hardware secure-paging faults across all paged regions.
    pub page_faults: u64,
    /// Bytes run through CTR encryption/decryption.
    pub bytes_crypted: u64,
    /// CMAC invocations.
    pub macs_computed: u64,
    /// Bytes absorbed by CMAC.
    pub bytes_maced: u64,
    /// Current explicit EPC reservation.
    pub epc_used: u64,
    /// Peak explicit EPC reservation.
    pub epc_peak: u64,
}

/// The simulated SGX enclave.
pub struct Enclave {
    cost: CostModel,
    epc_capacity: usize,
    epc_used: Cell<usize>,
    epc_peak: Cell<usize>,
    cycles: Cell<u64>,
    ecalls: Cell<u64>,
    ocalls: Cell<u64>,
    bytes_crypted: Cell<u64>,
    macs_computed: Cell<u64>,
    bytes_maced: Cell<u64>,
    paged: RefCell<Vec<PagingSim>>,
}

impl std::fmt::Debug for Enclave {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Enclave")
            .field("epc_capacity", &self.epc_capacity)
            .field("epc_used", &self.epc_used.get())
            .field("cycles", &self.cycles.get())
            .finish_non_exhaustive()
    }
}

impl Enclave {
    /// Create an enclave with the given cost model and EPC budget.
    pub fn new(cost: CostModel, epc_capacity: usize) -> Self {
        Enclave {
            cost,
            epc_capacity,
            epc_used: Cell::new(0),
            epc_peak: Cell::new(0),
            cycles: Cell::new(0),
            ecalls: Cell::new(0),
            ocalls: Cell::new(0),
            bytes_crypted: Cell::new(0),
            macs_computed: Cell::new(0),
            bytes_maced: Cell::new(0),
            paged: RefCell::new(Vec::new()),
        }
    }

    /// Enclave with default cost model and the paper's 91 MB EPC.
    pub fn with_default_epc() -> Self {
        Enclave::new(CostModel::default(), DEFAULT_EPC_BYTES)
    }

    /// The enclave's cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Total EPC budget in bytes.
    pub fn epc_capacity(&self) -> usize {
        self.epc_capacity
    }

    /// Bytes of EPC currently reserved via [`Enclave::epc_alloc`].
    pub fn epc_used(&self) -> usize {
        self.epc_used.get()
    }

    /// Bytes of EPC still unreserved.
    pub fn epc_available(&self) -> usize {
        self.epc_capacity - self.epc_used.get()
    }

    /// Reserve `bytes` of EPC for permanently resident trusted data
    /// (Secure Cache contents, pinned Merkle levels, bitmaps, roots).
    pub fn epc_alloc(&self, bytes: usize) -> Result<(), EpcExhausted> {
        let used = self.epc_used.get();
        if used + bytes > self.epc_capacity {
            return Err(EpcExhausted { requested: bytes, available: self.epc_capacity - used });
        }
        self.epc_used.set(used + bytes);
        self.epc_peak.set(self.epc_peak.get().max(used + bytes));
        Ok(())
    }

    /// Release a previous reservation.
    pub fn epc_free(&self, bytes: usize) {
        let used = self.epc_used.get();
        debug_assert!(bytes <= used, "epc_free({bytes}) exceeds reservation {used}");
        self.epc_used.set(used.saturating_sub(bytes));
    }

    // --- cycle charging -------------------------------------------------

    /// Advance the simulated clock by raw cycles.
    #[inline]
    pub fn charge(&self, cycles: u64) {
        self.cycles.set(self.cycles.get() + cycles);
    }

    /// Elapsed simulated cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles.get()
    }

    /// Charge an access to untrusted memory.
    #[inline]
    pub fn access_untrusted(&self, bytes: usize) {
        self.charge(self.cost.untrusted_access(bytes));
    }

    /// Charge an access to EPC memory.
    #[inline]
    pub fn access_epc(&self, bytes: usize) {
        self.charge(self.cost.epc_access(bytes));
    }

    /// Charge (and count) a CTR encryption/decryption of `bytes`.
    #[inline]
    pub fn charge_crypt(&self, bytes: usize) {
        self.charge(self.cost.ctr_crypt(bytes));
        self.bytes_crypted.set(self.bytes_crypted.get() + bytes as u64);
    }

    /// Charge (and count) a CMAC over `bytes`.
    #[inline]
    pub fn charge_mac(&self, bytes: usize) {
        self.charge(self.cost.cmac(bytes));
        self.macs_computed.set(self.macs_computed.get() + 1);
        self.bytes_maced.set(self.bytes_maced.get() + bytes as u64);
    }

    /// Charge an enclave entry.
    pub fn ecall(&self) {
        self.charge(self.cost.ecall);
        self.ecalls.set(self.ecalls.get() + 1);
    }

    /// Charge an enclave exit.
    pub fn ocall(&self) {
        self.charge(self.cost.ocall);
        self.ocalls.set(self.ocalls.get() + 1);
    }

    // --- hardware-paged regions ------------------------------------------

    /// Declare a region of enclave memory subject to hardware secure
    /// paging (used by the Baseline and Aria-w/o-Cache schemes). The
    /// region competes for the EPC *not* reserved via `epc_alloc`.
    pub fn declare_paged_region(&self, total_bytes: usize) -> PagedRegionId {
        let capacity = self.epc_available().max(crate::cost::PAGE_SIZE);
        let mut paged = self.paged.borrow_mut();
        paged.push(PagingSim::new(total_bytes, capacity));
        PagedRegionId(paged.len() - 1)
    }

    /// Touch `len` bytes at `offset` within a paged region, charging page
    /// faults and EPC access costs.
    pub fn touch_paged(&self, region: PagedRegionId, offset: usize, len: usize) {
        let available = self.epc_available().max(crate::cost::PAGE_SIZE);
        let mut paged = self.paged.borrow_mut();
        let sim = &mut paged[region.0];
        // Explicit EPC reservations (epc_alloc) squeeze the page frames
        // left for hardware paging; track that dynamically.
        sim.set_capacity_bytes(available);
        if sim.fits() {
            // Region fits in EPC: plain MEE-protected access.
            drop(paged);
            self.access_epc(len);
            return;
        }
        let faults = sim.touch_range(offset, len);
        drop(paged);
        self.charge(faults * self.cost.epc_page_fault);
        if faults == 0 {
            self.charge(self.cost.epc_page_hit);
        }
        self.access_epc(len);
    }

    /// Grow a paged region (store expansion).
    pub fn grow_paged(&self, region: PagedRegionId, new_total_bytes: usize) {
        self.paged.borrow_mut()[region.0].grow(new_total_bytes);
    }

    /// Faults observed in one region.
    pub fn region_faults(&self, region: PagedRegionId) -> u64 {
        self.paged.borrow()[region.0].faults()
    }

    /// Total faults across all paged regions.
    pub fn total_page_faults(&self) -> u64 {
        self.paged.borrow().iter().map(|p| p.faults()).sum()
    }

    /// EPC bytes held by resident pages of paged regions (in addition to
    /// explicit [`Enclave::epc_used`] reservations).
    pub fn resident_paged_bytes(&self) -> usize {
        self.paged.borrow().iter().map(|p| p.resident_bytes()).sum()
    }

    // --- metrics ----------------------------------------------------------

    /// Snapshot all counters.
    pub fn snapshot(&self) -> EnclaveSnapshot {
        EnclaveSnapshot {
            cycles: self.cycles.get(),
            ecalls: self.ecalls.get(),
            ocalls: self.ocalls.get(),
            page_faults: self.total_page_faults(),
            bytes_crypted: self.bytes_crypted.get(),
            macs_computed: self.macs_computed.get(),
            bytes_maced: self.bytes_maced.get(),
            epc_used: self.epc_used.get() as u64,
            epc_peak: self.epc_peak.get() as u64,
        }
    }

    /// Reset the clock and event counters (EPC reservations and paging
    /// residency are preserved — they are state, not metrics).
    pub fn reset_metrics(&self) {
        self.cycles.set(0);
        self.ecalls.set(0);
        self.ocalls.set(0);
        self.bytes_crypted.set(0);
        self.macs_computed.set(0);
        self.bytes_maced.set(0);
    }

    /// Ops/s for `ops` operations measured between two cycle readings.
    pub fn throughput(&self, ops: u64, start_cycles: u64) -> f64 {
        self.cost.throughput(ops, self.cycles.get() - start_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::PAGE_SIZE;

    #[test]
    fn epc_budget_enforced() {
        let e = Enclave::new(CostModel::default(), 1024);
        assert!(e.epc_alloc(1000).is_ok());
        let err = e.epc_alloc(100).unwrap_err();
        assert_eq!(err.available, 24);
        e.epc_free(1000);
        assert!(e.epc_alloc(1024).is_ok());
        assert_eq!(e.snapshot().epc_peak, 1024);
    }

    #[test]
    fn charging_accumulates() {
        let e = Enclave::with_default_epc();
        let c0 = e.cycles();
        e.ecall();
        e.ocall();
        e.access_untrusted(64);
        e.charge_mac(48);
        let snap = e.snapshot();
        assert_eq!(snap.ecalls, 1);
        assert_eq!(snap.ocalls, 1);
        assert_eq!(snap.macs_computed, 1);
        assert_eq!(snap.bytes_maced, 48);
        assert!(e.cycles() > c0 + 20_000);
    }

    #[test]
    fn paged_region_fitting_in_epc_never_faults() {
        let e = Enclave::new(CostModel::default(), 64 * PAGE_SIZE);
        let r = e.declare_paged_region(8 * PAGE_SIZE);
        for i in 0..1000 {
            e.touch_paged(r, (i * 64) % (8 * PAGE_SIZE), 16);
        }
        assert_eq!(e.region_faults(r), 0);
    }

    #[test]
    fn paged_region_larger_than_epc_faults() {
        let e = Enclave::new(CostModel::default(), 4 * PAGE_SIZE);
        let r = e.declare_paged_region(64 * PAGE_SIZE);
        let before = e.cycles();
        for i in 0..64 {
            e.touch_paged(r, i * PAGE_SIZE, 16);
        }
        assert!(e.region_faults(r) >= 60);
        assert!(e.cycles() - before >= 60 * 40_000);
    }

    #[test]
    fn epc_alloc_shrinks_paging_capacity_for_new_regions() {
        let e = Enclave::new(CostModel::default(), 16 * PAGE_SIZE);
        e.epc_alloc(12 * PAGE_SIZE).unwrap();
        let r = e.declare_paged_region(16 * PAGE_SIZE);
        // Only ~4 pages available: a 16-page cyclic scan must thrash.
        for _ in 0..4 {
            for i in 0..16 {
                e.touch_paged(r, i * PAGE_SIZE, 8);
            }
        }
        assert!(e.region_faults(r) > 30);
    }

    #[test]
    fn reset_metrics_keeps_reservations() {
        let e = Enclave::with_default_epc();
        e.epc_alloc(100).unwrap();
        e.ecall();
        e.reset_metrics();
        assert_eq!(e.cycles(), 0);
        assert_eq!(e.snapshot().ecalls, 0);
        assert_eq!(e.epc_used(), 100);
    }
}
