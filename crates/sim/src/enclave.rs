//! The simulated enclave: EPC budget accounting, cycle clock, event
//! statistics and hardware-paged regions.
//!
//! A single [`Enclave`] instance represents one SGX enclave (one tenant,
//! or one shard of a sharded store). It is shared by every component of
//! one store instance via `Arc<Enclave>`; all state is atomic (counters)
//! or mutex-protected (paged regions), so the methods take `&self` and
//! the type is `Send + Sync` — worker threads can own their shard's
//! enclave while aggregators read counters concurrently. Multi-tenant
//! experiments build one enclave per tenant, each with a slice of the
//! physical EPC; sharded stores build one per shard and aggregate with
//! [`EnclaveStats`].

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::cost::CostModel;
use crate::paging::PagingSim;

/// Usable EPC on the paper's evaluation machine (91 MB).
pub const DEFAULT_EPC_BYTES: usize = 91 * 1024 * 1024;

/// Error returned when an explicit EPC reservation exceeds the budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpcExhausted {
    /// Bytes requested by the failing reservation.
    pub requested: usize,
    /// Bytes still available.
    pub available: usize,
}

impl std::fmt::Display for EpcExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EPC exhausted: requested {} bytes, {} available", self.requested, self.available)
    }
}

impl std::error::Error for EpcExhausted {}

/// Handle to a hardware-paged region declared inside the enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagedRegionId(usize);

/// Monotonic counters describing everything that happened inside the
/// enclave since construction (or the last [`Enclave::reset_metrics`]).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct EnclaveSnapshot {
    /// Simulated cycles elapsed.
    pub cycles: u64,
    /// ECALLs performed.
    pub ecalls: u64,
    /// OCALLs performed.
    pub ocalls: u64,
    /// Hardware secure-paging faults across all paged regions.
    pub page_faults: u64,
    /// Bytes run through CTR encryption/decryption.
    pub bytes_crypted: u64,
    /// CMAC invocations.
    pub macs_computed: u64,
    /// Bytes absorbed by CMAC.
    pub bytes_maced: u64,
    /// Current explicit EPC reservation.
    pub epc_used: u64,
    /// Peak explicit EPC reservation.
    pub epc_peak: u64,
}

impl EnclaveSnapshot {
    /// Fold another snapshot into this one (all fields sum; peak sums
    /// too, because distinct enclaves reserve from distinct budgets).
    pub fn merge(&mut self, other: &EnclaveSnapshot) {
        self.cycles += other.cycles;
        self.ecalls += other.ecalls;
        self.ocalls += other.ocalls;
        self.page_faults += other.page_faults;
        self.bytes_crypted += other.bytes_crypted;
        self.macs_computed += other.macs_computed;
        self.bytes_maced += other.bytes_maced;
        self.epc_used += other.epc_used;
        self.epc_peak += other.epc_peak;
    }
}

/// Aggregated statistics over several enclaves — the per-shard enclaves
/// of a sharded store, or the per-tenant enclaves of a multi-tenant
/// experiment.
///
/// Keeps both the **sum** of every counter (total work performed) and
/// the **maximum** per-enclave cycle count: shards run concurrently, so
/// wall-clock time is governed by the slowest shard, and aggregate
/// throughput is `ops / max_cycles`, not `ops / total_cycles`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct EnclaveStats {
    /// Sum of every counter across the aggregated enclaves.
    pub totals: EnclaveSnapshot,
    /// Largest per-enclave cycle count (the critical path).
    pub max_cycles: u64,
    /// Number of enclaves aggregated.
    pub enclaves: usize,
}

impl EnclaveStats {
    /// Aggregate a set of snapshots.
    pub fn aggregate<I>(snapshots: I) -> EnclaveStats
    where
        I: IntoIterator<Item = EnclaveSnapshot>,
    {
        let mut stats = EnclaveStats::default();
        for snap in snapshots {
            stats.max_cycles = stats.max_cycles.max(snap.cycles);
            stats.totals.merge(&snap);
            stats.enclaves += 1;
        }
        stats
    }

    /// Aggregate throughput (ops/s) of `ops` operations executed by the
    /// aggregated enclaves *in parallel*: the elapsed wall-clock is the
    /// slowest enclave's cycle count.
    pub fn parallel_throughput(&self, ops: u64, cost: &CostModel) -> f64 {
        cost.throughput(ops, self.max_cycles)
    }
}

/// The simulated SGX enclave.
pub struct Enclave {
    cost: CostModel,
    epc_capacity: usize,
    epc_used: AtomicUsize,
    epc_peak: AtomicUsize,
    cycles: AtomicU64,
    ecalls: AtomicU64,
    ocalls: AtomicU64,
    bytes_crypted: AtomicU64,
    macs_computed: AtomicU64,
    bytes_maced: AtomicU64,
    paged: Mutex<Vec<PagingSim>>,
}

impl std::fmt::Debug for Enclave {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Enclave")
            .field("epc_capacity", &self.epc_capacity)
            .field("epc_used", &self.epc_used.load(Ordering::Relaxed))
            .field("cycles", &self.cycles.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Enclave {
    /// Create an enclave with the given cost model and EPC budget.
    pub fn new(cost: CostModel, epc_capacity: usize) -> Self {
        Enclave {
            cost,
            epc_capacity,
            epc_used: AtomicUsize::new(0),
            epc_peak: AtomicUsize::new(0),
            cycles: AtomicU64::new(0),
            ecalls: AtomicU64::new(0),
            ocalls: AtomicU64::new(0),
            bytes_crypted: AtomicU64::new(0),
            macs_computed: AtomicU64::new(0),
            bytes_maced: AtomicU64::new(0),
            paged: Mutex::new(Vec::new()),
        }
    }

    /// Enclave with default cost model and the paper's 91 MB EPC.
    pub fn with_default_epc() -> Self {
        Enclave::new(CostModel::default(), DEFAULT_EPC_BYTES)
    }

    /// The enclave's cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Total EPC budget in bytes.
    pub fn epc_capacity(&self) -> usize {
        self.epc_capacity
    }

    /// Bytes of EPC currently reserved via [`Enclave::epc_alloc`].
    pub fn epc_used(&self) -> usize {
        self.epc_used.load(Ordering::Relaxed)
    }

    /// Bytes of EPC still unreserved.
    pub fn epc_available(&self) -> usize {
        self.epc_capacity - self.epc_used()
    }

    /// Reserve `bytes` of EPC for permanently resident trusted data
    /// (Secure Cache contents, pinned Merkle levels, bitmaps, roots).
    pub fn epc_alloc(&self, bytes: usize) -> Result<(), EpcExhausted> {
        let mut used = self.epc_used.load(Ordering::Relaxed);
        loop {
            if used + bytes > self.epc_capacity {
                return Err(EpcExhausted { requested: bytes, available: self.epc_capacity - used });
            }
            match self.epc_used.compare_exchange_weak(
                used,
                used + bytes,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.epc_peak.fetch_max(used + bytes, Ordering::Relaxed);
                    return Ok(());
                }
                Err(current) => used = current,
            }
        }
    }

    /// Release a previous reservation.
    pub fn epc_free(&self, bytes: usize) {
        let prev = self.epc_used.fetch_sub(bytes, Ordering::Relaxed);
        debug_assert!(bytes <= prev, "epc_free({bytes}) exceeds reservation {prev}");
    }

    // --- cycle charging -------------------------------------------------

    /// Advance the simulated clock by raw cycles.
    #[inline]
    pub fn charge(&self, cycles: u64) {
        self.cycles.fetch_add(cycles, Ordering::Relaxed);
    }

    /// Elapsed simulated cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles.load(Ordering::Relaxed)
    }

    /// Bytes encrypted/decrypted so far — one relaxed load, safe to
    /// read on hot paths (unlike [`Enclave::snapshot`], which takes the
    /// paged-region lock).
    pub fn bytes_crypted(&self) -> u64 {
        self.bytes_crypted.load(Ordering::Relaxed)
    }

    /// Charge an access to untrusted memory.
    #[inline]
    pub fn access_untrusted(&self, bytes: usize) {
        self.charge(self.cost.untrusted_access(bytes));
    }

    /// Charge an access to EPC memory.
    #[inline]
    pub fn access_epc(&self, bytes: usize) {
        self.charge(self.cost.epc_access(bytes));
    }

    /// Charge (and count) a CTR encryption/decryption of `bytes`.
    #[inline]
    pub fn charge_crypt(&self, bytes: usize) {
        self.charge(self.cost.ctr_crypt(bytes));
        self.bytes_crypted.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Charge (and count) a CMAC over `bytes`.
    #[inline]
    pub fn charge_mac(&self, bytes: usize) {
        self.charge(self.cost.cmac(bytes));
        self.macs_computed.fetch_add(1, Ordering::Relaxed);
        self.bytes_maced.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Charge an enclave entry.
    pub fn ecall(&self) {
        self.charge(self.cost.ecall);
        self.ecalls.fetch_add(1, Ordering::Relaxed);
    }

    /// Charge an enclave exit.
    pub fn ocall(&self) {
        self.charge(self.cost.ocall);
        self.ocalls.fetch_add(1, Ordering::Relaxed);
    }

    // --- hardware-paged regions ------------------------------------------

    /// Declare a region of enclave memory subject to hardware secure
    /// paging (used by the Baseline and Aria-w/o-Cache schemes). The
    /// region competes for the EPC *not* reserved via `epc_alloc`.
    pub fn declare_paged_region(&self, total_bytes: usize) -> PagedRegionId {
        let capacity = self.epc_available().max(crate::cost::PAGE_SIZE);
        let mut paged = self.paged.lock().expect("paged regions lock");
        paged.push(PagingSim::new(total_bytes, capacity));
        PagedRegionId(paged.len() - 1)
    }

    /// Touch `len` bytes at `offset` within a paged region, charging page
    /// faults and EPC access costs.
    pub fn touch_paged(&self, region: PagedRegionId, offset: usize, len: usize) {
        let available = self.epc_available().max(crate::cost::PAGE_SIZE);
        let faults = {
            let mut paged = self.paged.lock().expect("paged regions lock");
            let sim = &mut paged[region.0];
            // Explicit EPC reservations (epc_alloc) squeeze the page
            // frames left for hardware paging; track that dynamically.
            sim.set_capacity_bytes(available);
            if sim.fits() {
                // Region fits in EPC: plain MEE-protected access.
                None
            } else {
                Some(sim.touch_range(offset, len))
            }
        };
        match faults {
            None => self.access_epc(len),
            Some(faults) => {
                self.charge(faults * self.cost.epc_page_fault);
                if faults == 0 {
                    self.charge(self.cost.epc_page_hit);
                }
                self.access_epc(len);
            }
        }
    }

    /// Grow a paged region (store expansion).
    pub fn grow_paged(&self, region: PagedRegionId, new_total_bytes: usize) {
        self.paged.lock().expect("paged regions lock")[region.0].grow(new_total_bytes);
    }

    /// Faults observed in one region.
    pub fn region_faults(&self, region: PagedRegionId) -> u64 {
        self.paged.lock().expect("paged regions lock")[region.0].faults()
    }

    /// Total faults across all paged regions.
    pub fn total_page_faults(&self) -> u64 {
        self.paged.lock().expect("paged regions lock").iter().map(|p| p.faults()).sum()
    }

    /// EPC bytes held by resident pages of paged regions (in addition to
    /// explicit [`Enclave::epc_used`] reservations).
    pub fn resident_paged_bytes(&self) -> usize {
        self.paged.lock().expect("paged regions lock").iter().map(|p| p.resident_bytes()).sum()
    }

    // --- metrics ----------------------------------------------------------

    /// Snapshot all counters.
    pub fn snapshot(&self) -> EnclaveSnapshot {
        EnclaveSnapshot {
            cycles: self.cycles.load(Ordering::Relaxed),
            ecalls: self.ecalls.load(Ordering::Relaxed),
            ocalls: self.ocalls.load(Ordering::Relaxed),
            page_faults: self.total_page_faults(),
            bytes_crypted: self.bytes_crypted.load(Ordering::Relaxed),
            macs_computed: self.macs_computed.load(Ordering::Relaxed),
            bytes_maced: self.bytes_maced.load(Ordering::Relaxed),
            epc_used: self.epc_used.load(Ordering::Relaxed) as u64,
            epc_peak: self.epc_peak.load(Ordering::Relaxed) as u64,
        }
    }

    /// Reset the clock and event counters (EPC reservations and paging
    /// residency are preserved — they are state, not metrics).
    pub fn reset_metrics(&self) {
        self.cycles.store(0, Ordering::Relaxed);
        self.ecalls.store(0, Ordering::Relaxed);
        self.ocalls.store(0, Ordering::Relaxed);
        self.bytes_crypted.store(0, Ordering::Relaxed);
        self.macs_computed.store(0, Ordering::Relaxed);
        self.bytes_maced.store(0, Ordering::Relaxed);
    }

    /// Ops/s for `ops` operations measured between two cycle readings.
    pub fn throughput(&self, ops: u64, start_cycles: u64) -> f64 {
        self.cost.throughput(ops, self.cycles() - start_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::PAGE_SIZE;

    #[test]
    fn epc_budget_enforced() {
        let e = Enclave::new(CostModel::default(), 1024);
        assert!(e.epc_alloc(1000).is_ok());
        let err = e.epc_alloc(100).unwrap_err();
        assert_eq!(err.available, 24);
        e.epc_free(1000);
        assert!(e.epc_alloc(1024).is_ok());
        assert_eq!(e.snapshot().epc_peak, 1024);
    }

    #[test]
    fn charging_accumulates() {
        let e = Enclave::with_default_epc();
        let c0 = e.cycles();
        e.ecall();
        e.ocall();
        e.access_untrusted(64);
        e.charge_mac(48);
        let snap = e.snapshot();
        assert_eq!(snap.ecalls, 1);
        assert_eq!(snap.ocalls, 1);
        assert_eq!(snap.macs_computed, 1);
        assert_eq!(snap.bytes_maced, 48);
        assert!(e.cycles() > c0 + 20_000);
    }

    #[test]
    fn paged_region_fitting_in_epc_never_faults() {
        let e = Enclave::new(CostModel::default(), 64 * PAGE_SIZE);
        let r = e.declare_paged_region(8 * PAGE_SIZE);
        for i in 0..1000 {
            e.touch_paged(r, (i * 64) % (8 * PAGE_SIZE), 16);
        }
        assert_eq!(e.region_faults(r), 0);
    }

    #[test]
    fn paged_region_larger_than_epc_faults() {
        let e = Enclave::new(CostModel::default(), 4 * PAGE_SIZE);
        let r = e.declare_paged_region(64 * PAGE_SIZE);
        let before = e.cycles();
        for i in 0..64 {
            e.touch_paged(r, i * PAGE_SIZE, 16);
        }
        assert!(e.region_faults(r) >= 60);
        assert!(e.cycles() - before >= 60 * 40_000);
    }

    #[test]
    fn epc_alloc_shrinks_paging_capacity_for_new_regions() {
        let e = Enclave::new(CostModel::default(), 16 * PAGE_SIZE);
        e.epc_alloc(12 * PAGE_SIZE).unwrap();
        let r = e.declare_paged_region(16 * PAGE_SIZE);
        // Only ~4 pages available: a 16-page cyclic scan must thrash.
        for _ in 0..4 {
            for i in 0..16 {
                e.touch_paged(r, i * PAGE_SIZE, 8);
            }
        }
        assert!(e.region_faults(r) > 30);
    }

    #[test]
    fn reset_metrics_keeps_reservations() {
        let e = Enclave::with_default_epc();
        e.epc_alloc(100).unwrap();
        e.ecall();
        e.reset_metrics();
        assert_eq!(e.cycles(), 0);
        assert_eq!(e.snapshot().ecalls, 0);
        assert_eq!(e.epc_used(), 100);
    }

    #[test]
    fn enclave_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Enclave>();
    }

    #[test]
    fn concurrent_charging_loses_nothing() {
        use std::sync::Arc;
        let e = Arc::new(Enclave::new(CostModel::default(), 1 << 20));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let e = Arc::clone(&e);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        e.charge(3);
                        e.ecall();
                        e.charge_mac(16);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = e.snapshot();
        assert_eq!(snap.ecalls, 80_000);
        assert_eq!(snap.macs_computed, 80_000);
        assert_eq!(snap.bytes_maced, 80_000 * 16);
        let expected = 80_000 * 3 + snap.ecalls * e.cost().ecall + {
            // charge_mac charges cmac(16) per call.
            80_000 * e.cost().cmac(16)
        };
        assert_eq!(snap.cycles, expected);
    }

    #[test]
    fn concurrent_epc_alloc_never_oversubscribes() {
        use std::sync::Arc;
        let e = Arc::new(Enclave::new(CostModel::default(), 1000));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let e = Arc::clone(&e);
                std::thread::spawn(move || {
                    let mut granted = 0usize;
                    for _ in 0..1000 {
                        if e.epc_alloc(7).is_ok() {
                            granted += 7;
                        }
                    }
                    granted
                })
            })
            .collect();
        let granted: usize = threads.into_iter().map(|t| t.join().unwrap()).sum();
        assert!(granted <= 1000, "granted {granted} of 1000");
        assert_eq!(e.epc_used(), granted);
        assert!(e.snapshot().epc_peak <= 1000);
    }

    #[test]
    fn stats_aggregate_sums_and_maxes() {
        let a = Enclave::new(CostModel::default(), 1 << 20);
        let b = Enclave::new(CostModel::default(), 1 << 20);
        a.charge(100);
        a.ecall();
        b.charge(50_000);
        b.charge_mac(32);
        let stats = EnclaveStats::aggregate([a.snapshot(), b.snapshot()]);
        assert_eq!(stats.enclaves, 2);
        assert_eq!(stats.max_cycles, b.cycles());
        assert_eq!(stats.totals.cycles, a.cycles() + b.cycles());
        assert_eq!(stats.totals.ecalls, 1);
        assert_eq!(stats.totals.macs_computed, 1);
        // Parallel throughput is governed by the slower enclave.
        let tput = stats.parallel_throughput(1000, a.cost());
        assert_eq!(tput, a.cost().throughput(1000, stats.max_cycles));
    }
}
