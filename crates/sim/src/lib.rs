//! SGX platform simulator for the Aria reproduction.
//!
//! We have no SGX hardware, so every architectural cost the paper's
//! evaluation measures — EPC secure paging (~40 K cycles/fault),
//! ECALL/OCALL crossings (~10 K cycles), MEE-protected EPC accesses
//! (~2x DRAM), per-byte crypto — is charged explicitly against a
//! simulated cycle clock by an [`Enclave`] instance. Reported throughput
//! is `ops x f_clk / cycles`, which makes results independent of the host
//! CPU and reproduces the *shape* of every figure in the paper through
//! the same mechanisms (fault counts, hit ratios, verification counts)
//! that produce them on hardware.
//!
//! * [`CostModel`] — every tunable cycle cost, with paper-calibrated
//!   defaults and a [`CostModel::no_sgx`] variant for the Figure 12
//!   "Aria w/o SGX" comparison.
//! * [`PagingSim`] — CLOCK second-chance 4 KB paging, used for data the
//!   schemes place *inside* the enclave beyond EPC capacity.
//! * [`Enclave`] — EPC budget accounting, the cycle clock and event
//!   counters, shared via `Arc` by all components of one store instance
//!   (thread-safe: counters are atomics, so shards on worker threads can
//!   charge concurrently).
//! * [`EnclaveStats`] — aggregation across several enclaves (the shards
//!   of a sharded store or the tenants of a multi-tenant experiment).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod enclave;
pub mod paging;

pub use cost::{CostModel, CACHE_LINE, PAGE_SIZE};
pub use enclave::{
    Enclave, EnclaveSnapshot, EnclaveStats, EpcExhausted, PagedRegionId, DEFAULT_EPC_BYTES,
};
pub use paging::PagingSim;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The pager never exceeds its resident capacity and its counters
        /// stay consistent under arbitrary access traces.
        #[test]
        fn paging_invariants(
            capacity_pages in 1usize..16,
            total_pages in 1usize..64,
            trace in proptest::collection::vec(any::<u16>(), 1..500),
        ) {
            let mut sim = PagingSim::new(total_pages * PAGE_SIZE, capacity_pages * PAGE_SIZE);
            for t in &trace {
                let page = *t as usize % total_pages;
                sim.touch_page(page);
                prop_assert!(sim.resident_pages() <= capacity_pages.max(1));
            }
            prop_assert_eq!(sim.faults() + sim.hits(), trace.len() as u64);
            prop_assert_eq!(
                sim.faults() - sim.evictions(),
                sim.resident_pages() as u64
            );
        }

        /// Repeatedly touching a working set no bigger than capacity
        /// faults each page at most once.
        #[test]
        fn fitting_working_set_faults_once(
            capacity_pages in 4usize..32,
            rounds in 1usize..8,
        ) {
            let working = capacity_pages;
            let mut sim = PagingSim::new(working * PAGE_SIZE, capacity_pages * PAGE_SIZE);
            for _ in 0..rounds {
                for p in 0..working {
                    sim.touch_page(p);
                }
            }
            prop_assert_eq!(sim.faults(), working as u64);
        }

        /// EPC alloc/free pairs always restore the budget.
        #[test]
        fn epc_accounting_balances(sizes in proptest::collection::vec(1usize..4096, 1..64)) {
            let e = Enclave::new(CostModel::default(), 1 << 20);
            let mut allocated = Vec::new();
            for s in sizes {
                if e.epc_alloc(s).is_ok() {
                    allocated.push(s);
                }
            }
            for s in &allocated {
                e.epc_free(*s);
            }
            prop_assert_eq!(e.epc_used(), 0);
        }
    }
}
