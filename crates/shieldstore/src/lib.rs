//! ShieldStore baseline (Kim et al., EuroSys'19), as described and
//! compared against in the Aria paper.
//!
//! ShieldStore keeps the whole KV store — chained hash table, encrypted
//! entries, per-entry counters and MACs — in untrusted memory, and builds
//! a Merkle structure *per hash bucket*: the only trusted state is one
//! 16-byte root per bucket, stored in the EPC (the paper's configuration
//! uses 4 M roots = 64 MB).
//!
//! The defining cost is **bucket-granularity verification**: every
//! Get/Put must read the MACs of *all* entries in the bucket, hash them
//! together and compare with the in-EPC root — and every Put must update
//! the root. Chain length therefore multiplies both read and MAC
//! amplification, which is exactly why ShieldStore degrades as the
//! keyspace grows past the fixed bucket count (Aria paper §III, §VI-D1)
//! and why hot keys gain nothing from skew (hotness-unaware, Table I).
//!
//! Layout of one entry block:
//!
//! ```text
//! +--------+--------+------+------+------------+----------------+--------+
//! | next 8 | hint 4 |klen 2|vlen 2| counter 16 | enc(key‖value) | MAC 16 |
//! +--------+--------+------+------+------------+----------------+--------+
//! ```
//!
//! The counter is plaintext in untrusted memory; its integrity (and
//! freshness) comes from the entry MAC being chained into the bucket
//! root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

use aria_crypto::{CipherSuite, RealSuite};
use aria_mem::{AllocStrategy, UPtr, UserHeap};
use aria_sim::Enclave;

/// Fixed part of an entry before the counter.
const HEADER_LEN: usize = 16;
/// Counter bytes.
const COUNTER_LEN: usize = 16;
/// MAC bytes.
const MAC_LEN: usize = 16;

/// Errors from ShieldStore operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShieldError {
    /// An entry MAC or bucket root mismatch — attack detected.
    Integrity,
    /// EPC exhausted while reserving the bucket roots.
    EpcExhausted,
    /// Untrusted heap failure.
    Heap(aria_mem::HeapError),
    /// Key or value too large for the 16-bit length fields.
    TooLarge,
}

impl std::fmt::Display for ShieldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShieldError::Integrity => write!(f, "ShieldStore integrity violation"),
            ShieldError::EpcExhausted => write!(f, "EPC exhausted"),
            ShieldError::Heap(e) => write!(f, "heap error: {e}"),
            ShieldError::TooLarge => write!(f, "key/value too large"),
        }
    }
}

impl std::error::Error for ShieldError {}

impl From<aria_mem::HeapError> for ShieldError {
    fn from(e: aria_mem::HeapError) -> Self {
        ShieldError::Heap(e)
    }
}

#[derive(Debug, Clone, Copy)]
struct Header {
    next: UPtr,
    hint: u32,
    klen: usize,
    vlen: usize,
}

impl Header {
    fn total_len(&self) -> usize {
        HEADER_LEN + COUNTER_LEN + self.klen + self.vlen + MAC_LEN
    }
}

fn parse_header(bytes: &[u8]) -> Option<Header> {
    if bytes.len() < HEADER_LEN {
        return None;
    }
    Some(Header {
        next: UPtr::from_bytes(&bytes[0..8].try_into().unwrap()),
        hint: u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
        klen: u16::from_le_bytes(bytes[12..14].try_into().unwrap()) as usize,
        vlen: u16::from_le_bytes(bytes[14..16].try_into().unwrap()) as usize,
    })
}

fn key_hint(key: &[u8]) -> u32 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash ^ (hash >> 32)) as u32
}

fn hash_key(key: &[u8]) -> u64 {
    let mut hash: u64 = 0x84222325_cbf29ce4;
    for &b in key {
        hash = hash.rotate_left(5) ^ (b as u64);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The ShieldStore baseline store.
pub struct ShieldStore {
    enclave: Arc<Enclave>,
    suite: Arc<dyn CipherSuite>,
    heap: UserHeap,
    /// Bucket heads, untrusted.
    buckets: Vec<UPtr>,
    /// Per-bucket Merkle roots, in the EPC.
    roots: Vec<[u8; MAC_LEN]>,
    len: u64,
}

impl ShieldStore {
    /// Create a store with `nbuckets` buckets (the paper's setup uses
    /// 4 M roots = 64 MB EPC; size to taste for scaled runs).
    pub fn new(nbuckets: usize, enclave: Arc<Enclave>) -> Result<Self, ShieldError> {
        Self::with_suite(nbuckets, enclave, None)
    }

    /// As [`ShieldStore::new`] with an explicit cipher suite.
    pub fn with_suite(
        nbuckets: usize,
        enclave: Arc<Enclave>,
        suite: Option<Arc<dyn CipherSuite>>,
    ) -> Result<Self, ShieldError> {
        enclave.epc_alloc(nbuckets * MAC_LEN).map_err(|_| ShieldError::EpcExhausted)?;
        let suite: Arc<dyn CipherSuite> =
            suite.unwrap_or_else(|| Arc::new(RealSuite::from_master(&[0x55; 16])));
        let heap = UserHeap::new(Arc::clone(&enclave), AllocStrategy::UserSpace);
        // An empty bucket's root is the MAC of the empty string.
        let empty_root = suite.mac(&[]);
        Ok(ShieldStore {
            enclave,
            suite,
            heap,
            buckets: vec![UPtr::NULL; nbuckets],
            roots: vec![empty_root; nbuckets],
            len: 0,
        })
    }

    fn bucket_of(&self, key: &[u8]) -> usize {
        (hash_key(key) % self.buckets.len() as u64) as usize
    }

    fn entry_mac_input_len(klen: usize, vlen: usize) -> usize {
        // hint + lens + counter + ciphertext
        8 + COUNTER_LEN + klen + vlen
    }

    fn compute_entry_mac(&self, bytes: &[u8], header: &Header) -> [u8; MAC_LEN] {
        // MAC covers everything after `next` up to the MAC itself.
        let mac_off = header.total_len() - MAC_LEN;
        self.suite.mac(&bytes[8..mac_off])
    }

    /// Walk a bucket, reading every entry's MAC (ShieldStore reads the
    /// whole bucket's MAC values on every operation) and the full bytes
    /// of the hint-matching candidate; returns the found entry — pointer,
    /// header, sealed bytes and already-decrypted value — plus the MAC
    /// chain.
    #[allow(clippy::type_complexity)]
    fn scan_bucket(
        &mut self,
        bucket: usize,
        key: &[u8],
    ) -> Result<(Option<(UPtr, Header, Vec<u8>, Vec<u8>)>, Vec<u8>), ShieldError> {
        let hint = key_hint(key);
        let mut macs = Vec::new();
        let mut found = None;
        self.enclave.access_untrusted(8);
        let mut ptr = self.buckets[bucket];
        while !ptr.is_null() {
            let head_bytes = self.heap.read(ptr, HEADER_LEN)?;
            let header = parse_header(head_bytes).ok_or(ShieldError::Integrity)?;
            let mac_off = header.total_len() - MAC_LEN;
            if found.is_none() && header.hint == hint {
                // Candidate: read the full entry, copy it into the
                // enclave, verify its MAC and decrypt to confirm the key.
                let bytes = self.heap.read(ptr, header.total_len())?.to_vec();
                self.enclave.access_epc(header.total_len());
                macs.extend_from_slice(&bytes[mac_off..]);
                self.enclave.charge_mac(Self::entry_mac_input_len(header.klen, header.vlen));
                let expect = self.compute_entry_mac(&bytes, &header);
                if expect != bytes[mac_off..] {
                    return Err(ShieldError::Integrity);
                }
                let counter: [u8; 16] =
                    bytes[HEADER_LEN..HEADER_LEN + COUNTER_LEN].try_into().unwrap();
                let mut payload = bytes[HEADER_LEN + COUNTER_LEN
                    ..HEADER_LEN + COUNTER_LEN + header.klen + header.vlen]
                    .to_vec();
                self.enclave.charge_crypt(payload.len());
                self.suite.crypt(&counter, &mut payload);
                if &payload[..header.klen] == key {
                    let value = payload.split_off(header.klen);
                    found = Some((ptr, header, bytes, value));
                }
            } else {
                // Non-candidate: ShieldStore reads only the entry's MAC
                // value for the bucket verification (paper §III), copied
                // into the enclave alongside the header.
                let mac_bytes = self.heap.read_at(ptr, mac_off, MAC_LEN)?.to_vec();
                self.enclave.access_epc(HEADER_LEN + MAC_LEN);
                macs.extend_from_slice(&mac_bytes);
            }
            ptr = header.next;
        }
        Ok((found, macs))
    }

    /// Verify the bucket root over a collected MAC chain.
    fn verify_root(&self, bucket: usize, macs: &[u8]) -> Result<(), ShieldError> {
        self.enclave.charge_mac(macs.len());
        self.enclave.access_epc(MAC_LEN);
        if self.suite.mac(macs) != self.roots[bucket] {
            return Err(ShieldError::Integrity);
        }
        Ok(())
    }

    /// Recompute and store the bucket root (Put path).
    fn update_root(&mut self, bucket: usize) -> Result<(), ShieldError> {
        let mut macs = Vec::new();
        self.enclave.access_untrusted(8);
        let mut ptr = self.buckets[bucket];
        while !ptr.is_null() {
            let head_bytes = self.heap.read(ptr, HEADER_LEN)?;
            let header = parse_header(head_bytes).ok_or(ShieldError::Integrity)?;
            let mac_off = header.total_len() - MAC_LEN;
            let mac_bytes = self.heap.read_at(ptr, mac_off, MAC_LEN)?.to_vec();
            self.enclave.access_epc(MAC_LEN);
            macs.extend_from_slice(&mac_bytes);
            ptr = header.next;
        }
        self.enclave.charge_mac(macs.len());
        self.enclave.access_epc(MAC_LEN);
        self.roots[bucket] = self.suite.mac(&macs);
        Ok(())
    }

    fn seal(&self, next: UPtr, key: &[u8], value: &[u8], counter: &[u8; 16]) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(HEADER_LEN + COUNTER_LEN + key.len() + value.len() + MAC_LEN);
        out.extend_from_slice(&next.to_bytes());
        out.extend_from_slice(&key_hint(key).to_le_bytes());
        out.extend_from_slice(&(key.len() as u16).to_le_bytes());
        out.extend_from_slice(&(value.len() as u16).to_le_bytes());
        out.extend_from_slice(counter);
        let start = out.len();
        out.extend_from_slice(key);
        out.extend_from_slice(value);
        self.suite.crypt(counter, &mut out[start..]);
        let mac = self.suite.mac(&out[8..]);
        out.extend_from_slice(&mac);
        out
    }

    /// Insert or update a key.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), ShieldError> {
        if key.len() > u16::MAX as usize || value.len() > u16::MAX as usize {
            return Err(ShieldError::TooLarge);
        }
        self.enclave.charge(self.enclave.cost().request_fixed);
        let bucket = self.bucket_of(key);
        let (found, macs) = self.scan_bucket(bucket, key)?;
        self.verify_root(bucket, &macs)?;
        match found {
            Some((ptr, header, bytes, _value)) => {
                // Bump the stored counter and re-seal.
                let mut counter: [u8; 16] =
                    bytes[HEADER_LEN..HEADER_LEN + COUNTER_LEN].try_into().unwrap();
                aria_crypto::increment_counter(&mut counter);
                self.enclave.charge_crypt(key.len() + value.len());
                self.enclave.charge_mac(Self::entry_mac_input_len(key.len(), value.len()));
                let sealed = self.seal(header.next, key, value, &counter);
                if aria_mem::UserHeap::same_block_class(sealed.len(), header.total_len()) {
                    self.heap.write(ptr, &sealed)?;
                } else {
                    let new_ptr = self.heap.alloc(sealed.len())?;
                    self.heap.write(new_ptr, &sealed)?;
                    self.relink(bucket, ptr, new_ptr)?;
                    self.heap.free(ptr)?;
                }
            }
            None => {
                // Prepend at the bucket head (ShieldStore chains at head).
                let mut counter = [0u8; 16];
                counter[..8].copy_from_slice(&hash_key(key).to_le_bytes());
                self.enclave.charge_crypt(key.len() + value.len());
                self.enclave.charge_mac(Self::entry_mac_input_len(key.len(), value.len()));
                let sealed = self.seal(self.buckets[bucket], key, value, &counter);
                let ptr = self.heap.alloc(sealed.len())?;
                self.heap.write(ptr, &sealed)?;
                self.enclave.access_untrusted(8);
                self.buckets[bucket] = ptr;
                self.len += 1;
            }
        }
        self.update_root(bucket)
    }

    /// Replace the link pointing at `old` with `new`.
    fn relink(&mut self, bucket: usize, old: UPtr, new: UPtr) -> Result<(), ShieldError> {
        self.enclave.access_untrusted(8);
        if self.buckets[bucket] == old {
            self.buckets[bucket] = new;
            return Ok(());
        }
        let mut ptr = self.buckets[bucket];
        while !ptr.is_null() {
            let head_bytes = self.heap.read(ptr, HEADER_LEN)?;
            let header = parse_header(head_bytes).ok_or(ShieldError::Integrity)?;
            if header.next == old {
                let mut patched = self.heap.read(ptr, HEADER_LEN)?.to_vec();
                patched[0..8].copy_from_slice(&new.to_bytes());
                self.heap.write(ptr, &patched[..8])?;
                return Ok(());
            }
            ptr = header.next;
        }
        Err(ShieldError::Integrity)
    }

    /// Fetch a key's value.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, ShieldError> {
        self.enclave.charge(self.enclave.cost().request_fixed);
        let bucket = self.bucket_of(key);
        let (found, macs) = self.scan_bucket(bucket, key)?;
        self.verify_root(bucket, &macs)?;
        Ok(found.map(|(_ptr, _header, _bytes, value)| value))
    }

    /// Remove a key; returns whether it existed.
    pub fn delete(&mut self, key: &[u8]) -> Result<bool, ShieldError> {
        self.enclave.charge(self.enclave.cost().request_fixed);
        let bucket = self.bucket_of(key);
        let (found, macs) = self.scan_bucket(bucket, key)?;
        self.verify_root(bucket, &macs)?;
        let Some((ptr, header, _bytes, _value)) = found else { return Ok(false) };
        self.relink(bucket, ptr, header.next)?;
        self.heap.free(ptr)?;
        self.len -= 1;
        self.update_root(bucket)?;
        Ok(true)
    }

    /// Live keys.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The enclave costs are charged to.
    pub fn enclave(&self) -> &Arc<Enclave> {
        &self.enclave
    }

    /// Bucket count (fixed at construction).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    // --- attack API --------------------------------------------------------

    fn locate(&self, key: &[u8]) -> Option<(UPtr, Header)> {
        let bucket = self.bucket_of(key);
        let hint = key_hint(key);
        let mut ptr = self.buckets[bucket];
        while !ptr.is_null() {
            let bytes = self.heap.read(ptr, HEADER_LEN).ok()?;
            let header = parse_header(bytes)?;
            if header.hint == hint {
                return Some((ptr, header));
            }
            ptr = header.next;
        }
        None
    }

    /// Flip a ciphertext bit of `key`'s entry.
    pub fn attack_tamper_value(&mut self, key: &[u8]) -> bool {
        let Some((ptr, _)) = self.locate(key) else { return false };
        let off = HEADER_LEN + COUNTER_LEN;
        match self.heap.raw_mut(ptr, off + 1) {
            Ok(bytes) => {
                bytes[off] ^= 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Snapshot an entry's full sealed bytes (counter + MAC included).
    pub fn attack_snapshot(&self, key: &[u8]) -> Option<(UPtr, Vec<u8>)> {
        let (ptr, header) = self.locate(key)?;
        let bytes = self.heap.read(ptr, header.total_len()).ok()?;
        Some((ptr, bytes.to_vec()))
    }

    /// Replay a snapshot (entry + counter + MAC all restored).
    pub fn attack_replay(&mut self, snapshot: &(UPtr, Vec<u8>)) -> bool {
        let (ptr, bytes) = snapshot;
        match self.heap.raw_mut(*ptr, bytes.len()) {
            Ok(dst) => {
                dst.copy_from_slice(bytes);
                true
            }
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aria_sim::CostModel;

    fn store(buckets: usize) -> ShieldStore {
        let enclave = Arc::new(Enclave::new(CostModel::default(), 256 << 20));
        ShieldStore::new(buckets, enclave).unwrap()
    }

    #[test]
    fn put_get_roundtrip() {
        let mut s = store(64);
        for i in 0..200u64 {
            s.put(&i.to_be_bytes(), format!("val-{i}").as_bytes()).unwrap();
        }
        for i in 0..200u64 {
            assert_eq!(s.get(&i.to_be_bytes()).unwrap().unwrap(), format!("val-{i}").as_bytes());
        }
        assert_eq!(s.get(b"missing!").unwrap(), None);
        assert_eq!(s.len(), 200);
    }

    #[test]
    fn update_same_and_larger() {
        let mut s = store(8);
        s.put(b"k", b"aaaa").unwrap();
        s.put(b"k", b"bbbb").unwrap();
        assert_eq!(s.get(b"k").unwrap().unwrap(), b"bbbb");
        s.put(b"k", b"a-much-longer-value-needing-relocation").unwrap();
        assert_eq!(
            s.get(b"k").unwrap().unwrap().as_slice(),
            b"a-much-longer-value-needing-relocation"
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn delete_in_chains() {
        let mut s = store(1); // one long chain
        for i in 0..20u64 {
            s.put(&i.to_be_bytes(), b"value").unwrap();
        }
        assert!(s.delete(&7u64.to_be_bytes()).unwrap());
        assert!(!s.delete(&7u64.to_be_bytes()).unwrap());
        for i in 0..20u64 {
            assert_eq!(s.get(&i.to_be_bytes()).unwrap().is_some(), i != 7);
        }
    }

    #[test]
    fn tamper_detected() {
        let mut s = store(16);
        s.put(b"target", b"secret").unwrap();
        assert!(s.attack_tamper_value(b"target"));
        assert_eq!(s.get(b"target"), Err(ShieldError::Integrity));
    }

    #[test]
    fn full_replay_detected_by_bucket_root() {
        let mut s = store(16);
        s.put(b"target", b"version-one!").unwrap();
        let snap = s.attack_snapshot(b"target").unwrap();
        s.put(b"target", b"version-two!").unwrap();
        // Entry + counter + MAC all replayed: the entry self-verifies, but
        // the bucket root is newer.
        assert!(s.attack_replay(&snap));
        assert_eq!(s.get(b"target"), Err(ShieldError::Integrity));
    }

    #[test]
    fn longer_chains_cost_more_per_get() {
        let cost_of = |buckets: usize, keys: u64| {
            let mut s = store(buckets);
            for i in 0..keys {
                s.put(&i.to_be_bytes(), b"v").unwrap();
            }
            let c0 = s.enclave().cycles();
            for i in 0..keys {
                s.get(&i.to_be_bytes()).unwrap();
            }
            (s.enclave().cycles() - c0) / keys
        };
        let short = cost_of(256, 512); // ~2 per bucket
        let long = cost_of(8, 512); // ~64 per bucket
        assert!(long > short * 4, "long-chain get ({long}) should dwarf short ({short})");
    }

    #[test]
    fn roots_live_in_epc() {
        let enclave = Arc::new(Enclave::new(CostModel::default(), 256 << 20));
        let before = enclave.epc_used();
        let _s = ShieldStore::new(4096, Arc::clone(&enclave)).unwrap();
        assert_eq!(enclave.epc_used() - before, 4096 * 16);
    }

    #[test]
    fn put_updates_root_every_time() {
        let mut s = store(4);
        s.put(b"a", b"1").unwrap();
        let macs_after_one = s.enclave().snapshot().macs_computed;
        s.put(b"a", b"2").unwrap();
        // Root verify + entry ops + root update all recompute MACs.
        assert!(s.enclave().snapshot().macs_computed > macs_after_one + 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use aria_sim::CostModel;
    use proptest::prelude::*;
    use std::collections::HashMap;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn linearizes_against_model(
            ops in proptest::collection::vec(
                (0u8..3, any::<u8>(), proptest::collection::vec(any::<u8>(), 0..48)), 1..120),
            buckets in 1usize..32,
        ) {
            let enclave = Arc::new(Enclave::new(CostModel::default(), 256 << 20));
            let mut s = ShieldStore::new(buckets, enclave).unwrap();
            let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
            for (op, id, val) in ops {
                let key = format!("key-{id}").into_bytes();
                match op {
                    0 => {
                        s.put(&key, &val).unwrap();
                        model.insert(key, val);
                    }
                    1 => {
                        prop_assert_eq!(s.get(&key).unwrap(), model.get(&key).cloned());
                    }
                    _ => {
                        prop_assert_eq!(s.delete(&key).unwrap(), model.remove(&key).is_some());
                    }
                }
                prop_assert_eq!(s.len(), model.len() as u64);
            }
        }
    }
}
