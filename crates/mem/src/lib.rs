//! Untrusted-memory management for the Aria secure KV store.
//!
//! Everything the store keeps *outside* the enclave — encrypted KV
//! entries, index nodes, ShieldStore buckets — lives in a [`UserHeap`]:
//! the paper's user-space heap allocator (§V-B) that eliminates an OCALL
//! per untrusted allocation.
//!
//! Layout follows the paper: the untrusted pool is cut into 4 MB chunks;
//! each chunk is cut into equal-size data blocks (one size class per
//! chunk); a per-chunk occupation **bitmap lives in the EPC** (so the
//! allocator metadata cannot be corrupted from outside), while the **free
//! list lives in untrusted memory** (to save EPC). Chunk bases are 4 MB
//! aligned in the paper so a block's bitmap slot is computable from its
//! address; our [`UPtr`] handles encode `(chunk, offset)` directly, which
//! models the same O(1) lookup.
//!
//! The allocator charges simulated cycle costs through the shared
//! [`Enclave`]: bitmap updates are EPC accesses, free-list operations are
//! untrusted accesses, and — in [`AllocStrategy::Ocall`] mode, used by the
//! `AriaBase` ablation of Figure 12 — every allocation additionally pays
//! an enclave exit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{Arc, Mutex};

use aria_sim::Enclave;
use aria_telemetry::MemTelemetry;

/// Fault-injection hook on the heap's write path.
///
/// The host controls the physical memory the heap models, so a fault in
/// flight — a flipped DRAM bit, a torn multi-slot store — lands exactly
/// here: between the enclave producing sealed bytes and those bytes
/// reaching untrusted memory. An installed hook may mutate the bytes
/// about to be written (bit flips) and may return `Some(n)` to truncate
/// the write to its first `n` bytes (a torn write). The heap itself
/// never inspects the payload; detection is the job of the layers above
/// (entry MACs, Merkle paths).
pub trait WriteFault: Send {
    /// Observe/corrupt a pending write of `bytes` at `ptr`. Return
    /// `Some(n)` to tear the write after `n` bytes (`n` is clamped to
    /// the payload length), `None` to write all of it.
    fn on_write(&mut self, ptr: UPtr, bytes: &mut [u8]) -> Option<usize>;
}

/// Size of an untrusted memory chunk (4 MB, as in the paper).
pub const CHUNK_SIZE: usize = 4 << 20;

/// Size of one free-list entry in untrusted memory (paper §VI-D4).
pub const FREELIST_ENTRY_BYTES: usize = 16;

/// Block size classes. KV entries (header + encrypted payload + MAC) fall
/// in 32 B – 64 KB; anything larger gets dedicated chunks.
pub const SIZE_CLASSES: [usize; 12] =
    [32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536];

/// Handle to a block of untrusted memory.
///
/// Untrusted pointers are data, not references: they can be freely copied
/// into untrusted structures (index nodes, entry headers) and are validated
/// against the in-EPC bitmap when they matter for safety.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UPtr {
    chunk: u32,
    offset: u32,
}

impl UPtr {
    /// The null handle.
    pub const NULL: UPtr = UPtr { chunk: u32::MAX, offset: u32::MAX };

    /// Whether this is the null handle.
    pub fn is_null(&self) -> bool {
        *self == UPtr::NULL
    }

    /// Pack into 8 bytes for embedding in untrusted structures.
    pub fn to_bytes(self) -> [u8; 8] {
        let mut b = [0u8; 8];
        b[..4].copy_from_slice(&self.chunk.to_le_bytes());
        b[4..].copy_from_slice(&self.offset.to_le_bytes());
        b
    }

    /// Unpack from 8 bytes.
    pub fn from_bytes(b: &[u8; 8]) -> Self {
        UPtr {
            chunk: u32::from_le_bytes(b[..4].try_into().unwrap()),
            offset: u32::from_le_bytes(b[4..].try_into().unwrap()),
        }
    }
}

/// How allocations are performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocStrategy {
    /// The paper's user-space allocator: no enclave crossing.
    UserSpace,
    /// Naive scheme: every allocation OCALLs out to `malloc` (the
    /// `AriaBase` configuration of Figure 12).
    Ocall,
}

/// Errors surfaced by the heap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeapError {
    /// The in-EPC bitmap contradicts the untrusted free list — an attack
    /// on allocator metadata (paper §V-B: "If it is used, we assert that
    /// an attack happens").
    MetadataAttack {
        /// The inconsistent handle.
        ptr: UPtr,
    },
    /// A handle did not refer to a live allocation.
    InvalidPointer {
        /// The offending handle.
        ptr: UPtr,
    },
    /// EPC budget exhausted while growing allocator metadata.
    EpcExhausted,
}

impl std::fmt::Display for HeapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeapError::MetadataAttack { ptr } => {
                write!(f, "allocator metadata attack detected at {ptr:?}")
            }
            HeapError::InvalidPointer { ptr } => write!(f, "invalid untrusted pointer {ptr:?}"),
            HeapError::EpcExhausted => write!(f, "EPC exhausted while growing allocator metadata"),
        }
    }
}

impl std::error::Error for HeapError {}

struct Chunk {
    data: Vec<u8>,
    /// Block size for this chunk; 0 for a dedicated oversize chunk.
    block_size: usize,
    /// Occupation bitmap (conceptually in the EPC).
    bitmap: Vec<u64>,
    /// Next never-carved block index.
    next_fresh: usize,
    live_blocks: usize,
}

impl Chunk {
    fn new(block_size: usize) -> Self {
        let blocks = CHUNK_SIZE.checked_div(block_size).unwrap_or(1).max(1);
        Chunk {
            data: vec![0u8; CHUNK_SIZE],
            block_size,
            bitmap: vec![0u64; blocks.div_ceil(64)],
            next_fresh: 0,
            live_blocks: 0,
        }
    }

    fn bit(&self, block: usize) -> bool {
        (self.bitmap[block / 64] >> (block % 64)) & 1 == 1
    }

    fn set_bit(&mut self, block: usize, value: bool) {
        if value {
            self.bitmap[block / 64] |= 1 << (block % 64);
        } else {
            self.bitmap[block / 64] &= !(1 << (block % 64));
        }
    }
}

/// Per-size-class allocator state.
#[derive(Default)]
struct SizeClass {
    /// Free list (conceptually a circular buffer in untrusted memory).
    free: Vec<UPtr>,
    /// Chunk with fresh (never carved) blocks remaining.
    open_chunk: Option<usize>,
}

/// Allocation statistics for the memory-consumption analysis (§VI-D4).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct HeapStats {
    /// Bytes in live allocations (block-size granularity).
    pub live_bytes: usize,
    /// Number of live allocations.
    pub live_blocks: usize,
    /// Total untrusted bytes reserved from the OS (chunks).
    pub chunk_bytes: usize,
    /// Bytes of in-EPC bitmap metadata.
    pub epc_bitmap_bytes: usize,
    /// Bytes of untrusted free-list entries.
    pub freelist_bytes: usize,
}

/// The user-space untrusted heap.
pub struct UserHeap {
    enclave: Arc<Enclave>,
    strategy: AllocStrategy,
    chunks: Vec<Chunk>,
    classes: Vec<SizeClass>,
    live_bytes: usize,
    live_blocks: usize,
    /// Installed fault injector (chaos testing); `None` in production.
    fault_hook: Option<Arc<Mutex<dyn WriteFault>>>,
    /// When true the hook is bypassed (recovery's quiesced window).
    faults_suspended: bool,
    /// Optional telemetry sink (untrusted state; observability only).
    tele: Option<Arc<MemTelemetry>>,
}

impl UserHeap {
    /// Create a heap charging costs to `enclave`.
    pub fn new(enclave: Arc<Enclave>, strategy: AllocStrategy) -> Self {
        UserHeap {
            enclave,
            strategy,
            chunks: Vec::new(),
            classes: (0..SIZE_CLASSES.len()).map(|_| SizeClass::default()).collect(),
            live_bytes: 0,
            live_blocks: 0,
            fault_hook: None,
            faults_suspended: false,
            tele: None,
        }
    }

    /// Attach a telemetry sink recording allocations and frees.
    pub fn set_telemetry(&mut self, tele: Arc<MemTelemetry>) {
        self.tele = Some(tele);
    }

    #[inline]
    fn note_alloc(&self, bytes: usize) {
        if let Some(t) = &self.tele {
            t.allocs.inc();
            t.alloc_bytes.add(bytes as u64);
        }
    }

    #[inline]
    fn note_free(&self, bytes: usize) {
        if let Some(t) = &self.tele {
            t.frees.inc();
            t.freed_bytes.add(bytes as u64);
        }
    }

    /// Install (or remove) a [`WriteFault`] hook on the write path.
    pub fn set_fault_hook(&mut self, hook: Option<Arc<Mutex<dyn WriteFault>>>) {
        self.fault_hook = hook;
    }

    /// Suspend or resume the installed fault hook. Recovery runs inside
    /// a suspended window: it models re-verification during a quiesced
    /// maintenance pass, and re-admission is only claimed for the state
    /// that was actually verified.
    pub fn suspend_faults(&mut self, suspended: bool) {
        self.faults_suspended = suspended;
    }

    /// Whether a fault hook is installed and currently armed.
    pub fn faults_active(&self) -> bool {
        self.fault_hook.is_some() && !self.faults_suspended
    }

    fn class_for(size: usize) -> Option<usize> {
        SIZE_CLASSES.iter().position(|&c| c >= size)
    }

    /// The block size class two lengths would allocate from; two lengths
    /// in the same class can share a block (in-place update).
    pub fn same_block_class(a: usize, b: usize) -> bool {
        Self::class_for(a) == Self::class_for(b)
    }

    fn new_chunk(&mut self, block_size: usize) -> Result<usize, HeapError> {
        let chunk = Chunk::new(block_size);
        // Bitmap lives in the EPC.
        self.enclave.epc_alloc(chunk.bitmap.len() * 8).map_err(|_| HeapError::EpcExhausted)?;
        self.chunks.push(chunk);
        Ok(self.chunks.len() - 1)
    }

    /// Allocate a block of at least `size` bytes.
    pub fn alloc(&mut self, size: usize) -> Result<UPtr, HeapError> {
        if self.strategy == AllocStrategy::Ocall {
            // Leaving the enclave to call malloc, then re-entering.
            self.enclave.ocall();
        }
        let Some(class_idx) = Self::class_for(size) else {
            // Oversize: dedicated chunk(s). Rare in a KV store (paper §V-B).
            let chunk_idx = self.new_chunk(0)?;
            self.chunks[chunk_idx].set_bit(0, true);
            self.chunks[chunk_idx].live_blocks = 1;
            self.live_bytes += CHUNK_SIZE;
            self.live_blocks += 1;
            self.note_alloc(CHUNK_SIZE);
            return Ok(UPtr { chunk: chunk_idx as u32, offset: 0 });
        };
        let block_size = SIZE_CLASSES[class_idx];

        // 1. Try the untrusted free list.
        if let Some(ptr) = self.classes[class_idx].free.pop() {
            self.enclave.access_untrusted(FREELIST_ENTRY_BYTES);
            // Validate against the in-EPC bitmap: a used block coming off
            // the free list means the (untrusted) list was tampered with.
            let chunk = &mut self.chunks[ptr.chunk as usize];
            let block = ptr.offset as usize / chunk.block_size;
            self.enclave.access_epc(8);
            if chunk.bit(block) {
                return Err(HeapError::MetadataAttack { ptr });
            }
            chunk.set_bit(block, true);
            chunk.live_blocks += 1;
            self.live_bytes += block_size;
            self.live_blocks += 1;
            self.note_alloc(block_size);
            return Ok(ptr);
        }

        // 2. Carve a fresh block from the open chunk for this class.
        let chunk_idx = match self.classes[class_idx].open_chunk {
            Some(idx) if self.chunks[idx].next_fresh < CHUNK_SIZE / block_size => idx,
            _ => {
                let idx = self.new_chunk(block_size)?;
                self.classes[class_idx].open_chunk = Some(idx);
                idx
            }
        };
        let chunk = &mut self.chunks[chunk_idx];
        let block = chunk.next_fresh;
        chunk.next_fresh += 1;
        chunk.set_bit(block, true);
        chunk.live_blocks += 1;
        self.enclave.access_epc(8);
        self.live_bytes += block_size;
        self.live_blocks += 1;
        self.note_alloc(block_size);
        Ok(UPtr { chunk: chunk_idx as u32, offset: (block * block_size) as u32 })
    }

    /// Free a previously allocated block.
    pub fn free(&mut self, ptr: UPtr) -> Result<(), HeapError> {
        let chunk =
            self.chunks.get_mut(ptr.chunk as usize).ok_or(HeapError::InvalidPointer { ptr })?;
        if chunk.block_size == 0 {
            // Dedicated oversize chunk.
            if !chunk.bit(0) {
                return Err(HeapError::InvalidPointer { ptr });
            }
            chunk.set_bit(0, false);
            chunk.live_blocks = 0;
            self.live_bytes -= CHUNK_SIZE;
            self.live_blocks -= 1;
            self.note_free(CHUNK_SIZE);
            return Ok(());
        }
        if !(ptr.offset as usize).is_multiple_of(chunk.block_size) {
            return Err(HeapError::InvalidPointer { ptr });
        }
        let block = ptr.offset as usize / chunk.block_size;
        self.enclave.access_epc(8);
        if !chunk.bit(block) {
            return Err(HeapError::InvalidPointer { ptr });
        }
        chunk.set_bit(block, false);
        chunk.live_blocks -= 1;
        let block_size = chunk.block_size;
        self.live_bytes -= block_size;
        self.live_blocks -= 1;
        let class_idx = Self::class_for(block_size).expect("block size is a class");
        self.classes[class_idx].free.push(ptr);
        self.enclave.access_untrusted(FREELIST_ENTRY_BYTES);
        self.note_free(block_size);
        Ok(())
    }

    fn check_range(&self, ptr: UPtr, len: usize) -> Result<&Chunk, HeapError> {
        let chunk = self.chunks.get(ptr.chunk as usize).ok_or(HeapError::InvalidPointer { ptr })?;
        let end = ptr.offset as usize + len;
        if end > CHUNK_SIZE {
            return Err(HeapError::InvalidPointer { ptr });
        }
        Ok(chunk)
    }

    /// Read `len` bytes at `ptr`, charging an untrusted access.
    pub fn read(&self, ptr: UPtr, len: usize) -> Result<&[u8], HeapError> {
        let chunk = self.check_range(ptr, len)?;
        self.enclave.access_untrusted(len);
        Ok(&chunk.data[ptr.offset as usize..ptr.offset as usize + len])
    }

    /// Read `len` bytes at `ptr + offset`, charging an untrusted access
    /// of just `len` bytes (partial-entry reads, e.g. a trailing MAC).
    pub fn read_at(&self, ptr: UPtr, offset: usize, len: usize) -> Result<&[u8], HeapError> {
        let chunk = self.check_range(ptr, offset + len)?;
        self.enclave.access_untrusted(len);
        let start = ptr.offset as usize + offset;
        Ok(&chunk.data[start..start + len])
    }

    /// Write bytes at `ptr`, charging an untrusted access.
    pub fn write(&mut self, ptr: UPtr, bytes: &[u8]) -> Result<(), HeapError> {
        self.check_range(ptr, bytes.len())?;
        self.enclave.access_untrusted(bytes.len());
        if let Some(hook) = self.fault_hook.clone() {
            if !self.faults_suspended {
                // The enclave wrote `bytes`; what lands in untrusted
                // memory is whatever the host-controlled fault leaves.
                let mut scratch = bytes.to_vec();
                let torn =
                    hook.lock().unwrap_or_else(|e| e.into_inner()).on_write(ptr, &mut scratch);
                let keep = torn.map_or(scratch.len(), |n| n.min(scratch.len()));
                let chunk = &mut self.chunks[ptr.chunk as usize];
                chunk.data[ptr.offset as usize..ptr.offset as usize + keep]
                    .copy_from_slice(&scratch[..keep]);
                return Ok(());
            }
        }
        let chunk = &mut self.chunks[ptr.chunk as usize];
        chunk.data[ptr.offset as usize..ptr.offset as usize + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Raw attacker-side access: read or modify untrusted bytes without any
    /// cost accounting or validation. This is how the attack-injection
    /// tests corrupt, replay and redirect data "from outside the enclave".
    pub fn raw_mut(&mut self, ptr: UPtr, len: usize) -> Result<&mut [u8], HeapError> {
        self.check_range(ptr, len)?;
        let chunk = &mut self.chunks[ptr.chunk as usize];
        Ok(&mut chunk.data[ptr.offset as usize..ptr.offset as usize + len])
    }

    /// Discard the untrusted free lists and rebuild them from the in-EPC
    /// occupation bitmaps, which are ground truth. Used by shard
    /// recovery: the free lists live in untrusted memory, so after a
    /// detected attack their contents cannot be trusted — any entry the
    /// adversary planted (a live block, a bogus pointer) is dropped and
    /// every genuinely free carved block is re-listed.
    pub fn rebuild_freelists(&mut self) {
        for class in &mut self.classes {
            class.free.clear();
        }
        for (chunk_idx, chunk) in self.chunks.iter().enumerate() {
            if chunk.block_size == 0 {
                continue; // oversize chunks have no free list
            }
            let Some(class_idx) = Self::class_for(chunk.block_size) else { continue };
            for block in 0..chunk.next_fresh {
                self.enclave.access_epc(8);
                if !chunk.bit(block) {
                    self.classes[class_idx].free.push(UPtr {
                        chunk: chunk_idx as u32,
                        offset: (block * chunk.block_size) as u32,
                    });
                    self.enclave.access_untrusted(FREELIST_ENTRY_BYTES);
                }
            }
        }
    }

    /// Attacker-side: push `ptr` back onto its size class's untrusted
    /// free list even though the block is live. The next allocation from
    /// that class pops it, cross-checks the in-EPC bitmap and reports
    /// [`HeapError::MetadataAttack`].
    pub fn attack_requeue_block(&mut self, ptr: UPtr) -> bool {
        let Some(chunk) = self.chunks.get(ptr.chunk as usize) else { return false };
        if chunk.block_size == 0 {
            return false;
        }
        let Some(class_idx) = Self::class_for(chunk.block_size) else { return false };
        self.classes[class_idx].free.push(ptr);
        true
    }

    /// Allocation strategy in use.
    pub fn strategy(&self) -> AllocStrategy {
        self.strategy
    }

    /// The enclave this heap charges.
    pub fn enclave(&self) -> &Arc<Enclave> {
        &self.enclave
    }

    /// Current statistics.
    pub fn stats(&self) -> HeapStats {
        HeapStats {
            live_bytes: self.live_bytes,
            live_blocks: self.live_blocks,
            chunk_bytes: self.chunks.len() * CHUNK_SIZE,
            epc_bitmap_bytes: self.chunks.iter().map(|c| c.bitmap.len() * 8).sum(),
            freelist_bytes: self.classes.iter().map(|c| c.free.len() * FREELIST_ENTRY_BYTES).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aria_sim::CostModel;

    fn heap(strategy: AllocStrategy) -> UserHeap {
        let enclave = Arc::new(Enclave::new(CostModel::default(), 8 << 20));
        UserHeap::new(enclave, strategy)
    }

    #[test]
    fn alloc_write_read_roundtrip() {
        let mut h = heap(AllocStrategy::UserSpace);
        let p = h.alloc(100).unwrap();
        h.write(p, b"hello untrusted world").unwrap();
        assert_eq!(h.read(p, 21).unwrap(), b"hello untrusted world");
    }

    #[test]
    fn distinct_allocations_do_not_overlap() {
        let mut h = heap(AllocStrategy::UserSpace);
        let ptrs: Vec<UPtr> = (0..100).map(|_| h.alloc(64).unwrap()).collect();
        for (i, p) in ptrs.iter().enumerate() {
            h.write(*p, &[i as u8; 64]).unwrap();
        }
        for (i, p) in ptrs.iter().enumerate() {
            assert_eq!(h.read(*p, 64).unwrap(), &[i as u8; 64]);
        }
    }

    #[test]
    fn free_then_alloc_reuses_block() {
        let mut h = heap(AllocStrategy::UserSpace);
        let p = h.alloc(64).unwrap();
        h.free(p).unwrap();
        let q = h.alloc(64).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn double_free_rejected() {
        let mut h = heap(AllocStrategy::UserSpace);
        let p = h.alloc(64).unwrap();
        h.free(p).unwrap();
        assert!(matches!(h.free(p), Err(HeapError::InvalidPointer { .. })));
    }

    #[test]
    fn tampered_free_list_detected() {
        let mut h = heap(AllocStrategy::UserSpace);
        let p = h.alloc(64).unwrap();
        // Attacker injects a live block into the untrusted free list.
        h.classes[UserHeap::class_for(64).unwrap()].free.push(p);
        assert!(matches!(h.alloc(64), Err(HeapError::MetadataAttack { .. })));
    }

    #[test]
    fn ocall_strategy_charges_crossing() {
        let mut h = heap(AllocStrategy::Ocall);
        let before = h.enclave().snapshot().ocalls;
        h.alloc(64).unwrap();
        assert_eq!(h.enclave().snapshot().ocalls, before + 1);

        let mut h2 = heap(AllocStrategy::UserSpace);
        h2.alloc(64).unwrap();
        assert_eq!(h2.enclave().snapshot().ocalls, 0);
    }

    #[test]
    fn oversize_allocation_gets_dedicated_chunk() {
        let enclave = Arc::new(Enclave::new(CostModel::default(), 8 << 20));
        let mut h = UserHeap::new(enclave, AllocStrategy::UserSpace);
        let p = h.alloc(CHUNK_SIZE + 1).unwrap();
        h.write(p, &[0xab; 100]).unwrap();
        assert_eq!(h.stats().live_bytes, CHUNK_SIZE);
        h.free(p).unwrap();
        assert_eq!(h.stats().live_bytes, 0);
    }

    #[test]
    fn bitmap_lives_in_epc() {
        let enclave = Arc::new(Enclave::new(CostModel::default(), 8 << 20));
        let mut h = UserHeap::new(Arc::clone(&enclave), AllocStrategy::UserSpace);
        assert_eq!(enclave.epc_used(), 0);
        h.alloc(64).unwrap();
        // One 4 MB chunk of 64 B blocks = 65536 blocks = 8 KB of bitmap.
        assert_eq!(enclave.epc_used(), 8192);
    }

    #[test]
    fn out_of_range_read_rejected() {
        let mut h = heap(AllocStrategy::UserSpace);
        let p = h.alloc(64).unwrap();
        assert!(h.read(p, CHUNK_SIZE + 1).is_err());
        assert!(h.read(UPtr { chunk: 99, offset: 0 }, 8).is_err());
    }

    struct FlipFirst {
        torn: bool,
        fired: usize,
    }

    impl WriteFault for FlipFirst {
        fn on_write(&mut self, _ptr: UPtr, bytes: &mut [u8]) -> Option<usize> {
            self.fired += 1;
            bytes[0] ^= 0x01;
            if self.torn {
                Some(bytes.len() / 2)
            } else {
                None
            }
        }
    }

    #[test]
    fn fault_hook_flips_and_tears_writes() {
        let mut h = heap(AllocStrategy::UserSpace);
        let p = h.alloc(64).unwrap();
        let hook = Arc::new(Mutex::new(FlipFirst { torn: false, fired: 0 }));
        h.set_fault_hook(Some(hook.clone()));
        h.write(p, &[0xaa; 8]).unwrap();
        let got = h.read(p, 8).unwrap();
        assert_eq!(got[0], 0xab, "first byte flipped");
        assert_eq!(&got[1..], &[0xaa; 7]);

        hook.lock().unwrap().torn = true;
        h.write(p, &[0x55; 8]).unwrap();
        let got = h.read(p, 8).unwrap();
        assert_eq!(&got[..4], &[0x54, 0x55, 0x55, 0x55], "torn prefix written");
        assert_eq!(&got[4..], &[0xaa; 4], "torn tail keeps the old bytes");

        // Suspension makes writes clean again without removing the hook.
        h.suspend_faults(true);
        assert!(!h.faults_active());
        h.write(p, &[0x11; 8]).unwrap();
        assert_eq!(h.read(p, 8).unwrap(), &[0x11; 8]);
        assert_eq!(hook.lock().unwrap().fired, 2);
    }

    #[test]
    fn rebuild_freelists_restores_bitmap_truth() {
        let mut h = heap(AllocStrategy::UserSpace);
        let keep = h.alloc(64).unwrap();
        let gone = h.alloc(64).unwrap();
        h.free(gone).unwrap();
        // Attacker scribbles the untrusted free list: plants a live block.
        assert!(h.attack_requeue_block(keep));
        h.rebuild_freelists();
        // The planted live block is gone, the genuinely free one is back.
        let p = h.alloc(64).unwrap();
        assert_eq!(p, gone);
        let q = h.alloc(64).unwrap();
        assert_ne!(q, keep, "live block must not be handed out again");
    }

    #[test]
    fn requeued_live_block_detected_on_alloc() {
        let mut h = heap(AllocStrategy::UserSpace);
        let p = h.alloc(64).unwrap();
        assert!(h.attack_requeue_block(p));
        assert!(matches!(h.alloc(64), Err(HeapError::MetadataAttack { .. })));
    }

    #[test]
    fn uptr_byte_roundtrip() {
        let p = UPtr { chunk: 3, offset: 12345 };
        assert_eq!(UPtr::from_bytes(&p.to_bytes()), p);
        assert!(UPtr::from_bytes(&UPtr::NULL.to_bytes()).is_null());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use aria_sim::CostModel;
    use proptest::prelude::*;

    proptest! {
        /// Random alloc/free interleavings: no double allocation of a live
        /// block, frees always succeed for live blocks, and accounting
        /// balances at the end.
        #[test]
        fn alloc_free_model(ops in proptest::collection::vec((any::<bool>(), 1usize..2000), 1..300)) {
            let enclave = Arc::new(Enclave::new(CostModel::default(), 64 << 20));
            let mut h = UserHeap::new(enclave, AllocStrategy::UserSpace);
            let mut live: Vec<UPtr> = Vec::new();
            let mut seen_live: std::collections::HashSet<UPtr> = std::collections::HashSet::new();
            for (is_alloc, size) in ops {
                if is_alloc || live.is_empty() {
                    let p = h.alloc(size).unwrap();
                    prop_assert!(seen_live.insert(p), "live block handed out twice: {:?}", p);
                    live.push(p);
                } else {
                    let p = live.swap_remove(size % live.len());
                    seen_live.remove(&p);
                    h.free(p).unwrap();
                }
            }
            for p in live.drain(..) {
                h.free(p).unwrap();
            }
            prop_assert_eq!(h.stats().live_bytes, 0);
            prop_assert_eq!(h.stats().live_blocks, 0);
        }

        /// Writes through distinct live pointers never clobber each other.
        #[test]
        fn no_aliasing(count in 1usize..60, sizes in proptest::collection::vec(1usize..512, 60)) {
            let enclave = Arc::new(Enclave::new(CostModel::default(), 64 << 20));
            let mut h = UserHeap::new(enclave, AllocStrategy::UserSpace);
            let ptrs: Vec<(UPtr, usize)> = (0..count)
                .map(|i| { let s = sizes[i]; (h.alloc(s).unwrap(), s) })
                .collect();
            for (i, (p, s)) in ptrs.iter().enumerate() {
                h.write(*p, &vec![i as u8; *s]).unwrap();
            }
            for (i, (p, s)) in ptrs.iter().enumerate() {
                let expected = vec![i as u8; *s];
                prop_assert_eq!(h.read(*p, *s).unwrap(), expected.as_slice());
            }
        }
    }
}
