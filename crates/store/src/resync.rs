//! Content roots for anti-entropy re-sync.
//!
//! Two replicas of the same logical shard hold the same *plaintext*
//! pairs but entirely different untrusted bytes: each replica seals its
//! entries under its own encryption-counter history, so ciphertexts,
//! entry MACs and counter-area Merkle roots are incomparable across
//! replicas by design. The quantity the replicas *can* agree on is a
//! digest over the verified plaintext contents, computed by each
//! enclave from its **own** MAC-verified reads — never from bytes the
//! untrusted host handed it directly.
//!
//! A [`ContentRoot`] is built as follows:
//!
//! 1. For every `(key, value)` pair, compute a CMAC under a fixed,
//!    public convention key over the length-prefixed pair (the length
//!    prefixes make the encoding injective — `("ab","c")` and
//!    `("a","bc")` digest differently).
//! 2. Sort the per-pair digests (the root must not depend on bucket
//!    layout or insertion order, which legitimately differ between
//!    replicas).
//! 3. CMAC the concatenation of the sorted digests, prefixed with the
//!    pair count.
//!
//! The fixed key means the root is *not* a secret or an authenticator
//! against the network — it is a collision-resistant-in-practice
//! fingerprint exchanged between two mutually-trusting enclaves. What
//! makes re-sync sound against a malicious host is *where the inputs
//! come from*: each side feeds the digest only pairs that already
//! survived its own entry-MAC + Merkle verification
//! ([`crate::KvStore::export_chunk`]). A production build would swap
//! the CMAC for SHA-256 and carry the root over an attested
//! enclave-to-enclave channel; the structure is identical (DESIGN.md
//! §13).

use aria_crypto::CmacKey;

use crate::{KvStore, StoreError};

/// Fixed public convention key for content digests. Shared by every
/// replica; see the module docs for why this is not a secret.
const CONTENT_DIGEST_KEY: [u8; 16] = *b"aria-resync-root";

/// How many pairs [`content_root_of`] pulls per `export_chunk` call.
pub const EXPORT_CHUNK_PAIRS: usize = 256;

/// An order-independent digest of a store's verified contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContentRoot {
    /// Number of pairs the root covers.
    pub pairs: u64,
    /// The combined digest.
    pub digest: [u8; 16],
}

impl std::fmt::Display for ContentRoot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} pairs, root ", self.pairs)?;
        for b in self.digest {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// Digest one verified pair under the fixed convention key
/// (length-prefixed, so the encoding is injective). Exposed so callers
/// that hold pairs in different places — e.g. the tiered store's hot
/// region and cold log — can digest incrementally and combine with
/// [`content_root_from_digests`] instead of materializing every pair
/// at once.
pub fn pair_digest_keyed(key: &[u8], value: &[u8]) -> [u8; 16] {
    pair_digest(&CmacKey::new(&CONTENT_DIGEST_KEY), key, value)
}

/// Digest one verified pair (length-prefixed, so the encoding is
/// injective).
fn pair_digest(mac: &CmacKey, key: &[u8], value: &[u8]) -> [u8; 16] {
    let klen = (key.len() as u64).to_le_bytes();
    let vlen = (value.len() as u64).to_le_bytes();
    mac.mac_parts(&[&klen, key, &vlen, value])
}

/// Combine per-pair digests (from [`pair_digest_keyed`]) into a
/// [`ContentRoot`]. Order-independent — the digests are sorted before
/// the final MAC, exactly as [`content_root`] does.
pub fn content_root_from_digests(mut digests: Vec<[u8; 16]>) -> ContentRoot {
    let mac = CmacKey::new(&CONTENT_DIGEST_KEY);
    digests.sort_unstable();
    let count = (digests.len() as u64).to_le_bytes();
    let mut parts: Vec<&[u8]> = Vec::with_capacity(digests.len() + 1);
    parts.push(&count);
    for d in &digests {
        parts.push(d);
    }
    ContentRoot { pairs: digests.len() as u64, digest: mac.mac_parts(&parts) }
}

/// Combine verified pairs into a [`ContentRoot`]. Order-independent:
/// any permutation of the same pairs yields the same root.
pub fn content_root(pairs: &[(Vec<u8>, Vec<u8>)]) -> ContentRoot {
    let mac = CmacKey::new(&CONTENT_DIGEST_KEY);
    let digests: Vec<[u8; 16]> = pairs.iter().map(|(k, v)| pair_digest(&mac, k, v)).collect();
    content_root_from_digests(digests)
}

/// Stream a store's entire verified contents
/// ([`KvStore::export_chunk`]) and return both the pairs and their
/// [`ContentRoot`]. The store must not be mutated concurrently — the
/// sharded layer guarantees this by running the export on the shard's
/// own worker thread behind the group's write fence. Enclave MAC costs
/// for the digest are charged per pair.
#[allow(clippy::type_complexity)]
pub fn content_root_of<S: KvStore>(
    store: &mut S,
) -> Result<(Vec<(Vec<u8>, Vec<u8>)>, ContentRoot), StoreError> {
    let mut all: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    let mut cursor = 0u64;
    loop {
        let (mut pairs, next) = store.export_chunk(cursor, EXPORT_CHUNK_PAIRS)?;
        all.append(&mut pairs);
        match next {
            Some(c) => cursor = c,
            None => break,
        }
    }
    for (k, v) in &all {
        store.enclave().charge_mac(16 + k.len() + v.len());
    }
    let root = content_root(&all);
    Ok((all, root))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(k: &str, v: &str) -> (Vec<u8>, Vec<u8>) {
        (k.as_bytes().to_vec(), v.as_bytes().to_vec())
    }

    #[test]
    fn root_is_order_independent() {
        let a = content_root(&[p("k1", "v1"), p("k2", "v2"), p("k3", "v3")]);
        let b = content_root(&[p("k3", "v3"), p("k1", "v1"), p("k2", "v2")]);
        assert_eq!(a, b);
        assert_eq!(a.pairs, 3);
    }

    #[test]
    fn root_detects_any_difference() {
        let base = content_root(&[p("k1", "v1"), p("k2", "v2")]);
        assert_ne!(base, content_root(&[p("k1", "v1")]), "missing pair");
        assert_ne!(base, content_root(&[p("k1", "v1"), p("k2", "vX")]), "changed value");
        assert_ne!(base, content_root(&[p("k1", "v1"), p("kX", "v2")]), "changed key");
        assert_ne!(
            base,
            content_root(&[p("k1", "v1"), p("k2", "v2"), p("k3", "v3")]),
            "extra pair"
        );
    }

    #[test]
    fn length_prefixing_is_injective() {
        // Same concatenated bytes, different key/value split.
        assert_ne!(content_root(&[p("ab", "c")]), content_root(&[p("a", "bc")]));
    }

    #[test]
    fn empty_root_is_stable() {
        assert_eq!(content_root(&[]), content_root(&[]));
        assert_eq!(content_root(&[]).pairs, 0);
    }
}
