//! Online shard resharding: split, merge and migrate shard groups under
//! live traffic with zero acknowledged-write loss.
//!
//! # Routing table
//!
//! Keys hash to one of [`NUM_ROUTING_SLOTS`] fixed *routing slots*
//! (splitmix64-mixed FNV-1a, exactly the pre-reshard shard map when the
//! group count divides the slot count); each slot is *owned* by one
//! shard group. A migration moves slot ownership — never the key → slot
//! map — and commits the move in a single **routing-epoch** bump. Every
//! slot remembers the epoch of its last ownership change
//! ([`RoutingTable::moved_epoch`]), so the serving layer can refuse a
//! client whose claimed epoch predates a move with a typed
//! `WrongShard{epoch, hint}` instead of silently serving against
//! routing the client no longer holds.
//!
//! # Migration protocol (DESIGN.md §18)
//!
//! The driver composes the primitives PR 5 built for anti-entropy
//! re-sync:
//!
//! 1. **Live bulk copy** — the source primary streams its MAC-verified
//!    contents ([`crate::KvStore::export_chunk`]) while the group keeps
//!    serving; pairs on moving slots are applied to every in-service
//!    replica of the target.
//! 2. **Frozen delta** — the moving slots are frozen (writes to them
//!    are refused *at execution time* on the source's own worker
//!    thread, so the refusal is totally ordered with the delta export
//!    queued behind it — no fence race can ack a write the delta
//!    misses), then a second export diffs against the copy and the
//!    delta is applied to the target.
//! 3. **Verified handoff** — source and target each compute a
//!    commutative content root over the moving slots *inside their own
//!    enclave from their own verified reads*
//!    ([`crate::resync::content_root`]); mismatching roots abort the
//!    migration. A tampered copy stream therefore cannot commit.
//! 4. **Epoch flip** — slot owners, per-slot moved-epochs and the
//!    global epoch change in one commit; the source then deletes the
//!    moved keys (its cold log reclaims them through the
//!    seqno-preserving compaction rewrite) and a merge deactivates the
//!    emptied source group.
//!
//! The source stays authoritative until step 4: an abort anywhere
//! before the flip leaves routing untouched, unfreezes the slots and
//! scrubs the target (a freshly activated target is deactivated
//! entirely — a killed or lying target leaves no trace).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread;

use crate::btree::KvPair;
use crate::resync::content_root;
use crate::sharded::{
    exec_on_slot, fnv1a, lock_handles, send_to_slot_inner, spawn_worker, splitmix64, Inner,
    Request, ShardHealth,
};
use crate::{KvStore, StoreError};

/// Fixed number of routing slots. Ownership moves in units of slots, so
/// this bounds both the maximum shard-group count and migration
/// granularity. For group counts dividing this (1, 2, 4, 8, …) the
/// initial slot map routes byte-identically to the pre-reshard
/// `hash % groups` map.
pub const NUM_ROUTING_SLOTS: usize = 64;

/// Pairs per apply chunk streamed into the target.
const APPLY_CHUNK: usize = 256;

/// Pairs per [`crate::KvStore::export_chunk`] call.
const EXPORT_CHUNK: usize = 256;

/// Slot-granular key → shard-group routing with a versioned epoch.
/// All reads are single atomic loads — the hot path pays two hashes
/// and two loads, no locks.
pub struct RoutingTable {
    epoch: AtomicU64,
    owners: Vec<AtomicU32>,
    moved: Vec<AtomicU64>,
    frozen: Vec<AtomicBool>,
}

impl RoutingTable {
    /// A table spreading [`NUM_ROUTING_SLOTS`] slots round-robin over
    /// the first `groups` groups, at epoch 1.
    pub fn new(groups: usize) -> RoutingTable {
        assert!(groups >= 1, "routing needs at least one group");
        assert!(groups <= NUM_ROUTING_SLOTS, "at most {NUM_ROUTING_SLOTS} groups");
        RoutingTable {
            epoch: AtomicU64::new(1),
            owners: (0..NUM_ROUTING_SLOTS).map(|i| AtomicU32::new((i % groups) as u32)).collect(),
            moved: (0..NUM_ROUTING_SLOTS).map(|_| AtomicU64::new(0)).collect(),
            frozen: (0..NUM_ROUTING_SLOTS).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Current routing epoch (starts at 1, bumps once per committed
    /// migration).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// The routing slot `key` hashes to — stable for the table's
    /// lifetime.
    pub fn slot_of(&self, key: &[u8]) -> usize {
        (splitmix64(fnv1a(key)) % NUM_ROUTING_SLOTS as u64) as usize
    }

    /// The group that owns `slot` right now.
    pub fn owner(&self, slot: usize) -> usize {
        self.owners[slot].load(Ordering::SeqCst) as usize
    }

    /// The group serving `key` right now.
    pub fn group_of(&self, key: &[u8]) -> usize {
        self.owner(self.slot_of(key))
    }

    /// Epoch at which `slot` last changed owner (0 = never moved).
    pub fn moved_epoch(&self, slot: usize) -> u64 {
        self.moved[slot].load(Ordering::SeqCst)
    }

    /// Whether `slot` is frozen by an in-flight migration delta (writes
    /// refused retryably; reads keep serving from the source).
    pub fn is_frozen(&self, slot: usize) -> bool {
        self.frozen[slot].load(Ordering::SeqCst)
    }

    /// Point-in-time copy of the slot → group map (the wire form of
    /// the table).
    pub fn owners_snapshot(&self) -> Vec<u32> {
        self.owners.iter().map(|o| o.load(Ordering::SeqCst)).collect()
    }

    /// The slots `group` currently owns, ascending.
    pub fn owned_slots(&self, group: usize) -> Vec<usize> {
        (0..NUM_ROUTING_SLOTS).filter(|&s| self.owner(s) == group).collect()
    }

    pub(crate) fn freeze(&self, slots: &[usize], on: bool) {
        for &s in slots {
            self.frozen[s].store(on, Ordering::SeqCst);
        }
    }

    /// Commit a move: retarget `slots` to `target`, stamp their
    /// moved-epoch, then bump the global epoch — in that order, so a
    /// worker that observes the new epoch also observes the new owners.
    pub(crate) fn commit_move(&self, slots: &[usize], target: usize) -> u64 {
        let next = self.epoch.load(Ordering::SeqCst) + 1;
        for &s in slots {
            self.owners[s].store(target as u32, Ordering::SeqCst);
            self.moved[s].store(next, Ordering::SeqCst);
        }
        self.epoch.store(next, Ordering::SeqCst);
        next
    }
}

impl std::fmt::Debug for RoutingTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoutingTable")
            .field("epoch", &self.epoch())
            .field("owners", &self.owners_snapshot())
            .finish()
    }
}

/// What a migration does with the moving group's slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ReshardMode {
    /// Move half of the source group's slots to a currently *inactive*
    /// target group, activating it.
    Split = 1,
    /// Move *all* of the source group's slots to an active target
    /// group, deactivating the source once drained.
    Merge = 2,
}

impl ReshardMode {
    /// Wire representation.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Inverse of [`ReshardMode::as_u8`].
    pub fn from_u8(v: u8) -> Option<ReshardMode> {
        match v {
            1 => Some(ReshardMode::Split),
            2 => Some(ReshardMode::Merge),
            _ => None,
        }
    }
}

/// Lifecycle of the (single-flight) migration driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ReshardState {
    /// No migration has run yet.
    Idle = 0,
    /// A migration is in flight.
    Running = 1,
    /// The most recent migration committed its epoch flip.
    Committed = 2,
    /// The most recent migration aborted; the old epoch keeps serving.
    Aborted = 3,
}

impl ReshardState {
    /// Wire/atomic representation.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Inverse of [`ReshardState::as_u8`]; unknown values decode as
    /// `Aborted` (fail closed).
    pub fn from_u8(v: u8) -> ReshardState {
        match v {
            0 => ReshardState::Idle,
            1 => ReshardState::Running,
            2 => ReshardState::Committed,
            _ => ReshardState::Aborted,
        }
    }
}

/// Chaos injection points inside the migration driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReshardFault {
    /// Flip a byte in the bulk-copy stream (must be caught by the
    /// content-root handoff check → abort, never commit).
    TamperStream,
    /// Kill the target's primary worker mid-copy (must abort and leave
    /// no trace of the target). Only consulted when the migration
    /// activated the target itself (a split): a merge target is a live
    /// data-bearing group, and killing its only primary is a plain
    /// shard loss — the replication layer's problem, not a migration
    /// outcome the driver could recover from by aborting.
    KillTarget,
}

/// Point-in-time migration driver status (see
/// [`crate::sharded::ShardedStore::reshard_status`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReshardStatus {
    /// Driver lifecycle state.
    pub state: ReshardState,
    /// Current routing epoch.
    pub epoch: u64,
    /// Migrations started since construction.
    pub started: u64,
    /// Migrations committed.
    pub committed: u64,
    /// Migrations aborted.
    pub aborted: u64,
    /// Groups currently active (owning routing slots).
    pub active_groups: usize,
    /// The error that aborted the most recent failed migration, if any.
    pub last_error: Option<StoreError>,
}

type FaultHook = dyn Fn(ReshardFault) -> bool + Send + Sync;

/// Migration driver control block, one per store.
pub(crate) struct ReshardCtl {
    state: AtomicU8,
    started: AtomicU64,
    committed: AtomicU64,
    aborted: AtomicU64,
    last_error: Mutex<Option<StoreError>>,
    fault: RwLock<Option<Arc<FaultHook>>>,
    active: Vec<AtomicBool>,
}

impl ReshardCtl {
    pub(crate) fn new(max_groups: usize, active: usize) -> ReshardCtl {
        ReshardCtl {
            state: AtomicU8::new(ReshardState::Idle.as_u8()),
            started: AtomicU64::new(0),
            committed: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            last_error: Mutex::new(None),
            fault: RwLock::new(None),
            active: (0..max_groups).map(|g| AtomicBool::new(g < active)).collect(),
        }
    }

    pub(crate) fn is_active(&self, group: usize) -> bool {
        self.active[group].load(Ordering::SeqCst)
    }

    pub(crate) fn active_groups(&self) -> usize {
        self.active.iter().filter(|a| a.load(Ordering::SeqCst)).count()
    }

    pub(crate) fn set_fault_hook<F>(&self, hook: F)
    where
        F: Fn(ReshardFault) -> bool + Send + Sync + 'static,
    {
        *self.fault.write().unwrap_or_else(|p| p.into_inner()) = Some(Arc::new(hook));
    }

    fn consult_fault(&self, fault: ReshardFault) -> bool {
        let guard = self.fault.read().unwrap_or_else(|p| p.into_inner());
        guard.as_ref().is_some_and(|hook| hook(fault))
    }

    /// Claim the single migration slot; returns the state the claim was
    /// won from, `None` if a migration is already running.
    fn claim(&self) -> Option<ReshardState> {
        [ReshardState::Idle, ReshardState::Committed, ReshardState::Aborted].into_iter().find(
            |prev| {
                self.state
                    .compare_exchange(
                        prev.as_u8(),
                        ReshardState::Running.as_u8(),
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    )
                    .is_ok()
            },
        )
    }
}

/// The error `start` refuses invalid or overlapping plans with.
fn plan_error(detail: &str) -> StoreError {
    StoreError::Log { op: "reshard", detail: detail.to_string() }
}

/// Validate and launch a migration on a background driver thread (see
/// [`crate::sharded::ShardedStore::start_reshard`]).
pub(crate) fn start<S: KvStore + Send + 'static>(
    inner: &Arc<Inner<S>>,
    mode: ReshardMode,
    source: usize,
    target: usize,
) -> Result<(), StoreError> {
    let ctl = &inner.reshard;
    let Some(prev) = ctl.claim() else {
        return Err(plan_error("a migration is already running"));
    };
    let release = |e: StoreError| {
        ctl.state.store(prev.as_u8(), Ordering::SeqCst);
        Err(e)
    };
    if inner.shutdown.load(Ordering::SeqCst) {
        return release(StoreError::ShardUnavailable { shard: source });
    }
    if source >= inner.groups || target >= inner.groups {
        return release(plan_error("group index out of range"));
    }
    if source == target {
        return release(plan_error("source and target must differ"));
    }
    if !ctl.is_active(source) {
        return release(plan_error("source group is not active"));
    }
    match mode {
        ReshardMode::Split => {
            if ctl.is_active(target) {
                return release(plan_error("split target must be an inactive group"));
            }
            if inner.routing.owned_slots(source).len() < 2 {
                return release(plan_error("source owns too few slots to split"));
            }
        }
        ReshardMode::Merge => {
            if !ctl.is_active(target) {
                return release(plan_error("merge target must be an active group"));
            }
        }
    }
    let inner2 = Arc::clone(inner);
    let handle = thread::Builder::new()
        .name(format!("aria-reshard-{source}-{target}"))
        .spawn(move || run(&inner2, mode, source, target))
        .expect("spawn reshard driver thread");
    let mut reg = lock_handles(&inner.resyncers);
    reg.retain(|h| !h.is_finished());
    reg.push(handle);
    Ok(())
}

/// Free-function form of
/// [`crate::sharded::ShardedStore::reshard_status`].
pub(crate) fn status<S: KvStore + Send + 'static>(inner: &Arc<Inner<S>>) -> ReshardStatus {
    let ctl = &inner.reshard;
    ReshardStatus {
        state: ReshardState::from_u8(ctl.state.load(Ordering::SeqCst)),
        epoch: inner.routing.epoch(),
        started: ctl.started.load(Ordering::SeqCst),
        committed: ctl.committed.load(Ordering::SeqCst),
        aborted: ctl.aborted.load(Ordering::SeqCst),
        active_groups: ctl.active_groups(),
        last_error: ctl.last_error.lock().unwrap_or_else(|p| p.into_inner()).clone(),
    }
}

/// Refresh the routing-epoch gauge on every slot's telemetry.
pub(crate) fn publish_routing_gauges<S: KvStore + Send + 'static>(inner: &Arc<Inner<S>>) {
    let epoch = inner.routing.epoch();
    for tele in &inner.tele {
        tele.store.routing_epoch.set(epoch);
    }
}

/// Set the per-replica migration-state gauge for one group
/// (0 = none, 1 = migration source, 2 = migration target).
fn set_migration_gauges<S: KvStore + Send + 'static>(inner: &Arc<Inner<S>>, group: usize, v: u64) {
    for r in 0..inner.replicas {
        inner.tele[inner.slot_index(group, r)].store.migration_state.set(v);
    }
}

/// Export every verified pair of a group replica inside one worker
/// round trip (the cursor is only valid while the store is unmutated,
/// and the worker queue is the mutual exclusion).
fn export_all<S: KvStore + Send + 'static>(
    inner: &Arc<Inner<S>>,
    group: usize,
    slot: usize,
) -> Result<Vec<KvPair>, StoreError> {
    exec_on_slot(inner, group, slot, |s: &mut S| {
        let mut out = Vec::new();
        let mut cursor = 0u64;
        loop {
            let (pairs, next) = s.export_chunk(cursor, EXPORT_CHUNK)?;
            out.extend(pairs);
            match next {
                Some(c) => cursor = c,
                None => break,
            }
        }
        Ok(out)
    })?
}

/// In-service (healthy) replica indexes of a group.
fn healthy_replicas<S: KvStore + Send + 'static>(
    inner: &Arc<Inner<S>>,
    group: usize,
) -> Vec<usize> {
    (0..inner.replicas)
        .filter(|&r| inner.ctls[group].machine.health(r) == ShardHealth::Healthy)
        .collect()
}

/// Apply one chunk of pairs to every in-service replica of `group`.
fn apply_chunk<S: KvStore + Send + 'static>(
    inner: &Arc<Inner<S>>,
    group: usize,
    chunk: &[(Vec<u8>, Vec<u8>)],
) -> Result<(), StoreError> {
    for r in healthy_replicas(inner, group) {
        let owned = chunk.to_vec();
        exec_on_slot(inner, group, inner.slot_index(group, r), move |s: &mut S| {
            let refs: Vec<(&[u8], &[u8])> =
                owned.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
            s.put_batch(&refs).into_iter().find_map(Result::err)
        })?
        .map_or(Ok(()), Err)?;
    }
    Ok(())
}

/// Delete `keys` from every in-service replica of `group`; with
/// `best_effort` errors are swallowed (abort scrubbing must not turn
/// into a second failure).
fn delete_keys<S: KvStore + Send + 'static>(
    inner: &Arc<Inner<S>>,
    group: usize,
    keys: &[Vec<u8>],
    best_effort: bool,
) -> Result<(), StoreError> {
    for r in healthy_replicas(inner, group) {
        for chunk in keys.chunks(APPLY_CHUNK) {
            let owned: Vec<Vec<u8>> = chunk.to_vec();
            let res = exec_on_slot(inner, group, inner.slot_index(group, r), move |s: &mut S| {
                owned.into_iter().find_map(|k| s.delete(&k).err())
            });
            match res {
                Ok(None) => {}
                Ok(Some(e)) if !best_effort => return Err(e),
                Err(e) if !best_effort => return Err(e),
                _ => {}
            }
        }
    }
    Ok(())
}

/// Take a group out of service: stop routing candidates, drop worker
/// senders (workers drain what they accepted and exit) and clear the
/// active flag. The reverse of activation; used after a merge drains
/// the source and to scrub a freshly activated target on abort.
fn deactivate<S: KvStore + Send + 'static>(inner: &Arc<Inner<S>>, group: usize) {
    inner.reshard.active[group].store(false, Ordering::SeqCst);
    for r in 0..inner.replicas {
        inner.ctls[group].machine.force(r, ShardHealth::Dead);
    }
    for r in 0..inner.replicas {
        let slot = inner.slot_index(group, r);
        let mut sender = inner.slots[slot].sender.write().unwrap_or_else(|p| p.into_inner());
        // Bump under the sender write lock (same discipline as a
        // respawn) so stale death evidence can never touch a future
        // activation's fresh worker. The respawn on reactivation resets
        // the in-flight estimate.
        inner.slots[slot].generation.fetch_add(1, Ordering::SeqCst);
        *sender = None;
    }
}

/// The migration driver body (background thread). Every failure path
/// funnels through the abort arm: routing untouched, slots unfrozen,
/// target scrubbed, `Aborted` state + counters recorded.
fn run<S: KvStore + Send + 'static>(
    inner: &Arc<Inner<S>>,
    mode: ReshardMode,
    source: usize,
    target: usize,
) {
    let ctl = &inner.reshard;
    ctl.started.fetch_add(1, Ordering::SeqCst);
    let src_tele_slot = inner.slot_index(source, inner.ctls[source].machine.primary());
    inner.tele[src_tele_slot].store.reshards_started.inc();
    set_migration_gauges(inner, source, 1);
    set_migration_gauges(inner, target, 2);

    let owned = inner.routing.owned_slots(source);
    let moving: Vec<usize> = match mode {
        // Every other owned slot: halves the load while keeping both
        // halves spread over the hash space.
        ReshardMode::Split => owned.iter().copied().skip(1).step_by(2).collect(),
        ReshardMode::Merge => owned.clone(),
    };
    let mut on_moving = [false; NUM_ROUTING_SLOTS];
    for &s in &moving {
        on_moving[s] = true;
    }

    let mut activated = false;
    let mut copied_keys: Vec<Vec<u8>> = Vec::new();
    let mut froze = false;

    // The protocol body; any Err lands in the abort arm below.
    let verdict: Result<Vec<Vec<u8>>, StoreError> = (|| {
        let gone = || StoreError::ShardUnavailable { shard: source };
        if inner.shutdown.load(Ordering::SeqCst) {
            return Err(gone());
        }
        // Activate the target if it has no workers yet (split). A
        // previously deactivated group respawns through the ordinary
        // factory, so it restarts from a fresh, empty store.
        if !ctl.is_active(target) {
            for r in 0..inner.replicas {
                spawn_worker(inner, inner.slot_index(target, r))?;
            }
            for r in 0..inner.replicas {
                inner.ctls[target].machine.force(r, ShardHealth::Healthy);
            }
            ctl.active[target].store(true, Ordering::SeqCst);
            activated = true;
        } else {
            // Merge target: scrub any residue a previously aborted
            // migration may have parked on the moving slots, so the
            // handoff verification below compares exactly this run's
            // copy.
            let tp = inner.ctls[target].machine.primary();
            let residue: Vec<Vec<u8>> = export_all(inner, target, inner.slot_index(target, tp))?
                .into_iter()
                .filter(|(k, _)| on_moving[inner.routing.slot_of(k)])
                .map(|(k, _)| k)
                .collect();
            delete_keys(inner, target, &residue, false)?;
        }

        // Phase 1: live bulk copy of the moving slots while the source
        // keeps serving reads and writes.
        let sp = inner.ctls[source].machine.primary();
        let sp_slot = inner.slot_index(source, sp);
        let mut copy: Vec<(Vec<u8>, Vec<u8>)> = export_all(inner, source, sp_slot)?
            .into_iter()
            .filter(|(k, _)| on_moving[inner.routing.slot_of(k)])
            .collect();
        // The source's record of what it streamed — the delta below
        // diffs against *this*, not against whatever the target ended
        // up holding (the source cannot see that).
        let sent: HashMap<Vec<u8>, Vec<u8>> = copy.iter().cloned().collect();
        // Chaos: a tampered copy stream. The flipped byte reaches the
        // target, the source's diff baseline stays pristine — only the
        // handoff root check can catch the divergence, and must.
        if ctl.consult_fault(ReshardFault::TamperStream) {
            if let Some((_, v)) = copy.iter_mut().find(|(_, v)| !v.is_empty()) {
                v[0] ^= 0x01;
            }
        }
        let mut killed = false;
        for chunk in copy.chunks(APPLY_CHUNK.max(1)) {
            if inner.shutdown.load(Ordering::SeqCst) {
                return Err(gone());
            }
            // Chaos: kill the target's primary mid-copy. The next apply
            // fails and the migration aborts without the epoch moving.
            // Gated on `activated`: only a half-built split target is
            // expendable — its scrub is a deactivation and the next
            // attempt respawns fresh workers. A merge target serves
            // live data; with no backup to promote, killing it would
            // just be an unrecoverable shard loss wearing a chaos hat.
            if !killed && activated && ctl.consult_fault(ReshardFault::KillTarget) {
                killed = true;
                let tp = inner.ctls[target].machine.primary();
                let _ = send_to_slot_inner(
                    inner,
                    inner.slot_index(target, tp),
                    Request::Exec(Box::new(|_s: &mut S| panic!("injected reshard target kill"))),
                );
            }
            apply_chunk(inner, target, chunk)?;
            copied_keys.extend(chunk.iter().map(|(k, _)| k.clone()));
        }

        // Phase 2: freeze the moving slots, then export the delta. The
        // export is queued on the source primary's own worker *after*
        // the freeze flag is up, so every write it misses was refused,
        // never acknowledged.
        inner.routing.freeze(&moving, true);
        froze = true;
        let routing = Arc::clone(&inner.routing);
        let moving_mask = on_moving;
        let (snap, src_root) =
            exec_on_slot(inner, source, sp_slot, move |s: &mut S| -> Result<_, StoreError> {
                let mut pairs = Vec::new();
                let mut cursor = 0u64;
                loop {
                    let (chunk, next) = s.export_chunk(cursor, EXPORT_CHUNK)?;
                    pairs.extend(chunk);
                    match next {
                        Some(c) => cursor = c,
                        None => break,
                    }
                }
                pairs.retain(|(k, _)| moving_mask[routing.slot_of(k)]);
                for (k, v) in &pairs {
                    s.enclave().charge_mac(16 + k.len() + v.len());
                }
                let root = content_root(&pairs);
                Ok((pairs, root))
            })??;
        let mut have = sent;
        let mut upserts: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for (k, v) in &snap {
            if have.remove(k).as_deref() != Some(v.as_slice()) {
                upserts.push((k.clone(), v.clone()));
            }
        }
        let stale: Vec<Vec<u8>> = have.into_keys().collect();
        for chunk in upserts.chunks(APPLY_CHUNK.max(1)) {
            apply_chunk(inner, target, chunk)?;
            copied_keys.extend(chunk.iter().map(|(k, _)| k.clone()));
        }
        delete_keys(inner, target, &stale, false)?;

        // Phase 3: verified handoff. The target recomputes the subset
        // root inside its own enclave from its own verified reads; a
        // lying (or tampered) target cannot produce the source's root.
        let tp = inner.ctls[target].machine.primary();
        let routing = Arc::clone(&inner.routing);
        let moving_mask = on_moving;
        let tgt_root = exec_on_slot(
            inner,
            target,
            inner.slot_index(target, tp),
            move |s: &mut S| -> Result<_, StoreError> {
                let mut pairs = Vec::new();
                let mut cursor = 0u64;
                loop {
                    let (chunk, next) = s.export_chunk(cursor, EXPORT_CHUNK)?;
                    pairs.extend(chunk);
                    match next {
                        Some(c) => cursor = c,
                        None => break,
                    }
                }
                pairs.retain(|(k, _)| moving_mask[routing.slot_of(k)]);
                for (k, v) in &pairs {
                    s.enclave().charge_mac(16 + k.len() + v.len());
                }
                Ok(content_root(&pairs))
            },
        )??;
        if src_root != tgt_root {
            return Err(StoreError::ReplicaDiverged { shard: target });
        }

        // Phase 4: the epoch flip. After this store the source's
        // workers refuse ops on the moved slots at execution time, so
        // the deletes below can never race a client into lost data.
        inner.routing.commit_move(&moving, target);
        inner.routing.freeze(&moving, false);
        froze = false;
        Ok(snap.into_iter().map(|(k, _)| k).collect())
    })();

    match verdict {
        Ok(moved_keys) => {
            ctl.committed.fetch_add(1, Ordering::SeqCst);
            inner.tele[src_tele_slot].store.reshards_committed.inc();
            publish_routing_gauges(inner);
            // Source cleanup: drop the moved keys (tombstones now; the
            // cold log reclaims them through the seqno-preserving
            // compaction rewrite in `maintain`), then retire the group
            // entirely if the merge emptied it.
            if !inner.shutdown.load(Ordering::SeqCst) {
                let _ = delete_keys(inner, source, &moved_keys, true);
                for r in healthy_replicas(inner, source) {
                    let _ =
                        exec_on_slot(inner, source, inner.slot_index(source, r), |s: &mut S| {
                            let _ = s.maintain();
                        });
                }
            }
            if mode == ReshardMode::Merge {
                deactivate(inner, source);
            }
            set_migration_gauges(inner, source, 0);
            set_migration_gauges(inner, target, 0);
            ctl.state.store(ReshardState::Committed.as_u8(), Ordering::SeqCst);
        }
        Err(e) => {
            if froze {
                inner.routing.freeze(&moving, false);
            }
            *ctl.last_error.lock().unwrap_or_else(|p| p.into_inner()) = Some(e);
            ctl.aborted.fetch_add(1, Ordering::SeqCst);
            inner.tele[src_tele_slot].store.reshards_aborted.inc();
            // Scrub: a target activated by this migration leaves no
            // trace; a pre-existing (merge) target gets the copied keys
            // deleted best-effort — routing never pointed at them, so
            // nothing served from them either way.
            if activated {
                deactivate(inner, target);
            } else if !inner.shutdown.load(Ordering::SeqCst) {
                let _ = delete_keys(inner, target, &copied_keys, true);
            }
            set_migration_gauges(inner, source, 0);
            set_migration_gauges(inner, target, 0);
            ctl.state.store(ReshardState::Aborted.as_u8(), Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::ShardedStore;
    use crate::{AriaHash, StoreConfig};
    use aria_sim::Enclave;
    use std::time::{Duration, Instant};

    fn elastic(active: usize, max: usize) -> ShardedStore<AriaHash> {
        ShardedStore::with_elastic(active, max, 1, 64, |_| {
            AriaHash::new(StoreConfig::for_keys(4_096), Arc::new(Enclave::with_default_epc()))
        })
        .unwrap()
    }

    fn await_settled(store: &ShardedStore<AriaHash>) -> ReshardStatus {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let st = store.reshard_status();
            if st.state != ReshardState::Running {
                return st;
            }
            assert!(Instant::now() < deadline, "migration never settled");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn routing_table_initial_map_matches_modulo() {
        let t = RoutingTable::new(4);
        assert_eq!(t.epoch(), 1);
        for key in [b"alpha".as_slice(), b"beta", b"k123", b""] {
            // 4 divides 64, so slot % 4 == hash % 4: byte-identical to
            // the pre-reshard shard map.
            assert_eq!(t.group_of(key), (splitmix64(fnv1a(key)) % 4) as usize);
            assert_eq!(t.moved_epoch(t.slot_of(key)), 0);
        }
    }

    #[test]
    fn routing_commit_moves_ownership_and_bumps_epoch() {
        let t = RoutingTable::new(2);
        let slots = t.owned_slots(0);
        assert_eq!(slots.len(), 32);
        let moving = &slots[..4];
        assert!(!t.is_frozen(moving[0]));
        t.freeze(moving, true);
        assert!(t.is_frozen(moving[0]));
        let epoch = t.commit_move(moving, 3);
        t.freeze(moving, false);
        assert_eq!(epoch, 2);
        assert_eq!(t.epoch(), 2);
        for &s in moving {
            assert_eq!(t.owner(s), 3);
            assert_eq!(t.moved_epoch(s), 2);
        }
        assert_eq!(t.owned_slots(0).len(), 28);
    }

    #[test]
    fn split_then_merge_round_trip_keeps_every_key() {
        let store = elastic(2, 4);
        assert_eq!(store.active_shards(), 2);
        for i in 0..200u32 {
            store.put(format!("key{i}").as_bytes(), &i.to_le_bytes()).unwrap();
        }
        store.start_reshard(ReshardMode::Split, 0, 2).unwrap();
        let st = await_settled(&store);
        assert_eq!(st.state, ReshardState::Committed, "split failed: {:?}", st.last_error);
        assert_eq!(st.epoch, 2);
        assert_eq!(st.active_groups, 3);
        assert!(!store.routing().owned_slots(2).is_empty());
        for i in 0..200u32 {
            assert_eq!(
                store.get(format!("key{i}").as_bytes()).unwrap().unwrap(),
                i.to_le_bytes(),
                "key{i} lost after split"
            );
        }
        // Writes keep landing on the new owner.
        store.put(b"post-split", b"x").unwrap();
        assert_eq!(store.get(b"post-split").unwrap().unwrap(), b"x");
        store.start_reshard(ReshardMode::Merge, 2, 0).unwrap();
        let st = await_settled(&store);
        assert_eq!(st.state, ReshardState::Committed, "merge failed: {:?}", st.last_error);
        assert_eq!(st.epoch, 3);
        assert_eq!(st.active_groups, 2);
        assert!(store.routing().owned_slots(2).is_empty());
        for i in 0..200u32 {
            assert_eq!(
                store.get(format!("key{i}").as_bytes()).unwrap().unwrap(),
                i.to_le_bytes(),
                "key{i} lost after merge"
            );
        }
        assert_eq!(store.len(), 201);
    }

    #[test]
    fn tampered_copy_stream_aborts_and_leaves_no_trace() {
        let store = elastic(2, 4);
        for i in 0..100u32 {
            store.put(format!("key{i}").as_bytes(), &i.to_le_bytes()).unwrap();
        }
        store.set_reshard_fault_hook(|f| f == ReshardFault::TamperStream);
        store.start_reshard(ReshardMode::Split, 0, 2).unwrap();
        let st = await_settled(&store);
        assert_eq!(st.state, ReshardState::Aborted);
        assert_eq!(st.last_error, Some(StoreError::ReplicaDiverged { shard: 2 }));
        // The old epoch keeps serving, the target is gone.
        assert_eq!(st.epoch, 1);
        assert_eq!(st.active_groups, 2);
        for i in 0..100u32 {
            assert_eq!(store.get(format!("key{i}").as_bytes()).unwrap().unwrap(), i.to_le_bytes());
        }
    }

    #[test]
    fn killed_target_aborts_without_epoch_movement() {
        let store = elastic(2, 4);
        for i in 0..100u32 {
            store.put(format!("key{i}").as_bytes(), &i.to_le_bytes()).unwrap();
        }
        store.set_reshard_fault_hook(|f| f == ReshardFault::KillTarget);
        store.start_reshard(ReshardMode::Split, 0, 2).unwrap();
        let st = await_settled(&store);
        assert_eq!(st.state, ReshardState::Aborted, "kill must abort");
        assert_eq!(st.epoch, 1);
        assert_eq!(st.active_groups, 2);
        for i in 0..100u32 {
            assert_eq!(store.get(format!("key{i}").as_bytes()).unwrap().unwrap(), i.to_le_bytes());
        }
        // The failed target can be reused: a clean retry succeeds.
        store.set_reshard_fault_hook(|_| false);
        store.start_reshard(ReshardMode::Split, 0, 2).unwrap();
        let st = await_settled(&store);
        assert_eq!(st.state, ReshardState::Committed, "retry failed: {:?}", st.last_error);
        assert_eq!(st.active_groups, 3);
    }

    #[test]
    fn merge_targets_are_never_kill_candidates() {
        // A merge target is a live data-bearing group with (here) no
        // backup to promote: the KillTarget site must not be consulted
        // for it — the armed hook stays untouched and the merge
        // commits, target group intact.
        let store = elastic(2, 4);
        for i in 0..100u32 {
            store.put(format!("key{i}").as_bytes(), &i.to_le_bytes()).unwrap();
        }
        store.set_reshard_fault_hook(|f| f == ReshardFault::KillTarget);
        store.start_reshard(ReshardMode::Merge, 1, 0).unwrap();
        let st = await_settled(&store);
        assert_eq!(st.state, ReshardState::Committed, "merge failed: {:?}", st.last_error);
        assert_eq!(st.epoch, 2);
        assert_eq!(st.active_groups, 1);
        for i in 0..100u32 {
            assert_eq!(store.get(format!("key{i}").as_bytes()).unwrap().unwrap(), i.to_le_bytes());
        }
    }

    #[test]
    fn invalid_plans_are_refused_synchronously() {
        let store = elastic(2, 4);
        assert!(store.start_reshard(ReshardMode::Split, 0, 0).is_err());
        assert!(store.start_reshard(ReshardMode::Split, 0, 1).is_err(), "target active");
        assert!(store.start_reshard(ReshardMode::Merge, 0, 2).is_err(), "target inactive");
        assert!(store.start_reshard(ReshardMode::Split, 2, 3).is_err(), "source inactive");
        assert!(store.start_reshard(ReshardMode::Split, 0, 9).is_err(), "out of range");
        // Refusals release the single-flight claim.
        assert_eq!(store.reshard_status().state, ReshardState::Idle);
        store.start_reshard(ReshardMode::Split, 0, 2).unwrap();
        let st = await_settled(&store);
        assert_eq!(st.state, ReshardState::Committed, "{:?}", st.last_error);
    }

    #[test]
    fn stale_claims_are_detected_after_a_move() {
        let store = elastic(2, 4);
        for i in 0..50u32 {
            store.put(format!("key{i}").as_bytes(), b"v").unwrap();
        }
        // No moves yet: no claim is stale, and claim 0 never refuses.
        assert_eq!(store.stale_claim(b"key1", 1), None);
        assert_eq!(store.stale_claim(b"key1", 0), None);
        store.start_reshard(ReshardMode::Split, 0, 2).unwrap();
        let st = await_settled(&store);
        assert_eq!(st.state, ReshardState::Committed, "{:?}", st.last_error);
        // Some key moved to group 2; a claim of epoch 1 is now stale
        // for it, and a refreshed claim is not.
        let moved = (0..50u32)
            .map(|i| format!("key{i}").into_bytes())
            .find(|k| store.shard_of(k) == 2)
            .expect("split moved some key to group 2");
        assert_eq!(store.stale_claim(&moved, 1), Some((2, 2)));
        assert_eq!(store.stale_claim(&moved, 2), None);
        assert_eq!(store.stale_claim(&moved, 0), None);
    }
}
