//! Store-level configuration.

use aria_cache::{CacheConfig, CacheConfigError};
use aria_mem::AllocStrategy;
use std::fmt;

/// Which design scheme a store instance implements (paper §III / Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Full Aria: Secure Cache over a counter Merkle tree.
    Aria,
    /// "Aria w/o Cache": all counters in an EPC array protected by
    /// hardware secure paging; no Merkle tree.
    AriaWithoutCache,
}

/// Configuration for an Aria store instance.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Design scheme.
    pub scheme: Scheme,
    /// Counters preallocated per Merkle tree (should cover the expected
    /// keyspace; the counter area expands with a fresh tree when
    /// exhausted).
    pub counter_capacity: u64,
    /// Merkle tree branching factor (Figure 15 sweeps 2..16).
    pub arity: usize,
    /// Secure Cache configuration (ignored by `AriaWithoutCache`).
    pub cache: CacheConfig,
    /// EPC bytes granted to the Secure Cache of each *expansion* tree.
    pub expansion_cache_bytes: usize,
    /// Number of hash buckets (hash index only).
    pub buckets: usize,
    /// Maximum entries per B-tree node (B-tree index only; order).
    pub btree_order: usize,
    /// Untrusted allocation strategy (`Ocall` reproduces `AriaBase`).
    pub alloc: AllocStrategy,
    /// Master secret for the cipher suite.
    pub master_key: [u8; 16],
    /// Seed for counter initialization.
    pub seed: u64,
    /// DRAM budget (bytes of plaintext key+value) for the hot in-memory
    /// region when the store is tiered over a cold log. `None` keeps
    /// the store fully RAM-resident (no tiering); `Some(0)` is rejected
    /// by validation — a hot tier that can hold nothing would thrash
    /// every access through the log.
    pub hot_budget_bytes: Option<usize>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            scheme: Scheme::Aria,
            counter_capacity: 1 << 20,
            arity: 8,
            cache: CacheConfig::default(),
            expansion_cache_bytes: 4 << 20,
            buckets: 1 << 18,
            btree_order: 16,
            alloc: AllocStrategy::UserSpace,
            master_key: [0x42; 16],
            seed: 0xa21a,
            hot_budget_bytes: None,
        }
    }
}

impl StoreConfig {
    /// A configuration sized for `keys` expected keys: counter capacity
    /// with headroom and roughly 2 keys per hash bucket.
    pub fn for_keys(keys: u64) -> Self {
        StoreConfig {
            counter_capacity: keys + keys / 8 + 1024,
            buckets: (keys / 2).next_power_of_two().max(1024) as usize,
            ..StoreConfig::default()
        }
    }

    /// A fallible builder starting from the default configuration.
    pub fn builder() -> StoreConfigBuilder {
        StoreConfigBuilder { cfg: StoreConfig::default(), epc_budget: None }
    }

    /// Height of the counter Merkle tree this configuration produces
    /// (same geometry as `MerkleTree::new`: leaves cover the counters,
    /// then levels shrink by `arity` until a single top node remains).
    pub fn merkle_height(&self) -> u32 {
        merkle_height(self.counter_capacity, self.arity)
    }

    /// Check the invariants [`StoreConfigBuilder::build`] enforces
    /// (without an EPC budget, which only the builder carries).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.counter_capacity == 0 {
            return Err(ConfigError::ZeroCounterCapacity);
        }
        if self.arity < 2 {
            return Err(ConfigError::ArityTooSmall { arity: self.arity });
        }
        if self.buckets == 0 {
            return Err(ConfigError::ZeroBuckets);
        }
        if self.btree_order < 3 {
            return Err(ConfigError::BTreeOrderTooSmall { order: self.btree_order });
        }
        if self.hot_budget_bytes == Some(0) {
            return Err(ConfigError::ZeroHotBudget);
        }
        self.cache.validate()?;
        let height = self.merkle_height();
        if self.scheme == Scheme::Aria && self.cache.pinned_levels > height {
            return Err(ConfigError::PinnedLevelsExceedHeight {
                pinned_levels: self.cache.pinned_levels,
                height,
            });
        }
        Ok(())
    }
}

fn merkle_height(counter_capacity: u64, arity: usize) -> u32 {
    // Degenerate inputs are reported by `validate`, not here.
    if counter_capacity == 0 || arity < 2 {
        return 0;
    }
    let mut nodes = counter_capacity.div_ceil(arity as u64);
    let mut height = 1u32;
    while nodes > 1 {
        nodes = nodes.div_ceil(arity as u64);
        height += 1;
    }
    height
}

/// Why a [`StoreConfigBuilder`] refused to produce a configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `counter_capacity` was zero; the Merkle tree must cover at least
    /// one counter.
    ZeroCounterCapacity,
    /// `arity < 2`; the Merkle tree cannot shrink toward a root.
    ArityTooSmall {
        /// The rejected arity.
        arity: usize,
    },
    /// `buckets` was zero (hash index).
    ZeroBuckets,
    /// `btree_order < 3`; a B-tree node must hold at least two entries
    /// plus room to split.
    BTreeOrderTooSmall {
        /// The rejected order.
        order: usize,
    },
    /// More Merkle levels pinned than the tree has. A pinned level that
    /// does not exist would silently pin nothing and skew EPC accounting.
    PinnedLevelsExceedHeight {
        /// Levels the cache was asked to pin.
        pinned_levels: u32,
        /// Levels the tree actually has.
        height: u32,
    },
    /// The Secure Cache capacity exceeds the declared EPC budget — the
    /// cache could never fit inside the enclave it is meant to protect.
    CacheExceedsEpcBudget {
        /// Requested Secure Cache capacity.
        cache_bytes: usize,
        /// Declared enclave EPC budget.
        epc_budget: usize,
    },
    /// `hot_budget_bytes` was `Some(0)`: a tiered store whose hot region
    /// holds nothing would send every access through the cold log.
    ZeroHotBudget,
    /// The embedded [`CacheConfig`] failed its own validation.
    Cache(CacheConfigError),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroCounterCapacity => {
                write!(f, "counter_capacity must be non-zero")
            }
            ConfigError::ArityTooSmall { arity } => {
                write!(f, "Merkle arity {arity} is below the minimum of 2")
            }
            ConfigError::ZeroBuckets => write!(f, "buckets must be non-zero"),
            ConfigError::BTreeOrderTooSmall { order } => {
                write!(f, "btree_order {order} is below the minimum of 3")
            }
            ConfigError::PinnedLevelsExceedHeight { pinned_levels, height } => {
                write!(f, "pinned_levels {pinned_levels} exceeds the Merkle tree height {height}")
            }
            ConfigError::CacheExceedsEpcBudget { cache_bytes, epc_budget } => {
                write!(f, "cache capacity {cache_bytes} B exceeds the EPC budget {epc_budget} B")
            }
            ConfigError::ZeroHotBudget => {
                write!(f, "hot_budget_bytes must be non-zero when tiering is enabled")
            }
            ConfigError::Cache(e) => write!(f, "cache config: {e}"),
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Cache(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CacheConfigError> for ConfigError {
    fn from(e: CacheConfigError) -> Self {
        ConfigError::Cache(e)
    }
}

/// Fallible builder for [`StoreConfig`].
///
/// ```
/// use aria_store::{Scheme, StoreConfig};
///
/// let cfg = StoreConfig::builder()
///     .epc_budget(91 << 20)
///     .scheme(Scheme::Aria)
///     .for_keys(100_000)
///     .build()
///     .unwrap();
/// assert!(cfg.counter_capacity >= 100_000);
/// ```
#[derive(Debug, Clone)]
pub struct StoreConfigBuilder {
    cfg: StoreConfig,
    epc_budget: Option<usize>,
}

impl StoreConfigBuilder {
    /// Declare the EPC budget (bytes) of the enclave this store will run
    /// in. `build` then rejects a Secure Cache larger than the budget.
    pub fn epc_budget(mut self, bytes: usize) -> Self {
        self.epc_budget = Some(bytes);
        self
    }

    /// Set the design scheme.
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.cfg.scheme = scheme;
        self
    }

    /// Set the counters preallocated per Merkle tree.
    pub fn counter_capacity(mut self, counters: u64) -> Self {
        self.cfg.counter_capacity = counters;
        self
    }

    /// Set the Merkle tree branching factor.
    pub fn arity(mut self, arity: usize) -> Self {
        self.cfg.arity = arity;
        self
    }

    /// Set the Secure Cache configuration.
    pub fn cache(mut self, cache: CacheConfig) -> Self {
        self.cfg.cache = cache;
        self
    }

    /// Set the EPC bytes granted to each expansion tree cache.
    pub fn expansion_cache_bytes(mut self, bytes: usize) -> Self {
        self.cfg.expansion_cache_bytes = bytes;
        self
    }

    /// Set the number of hash buckets (hash index only).
    pub fn buckets(mut self, buckets: usize) -> Self {
        self.cfg.buckets = buckets;
        self
    }

    /// Set the maximum entries per B-tree node.
    pub fn btree_order(mut self, order: usize) -> Self {
        self.cfg.btree_order = order;
        self
    }

    /// Set the untrusted allocation strategy.
    pub fn alloc(mut self, alloc: AllocStrategy) -> Self {
        self.cfg.alloc = alloc;
        self
    }

    /// Set the master secret for the cipher suite.
    pub fn master_key(mut self, key: [u8; 16]) -> Self {
        self.cfg.master_key = key;
        self
    }

    /// Set the counter-initialization seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Set the hot-region DRAM budget for tiered stores (`None`
    /// disables tiering).
    pub fn hot_budget_bytes(mut self, bytes: Option<usize>) -> Self {
        self.cfg.hot_budget_bytes = bytes;
        self
    }

    /// Size counter capacity and bucket count for `keys` expected keys,
    /// like [`StoreConfig::for_keys`], keeping other overrides.
    pub fn for_keys(mut self, keys: u64) -> Self {
        self.cfg.counter_capacity = keys + keys / 8 + 1024;
        self.cfg.buckets = (keys / 2).next_power_of_two().max(1024) as usize;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<StoreConfig, ConfigError> {
        self.cfg.validate()?;
        if let Some(budget) = self.epc_budget {
            if self.cfg.cache.capacity_bytes > budget {
                return Err(ConfigError::CacheExceedsEpcBudget {
                    cache_bytes: self.cfg.cache.capacity_bytes,
                    epc_budget: budget,
                });
            }
        }
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merkle_height_matches_tree_geometry() {
        // crates/merkle tests assert height 4 for (1000, 8) and 1 for
        // (4, 8); keep this helper in lockstep.
        assert_eq!(merkle_height(1000, 8), 4);
        assert_eq!(merkle_height(4, 8), 1);
        assert_eq!(merkle_height(16, 2), 4);
        assert!(merkle_height(1 << 20, 16) < merkle_height(1 << 20, 2));
    }

    #[test]
    fn builder_accepts_defaults() {
        let cfg = StoreConfig::builder().build().unwrap();
        assert_eq!(cfg.arity, StoreConfig::default().arity);
    }

    #[test]
    fn builder_rejects_degenerate_geometry() {
        assert_eq!(
            StoreConfig::builder().counter_capacity(0).build().unwrap_err(),
            ConfigError::ZeroCounterCapacity
        );
        assert_eq!(
            StoreConfig::builder().arity(1).build().unwrap_err(),
            ConfigError::ArityTooSmall { arity: 1 }
        );
        assert_eq!(
            StoreConfig::builder().buckets(0).build().unwrap_err(),
            ConfigError::ZeroBuckets
        );
        assert_eq!(
            StoreConfig::builder().btree_order(2).build().unwrap_err(),
            ConfigError::BTreeOrderTooSmall { order: 2 }
        );
        assert_eq!(
            StoreConfig::builder().hot_budget_bytes(Some(0)).build().unwrap_err(),
            ConfigError::ZeroHotBudget
        );
        StoreConfig::builder().hot_budget_bytes(Some(1 << 20)).build().unwrap();
    }

    #[test]
    fn builder_rejects_overpinned_cache() {
        let cache = CacheConfig::builder().pinned_levels(64).build().unwrap();
        let err = StoreConfig::builder().cache(cache).build().unwrap_err();
        assert!(matches!(err, ConfigError::PinnedLevelsExceedHeight { height, .. } if height < 64));
    }

    #[test]
    fn overpinning_is_fine_without_a_merkle_tree() {
        let cache = CacheConfig::builder().pinned_levels(64).build().unwrap();
        StoreConfig::builder().scheme(Scheme::AriaWithoutCache).cache(cache).build().unwrap();
    }

    #[test]
    fn builder_rejects_cache_above_epc_budget() {
        let cache = CacheConfig::builder().capacity_bytes(128 << 20).build().unwrap();
        let err = StoreConfig::builder().cache(cache).epc_budget(91 << 20).build().unwrap_err();
        assert_eq!(
            err,
            ConfigError::CacheExceedsEpcBudget { cache_bytes: 128 << 20, epc_budget: 91 << 20 }
        );
    }

    #[test]
    fn builder_propagates_cache_errors() {
        let mut cfg = StoreConfig::default();
        cfg.cache.stop_swap_window = 0;
        assert!(matches!(cfg.validate().unwrap_err(), ConfigError::Cache(_)));
    }

    #[test]
    fn for_keys_sizes_capacity_and_buckets() {
        let cfg = StoreConfig::builder().for_keys(100_000).build().unwrap();
        let plain = StoreConfig::for_keys(100_000);
        assert_eq!(cfg.counter_capacity, plain.counter_capacity);
        assert_eq!(cfg.buckets, plain.buckets);
    }
}
