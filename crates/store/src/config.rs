//! Store-level configuration.

use aria_cache::CacheConfig;
use aria_mem::AllocStrategy;

/// Which design scheme a store instance implements (paper §III / Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Full Aria: Secure Cache over a counter Merkle tree.
    Aria,
    /// "Aria w/o Cache": all counters in an EPC array protected by
    /// hardware secure paging; no Merkle tree.
    AriaWithoutCache,
}

/// Configuration for an Aria store instance.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Design scheme.
    pub scheme: Scheme,
    /// Counters preallocated per Merkle tree (should cover the expected
    /// keyspace; the counter area expands with a fresh tree when
    /// exhausted).
    pub counter_capacity: u64,
    /// Merkle tree branching factor (Figure 15 sweeps 2..16).
    pub arity: usize,
    /// Secure Cache configuration (ignored by `AriaWithoutCache`).
    pub cache: CacheConfig,
    /// EPC bytes granted to the Secure Cache of each *expansion* tree.
    pub expansion_cache_bytes: usize,
    /// Number of hash buckets (hash index only).
    pub buckets: usize,
    /// Maximum entries per B-tree node (B-tree index only; order).
    pub btree_order: usize,
    /// Untrusted allocation strategy (`Ocall` reproduces `AriaBase`).
    pub alloc: AllocStrategy,
    /// Master secret for the cipher suite.
    pub master_key: [u8; 16],
    /// Seed for counter initialization.
    pub seed: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            scheme: Scheme::Aria,
            counter_capacity: 1 << 20,
            arity: 8,
            cache: CacheConfig::default(),
            expansion_cache_bytes: 4 << 20,
            buckets: 1 << 18,
            btree_order: 16,
            alloc: AllocStrategy::UserSpace,
            master_key: [0x42; 16],
            seed: 0xa21a,
        }
    }
}

impl StoreConfig {
    /// A configuration sized for `keys` expected keys: counter capacity
    /// with headroom and roughly 2 keys per hash bucket.
    pub fn for_keys(keys: u64) -> Self {
        StoreConfig {
            counter_capacity: keys + keys / 8 + 1024,
            buckets: (keys / 2).next_power_of_two().max(1024) as usize,
            ..StoreConfig::default()
        }
    }
}
