//! Hot/cold tiering: a RAM-resident hot region over an append-only
//! sealed segment log, with verified crash recovery.
//!
//! [`TieredStore`] wraps any [`KvStore`] as the *hot* region and pairs
//! it with an `aria-log` [`SegmentLog`] as the *cold* tier:
//!
//! * **Writes** go to the hot store first (so its validation and
//!   integrity machinery applies), then append a sealed record to the
//!   log. The log is therefore always a complete history of
//!   acknowledged writes — the hot region is a cache of the log's
//!   latest state, not a separate source of truth.
//! * **Reads** hit the hot region; a miss that lands on a cold key
//!   reads the record from the log (CRC + MAC verified inside the
//!   enclave, crypto charged to the cost model) and *promotes* it back
//!   into the hot region. Under the skewed workloads Aria targets, the
//!   hot region absorbs the working set and cold reads stay rare.
//! * **Migration** ([`KvStore::maintain`]) evicts the
//!   least-recently-accessed hot entries once the hot region exceeds
//!   its byte budget. Eviction is free of log writes: every hot entry
//!   already has a live log record.
//! * **Compaction** rewrites the live records (including tombstones)
//!   of the deadest sealed segment into the active segment, fsyncs
//!   them, and deletes the victim file. Rewrites preserve the record's
//!   original sequence number, so replay ordering — and any
//!   checkpointed content root — is unaffected by compaction. A stale
//!   checkpoint is refreshed first, so a record that died *after* the
//!   last checkpoint (and is therefore still that checkpoint's winner
//!   for its key) is never dropped while recovery still needs it.
//! * **Checkpoints** pin the store's content root (the same
//!   commutative digest anti-entropy re-sync uses, see
//!   [`crate::resync`]) to a log sequence number, sealed under the log
//!   key. [`TieredStore::open`] replays the log, recomputes the root
//!   over the state at the checkpoint's sequence number, and refuses
//!   to serve ([`StoreError::RecoveryDiverged`]) unless it matches —
//!   torn writes past the checkpoint are truncated, but silent
//!   corruption, tampering, and rollback below the caller's
//!   `min_epoch` floor are detected and refused, never served.
//!
//! The trust model — what the checkpoint does and does not protect
//! against — is spelled out in DESIGN.md §15.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use aria_crypto::CmacKey;
use aria_log::{
    load_checkpoint, save_checkpoint, AppendFaultHook, Checkpoint, LogConfig, LogError, RecordKind,
    RecordPtr, SegmentLog,
};
use aria_sim::Enclave;

use crate::error::RecoveryFailure;
use crate::resync::{content_root_from_digests, pair_digest_keyed};
use crate::{CacheStats, KvStore, MaintenanceReport, RecoveryReport, StoreError};

/// Tiering knobs for a [`TieredStore`].
#[derive(Debug, Clone)]
pub struct TieredOptions {
    /// Directory holding the shard's segment log and checkpoint.
    pub dir: PathBuf,
    /// Segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// Byte budget (plaintext key+value) for the hot region; migration
    /// evicts down to this.
    pub hot_budget_bytes: usize,
    /// Compact a sealed segment once this fraction of its bytes is
    /// dead.
    pub compact_min_dead_ratio: f64,
    /// Checkpoint after this many mutations (puts + deletes) during
    /// [`KvStore::maintain`]. `0` disables automatic checkpoints.
    pub checkpoint_every: u64,
    /// Minimum checkpoint epoch accepted at open — the rollback floor
    /// the caller carries across restarts (an SGX monotonic counter in
    /// a real deployment). `0` accepts any state, including a missing
    /// checkpoint (first boot).
    pub min_epoch: u64,
    /// Maximum entries migrated per maintenance pass (bounds pause
    /// length).
    pub migrate_batch: usize,
    /// fsync appended log data before acknowledging (see
    /// [`TieredOptions::sync_window_bytes`] for the group-commit
    /// variant). Off by default: benches model the flush boundary
    /// explicitly.
    pub sync_writes: bool,
    /// Group-commit fsync window in bytes, effective with
    /// [`TieredOptions::sync_writes`]. `0` = fsync per append; non-zero
    /// coalesces appends behind one covering fsync issued by
    /// [`KvStore::flush`] (the shard worker calls it once per drained
    /// batch, before replying) or inline when the window fills.
    pub sync_window_bytes: u64,
}

impl TieredOptions {
    /// Defaults rooted at `dir`: 8 MiB segments, 64 MiB hot budget,
    /// compaction at 40% dead, checkpoint every 4096 mutations.
    pub fn new<P: Into<PathBuf>>(dir: P) -> TieredOptions {
        TieredOptions {
            dir: dir.into(),
            segment_bytes: 8 << 20,
            hot_budget_bytes: 64 << 20,
            compact_min_dead_ratio: 0.4,
            checkpoint_every: 4096,
            min_epoch: 0,
            migrate_batch: 4096,
            sync_writes: false,
            sync_window_bytes: 0,
        }
    }

    /// Set the hot-region byte budget.
    pub fn hot_budget_bytes(mut self, bytes: usize) -> TieredOptions {
        self.hot_budget_bytes = bytes;
        self
    }

    /// Set the segment rotation threshold.
    pub fn segment_bytes(mut self, bytes: u64) -> TieredOptions {
        self.segment_bytes = bytes;
        self
    }

    /// Set the automatic checkpoint interval (mutations; 0 disables).
    pub fn checkpoint_every(mut self, ops: u64) -> TieredOptions {
        self.checkpoint_every = ops;
        self
    }

    /// Set the rollback floor.
    pub fn min_epoch(mut self, epoch: u64) -> TieredOptions {
        self.min_epoch = epoch;
        self
    }

    /// Set the compaction dead-ratio threshold.
    pub fn compact_min_dead_ratio(mut self, ratio: f64) -> TieredOptions {
        self.compact_min_dead_ratio = ratio;
        self
    }

    /// Enable fsync-before-ack on the log append path.
    pub fn sync_writes(mut self, on: bool) -> TieredOptions {
        self.sync_writes = on;
        self
    }

    /// Set the group-commit fsync window (bytes; 0 = fsync per append).
    pub fn sync_window_bytes(mut self, bytes: u64) -> TieredOptions {
        self.sync_window_bytes = bytes;
        self
    }
}

/// Point-in-time tier occupancy, for STATS/telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Entries resident in the hot region.
    pub hot_entries: u64,
    /// Entries resident only in the cold log.
    pub cold_entries: u64,
    /// Live tombstones awaiting compaction.
    pub tombstones: u64,
    /// Plaintext bytes held by the hot region.
    pub hot_bytes: u64,
    /// Total record bytes across log segments.
    pub log_bytes: u64,
    /// Number of log segment files.
    pub segments: u64,
    /// Epoch of the most recent checkpoint (0 = none yet).
    pub checkpoint_epoch: u64,
}

/// Where a live key's latest record lives.
#[derive(Debug, Clone, Copy)]
struct KeyMeta {
    ptr: RecordPtr,
    seqno: u64,
    /// Plaintext key+value bytes (hot accounting); 0 for cold entries.
    bytes: usize,
    /// Logical access clock value at last touch (hot LRU).
    last_access: u64,
}

/// A [`KvStore`] split into a hot in-memory region and a cold sealed
/// segment log, with verified crash recovery. See the module docs.
pub struct TieredStore<S: KvStore> {
    hot: S,
    log: SegmentLog,
    log_key: [u8; 16],
    opts: TieredOptions,
    /// Keys resident in the hot region (their record also lives in the
    /// log).
    hot_meta: HashMap<Vec<u8>, KeyMeta>,
    /// Keys resident only in the log.
    cold: HashMap<Vec<u8>, KeyMeta>,
    /// Deleted keys whose tombstone record must stay live until a new
    /// put supersedes it (dropping it would resurrect older puts on
    /// replay).
    tombstones: HashMap<Vec<u8>, KeyMeta>,
    /// Keys whose cold record failed verification during a recovery
    /// sweep; reads fail closed ([`crate::Violation::DataDestroyed`]).
    destroyed: HashSet<Vec<u8>>,
    hot_bytes: usize,
    /// Logical access clock for hot LRU.
    clock: u64,
    mutations_since_checkpoint: u64,
    checkpoint_epoch: u64,
    tele: Option<Arc<aria_telemetry::ShardTelemetry>>,
}

impl<S: KvStore> std::fmt::Debug for TieredStore<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieredStore")
            .field("hot_entries", &self.hot_meta.len())
            .field("cold_entries", &self.cold.len())
            .field("tombstones", &self.tombstones.len())
            .field("hot_bytes", &self.hot_bytes)
            .field("checkpoint_epoch", &self.checkpoint_epoch)
            .finish_non_exhaustive()
    }
}

/// Map a log failure on the *runtime* read path: detected corruption or
/// tampering of a sealed record is an integrity violation (it triggers
/// shard quarantine + recovery like any other tampered entry); plain
/// I/O failure is not.
fn runtime_log_err(e: LogError) -> StoreError {
    match e {
        LogError::Corrupt { .. } | LogError::Tampered { .. } => {
            StoreError::Integrity(crate::Violation::EntryMacMismatch)
        }
        LogError::Io { op, msg, .. } => StoreError::Log { op, detail: msg },
        LogError::CheckpointCorrupt => {
            StoreError::RecoveryDiverged { reason: RecoveryFailure::CheckpointCorrupt }
        }
        LogError::MetaCorrupt { file } => {
            StoreError::RecoveryDiverged { reason: RecoveryFailure::MetaCorrupt { file } }
        }
        LogError::Config(msg) => StoreError::Log { op: "config", detail: msg },
    }
}

/// Map a log failure during *recovery*: integrity failures become typed
/// [`StoreError::RecoveryDiverged`] refusals.
fn recovery_log_err(e: LogError) -> StoreError {
    match e {
        LogError::Corrupt { segment, offset } => {
            StoreError::RecoveryDiverged { reason: RecoveryFailure::LogCorrupt { segment, offset } }
        }
        LogError::Tampered { segment, offset } => StoreError::RecoveryDiverged {
            reason: RecoveryFailure::LogTampered { segment, offset },
        },
        LogError::CheckpointCorrupt => {
            StoreError::RecoveryDiverged { reason: RecoveryFailure::CheckpointCorrupt }
        }
        LogError::MetaCorrupt { file } => {
            StoreError::RecoveryDiverged { reason: RecoveryFailure::MetaCorrupt { file } }
        }
        LogError::Io { op, msg, .. } => StoreError::Log { op, detail: msg },
        LogError::Config(msg) => StoreError::Log { op: "config", detail: msg },
    }
}

/// Derive the log sealing key from the store's master secret and the
/// log directory's identity nonce (domain separated from the
/// entry/counter keys the hot store derives). Mixing the nonce in
/// gives every log its own key: the shards of a `ShardedStore` share
/// one master secret and all start their seqnos at 1, so a
/// nonce-less derivation would encrypt shard A's seqno `n` and shard
/// B's seqno `n` under the same CTR keystream.
fn derive_log_key(master_key: &[u8; 16], log_nonce: &[u8; 16]) -> [u8; 16] {
    let mut input = Vec::with_capacity(20 + 16);
    input.extend_from_slice(b"aria-log-tier-key-v2");
    input.extend_from_slice(log_nonce);
    CmacKey::new(master_key).mac(&input)
}

/// Replay bookkeeping for one key while scanning segments.
struct ReplayState {
    /// Latest record overall (the live state after full replay).
    all: (u64, RecordKind, RecordPtr),
    /// Latest record at or below the checkpoint seqno, with its value
    /// (needed to recompute the checkpointed root).
    at_checkpoint: Option<(u64, RecordKind, Vec<u8>)>,
}

impl<S: KvStore> TieredStore<S> {
    /// Open the tier over `hot` (which must be empty — recovery leaves
    /// every key cold and re-heats lazily): replay the log, verify the
    /// replayed state against the sealed checkpoint, and refuse to
    /// serve on any divergence. A directory with no log and no
    /// checkpoint is a first boot (only accepted when
    /// `opts.min_epoch == 0`).
    pub fn open(
        hot: S,
        master_key: &[u8; 16],
        opts: TieredOptions,
    ) -> Result<TieredStore<S>, StoreError> {
        let log_nonce = aria_log::load_or_create_log_nonce(&opts.dir).map_err(recovery_log_err)?;
        let log_key = derive_log_key(master_key, &log_nonce);
        let checkpoint = load_checkpoint(&opts.dir, &log_key).map_err(recovery_log_err)?;
        if let Some(cp) = &checkpoint {
            if cp.epoch < opts.min_epoch {
                return Err(StoreError::RecoveryDiverged {
                    reason: RecoveryFailure::Rollback {
                        checkpoint_epoch: cp.epoch,
                        min_epoch: opts.min_epoch,
                    },
                });
            }
        } else if opts.min_epoch > 0 {
            // The caller has attested state; a missing checkpoint is a
            // rollback to before the first attestation.
            return Err(StoreError::RecoveryDiverged {
                reason: RecoveryFailure::Rollback {
                    checkpoint_epoch: 0,
                    min_epoch: opts.min_epoch,
                },
            });
        }
        let checkpoint_seqno = checkpoint.map(|c| c.last_seqno).unwrap_or(0);

        // Replay every segment; per key keep the overall winner (live
        // state) and the winner at the checkpoint frontier (for root
        // verification). Compaction rewrites reuse seqnos, so
        // latest-wins MUST resolve by seqno, not file order.
        let mut state: HashMap<Vec<u8>, ReplayState> = HashMap::new();
        let mut dead: Vec<RecordPtr> = Vec::new();
        let log_cfg = LogConfig::new(opts.dir.clone())
            .segment_bytes(opts.segment_bytes)
            .sync_writes(opts.sync_writes)
            .sync_window_bytes(opts.sync_window_bytes);
        let log = SegmentLog::open(log_cfg, &log_key, &mut |r| {
            let at_cp = r.seqno <= checkpoint_seqno;
            match state.get_mut(&r.key) {
                None => {
                    state.insert(
                        r.key,
                        ReplayState {
                            all: (r.seqno, r.kind, r.ptr),
                            at_checkpoint: at_cp.then_some((r.seqno, r.kind, r.value)),
                        },
                    );
                }
                Some(st) => {
                    if r.seqno > st.all.0 {
                        dead.push(st.all.2);
                        st.all = (r.seqno, r.kind, r.ptr);
                    } else {
                        // A compaction rewrite of an older record (or
                        // the original of a rewritten one): dead.
                        dead.push(r.ptr);
                    }
                    if at_cp {
                        match &st.at_checkpoint {
                            Some((s, _, _)) if *s >= r.seqno => {}
                            _ => st.at_checkpoint = Some((r.seqno, r.kind, r.value)),
                        }
                    }
                }
            }
        })
        .map_err(recovery_log_err)?;

        // Verify: the state at the checkpoint frontier must reproduce
        // the sealed root exactly.
        if let Some(cp) = &checkpoint {
            let mut digests = Vec::new();
            for (key, st) in &state {
                if let Some((_, RecordKind::Put, value)) = &st.at_checkpoint {
                    digests.push(pair_digest_keyed(key, value));
                }
            }
            let root = content_root_from_digests(digests);
            if root.pairs != cp.pairs || root.digest != cp.root {
                return Err(StoreError::RecoveryDiverged { reason: RecoveryFailure::RootMismatch });
            }
        }

        // Build the live (all-cold) index from the overall winners.
        let mut store = TieredStore {
            hot,
            log,
            log_key,
            opts,
            hot_meta: HashMap::new(),
            cold: HashMap::new(),
            tombstones: HashMap::new(),
            destroyed: HashSet::new(),
            hot_bytes: 0,
            clock: 0,
            mutations_since_checkpoint: 0,
            checkpoint_epoch: checkpoint.map(|c| c.epoch).unwrap_or(0),
            tele: None,
        };
        for (key, st) in state {
            let (seqno, kind, ptr) = st.all;
            let meta = KeyMeta { ptr, seqno, bytes: 0, last_access: 0 };
            match kind {
                RecordKind::Put => {
                    store.cold.insert(key, meta);
                }
                RecordKind::Delete => {
                    store.tombstones.insert(key, meta);
                }
            }
        }
        for ptr in dead {
            store.log.mark_dead(ptr);
        }
        Ok(store)
    }

    /// Tier occupancy snapshot.
    pub fn tier_stats(&self) -> TierStats {
        TierStats {
            hot_entries: self.hot_meta.len() as u64,
            cold_entries: self.cold.len() as u64,
            tombstones: self.tombstones.len() as u64,
            hot_bytes: self.hot_bytes as u64,
            log_bytes: self.log.total_bytes(),
            segments: self.log.segment_count() as u64,
            checkpoint_epoch: self.checkpoint_epoch,
        }
    }

    /// The log's append frontier (segment id, byte offset) — everything
    /// below it is flushed state a crash cut can land in. Used by the
    /// durability bench to aim SIGKILL-style cuts.
    pub fn log_frontier(&self) -> (u64, u64) {
        self.log.frontier()
    }

    /// The epoch of the most recent checkpoint (0 = none yet). Carry
    /// `epoch` forward as [`TieredOptions::min_epoch`] across restarts
    /// to arm the rollback defence.
    pub fn checkpoint_epoch(&self) -> u64 {
        self.checkpoint_epoch
    }

    /// Install (or clear) the chaos harness's append fault hook (torn
    /// appends / host bit flips on the write path).
    pub fn set_log_fault_hook(&mut self, hook: Option<AppendFaultHook>) {
        self.log.set_fault_hook(hook);
    }

    /// Checkpoint now: flush the log, digest the full verified state
    /// (hot region via [`KvStore::export_chunk`], cold tier via
    /// MAC-verified log reads) and seal root + counters to disk.
    /// Returns the new checkpoint.
    pub fn force_checkpoint(&mut self) -> Result<Checkpoint, StoreError> {
        let mut digests: Vec<[u8; 16]> = Vec::with_capacity(self.len() as usize);
        // Hot region: stream verified pairs from the inner store.
        let mut cursor = 0u64;
        loop {
            let (pairs, next) = self.hot.export_chunk(cursor, crate::resync::EXPORT_CHUNK_PAIRS)?;
            for (k, v) in &pairs {
                self.hot.enclave().charge_mac(16 + k.len() + v.len());
                digests.push(pair_digest_keyed(k, v));
            }
            match next {
                Some(c) => cursor = c,
                None => break,
            }
        }
        // Cold tier: verified log reads.
        let cold_keys: Vec<(Vec<u8>, RecordPtr)> =
            self.cold.iter().map(|(k, m)| (k.clone(), m.ptr)).collect();
        for (key, ptr) in cold_keys {
            let (kind, k, v, _) = self.log.read(ptr).map_err(runtime_log_err)?;
            if kind != RecordKind::Put || k != key {
                return Err(StoreError::Integrity(crate::Violation::EntryMacMismatch));
            }
            self.hot.enclave().charge_crypt(k.len() + v.len());
            self.hot.enclave().charge_mac(16 + k.len() + v.len());
            digests.push(pair_digest_keyed(&k, &v));
        }
        let root = content_root_from_digests(digests);
        self.log.sync().map_err(runtime_log_err)?;
        let cp = Checkpoint {
            epoch: self.checkpoint_epoch + 1,
            last_seqno: self.log.last_seqno(),
            pairs: root.pairs,
            root: root.digest,
        };
        save_checkpoint(&self.opts.dir, &self.log_key, &cp).map_err(runtime_log_err)?;
        self.checkpoint_epoch = cp.epoch;
        self.mutations_since_checkpoint = 0;
        if let Some(tele) = &self.tele {
            tele.store.checkpoints.inc();
        }
        Ok(cp)
    }

    /// Mark the predecessor record of `key` dead (it is being
    /// superseded by a fresh append) and drop it from whichever index
    /// holds it. Returns the plaintext bytes the hot region frees.
    fn supersede(&mut self, key: &[u8]) -> usize {
        if let Some(meta) = self.hot_meta.remove(key) {
            self.log.mark_dead(meta.ptr);
            self.hot_bytes -= meta.bytes.min(self.hot_bytes);
            meta.bytes
        } else if let Some(meta) = self.cold.remove(key) {
            self.log.mark_dead(meta.ptr);
            0
        } else if let Some(meta) = self.tombstones.remove(key) {
            self.log.mark_dead(meta.ptr);
            0
        } else {
            0
        }
    }

    /// Migrate least-recently-accessed hot entries to cold until the
    /// hot region fits its budget (bounded by `migrate_batch`).
    fn migrate(&mut self) -> Result<u64, StoreError> {
        if self.hot_bytes <= self.opts.hot_budget_bytes {
            return Ok(0);
        }
        let mut order: Vec<(u64, Vec<u8>)> =
            self.hot_meta.iter().map(|(k, m)| (m.last_access, k.clone())).collect();
        order.sort_unstable();
        let mut migrated = 0u64;
        for (_, key) in order {
            if self.hot_bytes <= self.opts.hot_budget_bytes
                || migrated as usize >= self.opts.migrate_batch
            {
                break;
            }
            let meta = match self.hot_meta.remove(&key) {
                Some(m) => m,
                None => continue,
            };
            // The log already holds the entry's latest record; eviction
            // just drops the DRAM copy.
            self.hot.delete(&key)?;
            self.hot_bytes -= meta.bytes.min(self.hot_bytes);
            self.cold.insert(key, KeyMeta { bytes: 0, ..meta });
            migrated += 1;
        }
        if migrated > 0 {
            if let Some(tele) = &self.tele {
                tele.store.migrations.add(migrated);
            }
        }
        Ok(migrated)
    }

    /// Compact the deadest sealed segment, if any qualifies: rewrite
    /// its live records (puts *and* tombstones — dropping a tombstone
    /// would resurrect older puts on replay) into the active segment,
    /// then delete the victim file.
    fn compact(&mut self) -> Result<(u64, u64), StoreError> {
        let Some(victim) = self.log.victim_segment(self.opts.compact_min_dead_ratio) else {
            return Ok((0, 0));
        };
        // A *dead* record in the victim can still be the winner for its
        // key at the checkpoint frontier (it was live when the root was
        // sealed and got superseded afterwards). Dropping it would make
        // the next open() unable to reproduce the checkpointed root —
        // an unrecoverable RootMismatch from a perfectly normal
        // workload. Re-checkpoint first: at a fresh frontier every
        // winner is a live record, and live records are exactly what
        // the rewrite loop below preserves. (This runs even when
        // checkpoint_every is 0 — it is a correctness requirement, not
        // a tuning knob.)
        if self.checkpoint_epoch > 0 && self.mutations_since_checkpoint > 0 {
            self.force_checkpoint()?;
        }
        let mut rewritten = 0u64;
        // Collect the live records pointing into the victim.
        let in_victim = |m: &KeyMeta| m.ptr.segment == victim;
        let hot_keys: Vec<Vec<u8>> =
            self.hot_meta.iter().filter(|(_, m)| in_victim(m)).map(|(k, _)| k.clone()).collect();
        let cold_keys: Vec<Vec<u8>> =
            self.cold.iter().filter(|(_, m)| in_victim(m)).map(|(k, _)| k.clone()).collect();
        let tomb_keys: Vec<Vec<u8>> =
            self.tombstones.iter().filter(|(_, m)| in_victim(m)).map(|(k, _)| k.clone()).collect();
        for (keys, map_kind) in [(hot_keys, 0usize), (cold_keys, 1), (tomb_keys, 2)] {
            for key in keys {
                let meta = match map_kind {
                    0 => self.hot_meta.get(&key),
                    1 => self.cold.get(&key),
                    _ => self.tombstones.get(&key),
                };
                let Some(&meta) = meta else { continue };
                let (kind, k, v, seqno) = self.log.read(meta.ptr).map_err(runtime_log_err)?;
                if k != key || seqno != meta.seqno {
                    return Err(StoreError::Integrity(crate::Violation::EntryMacMismatch));
                }
                let info = self.log.append_rewrite(seqno, kind, &k, &v).map_err(runtime_log_err)?;
                let target = match map_kind {
                    0 => self.hot_meta.get_mut(&key),
                    1 => self.cold.get_mut(&key),
                    _ => self.tombstones.get_mut(&key),
                };
                if let Some(m) = target {
                    m.ptr = info.ptr;
                }
                rewritten += 1;
            }
        }
        // The rewrites must be durable before the victim — the only
        // other copy of those records — is unlinked, or a power cut in
        // between loses live state.
        self.log.sync().map_err(runtime_log_err)?;
        self.log.remove_segment(victim).map_err(runtime_log_err)?;
        if let Some(tele) = &self.tele {
            tele.store.compactions.inc();
        }
        Ok((1, rewritten))
    }

    /// Undo a hot-store `put` whose log append failed: the inner store
    /// holds a value with no log record, and leaving it there would
    /// let `force_checkpoint` (which streams the inner store) seal a
    /// root that replay can never reproduce. A previously-hot key
    /// demotes to cold — its prior record is still live in the log.
    fn rollback_hot_put(&mut self, key: &[u8]) {
        if self.hot.delete(key).is_err() {
            // The inner store refused the rollback (its own integrity
            // machinery tripped); fail the key closed until recovery
            // sorts it out.
            self.destroyed.insert(key.to_vec());
        }
        if let Some(meta) = self.hot_meta.remove(key) {
            self.hot_bytes -= meta.bytes.min(self.hot_bytes);
            self.cold.insert(key.to_vec(), KeyMeta { bytes: 0, ..meta });
        }
    }
}

impl<S: KvStore> KvStore for TieredStore<S> {
    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        // Hot store first: its validation (key/value limits) and
        // integrity machinery gate what reaches the log. A crash
        // between the two loses only an unacknowledged write.
        self.hot.put(key, value)?;
        let info = match self.log.append(RecordKind::Put, key, value) {
            Ok(info) => info,
            Err(e) => {
                self.rollback_hot_put(key);
                return Err(runtime_log_err(e));
            }
        };
        let freed = self.supersede(key);
        let _ = freed;
        self.destroyed.remove(key);
        self.clock += 1;
        let bytes = key.len() + value.len();
        self.hot_meta.insert(
            key.to_vec(),
            KeyMeta { ptr: info.ptr, seqno: info.seqno, bytes, last_access: self.clock },
        );
        self.hot_bytes += bytes;
        self.mutations_since_checkpoint += 1;
        Ok(())
    }

    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        if self.destroyed.contains(key) {
            return Err(StoreError::Integrity(crate::Violation::DataDestroyed));
        }
        self.clock += 1;
        if let Some(meta) = self.hot_meta.get_mut(key) {
            meta.last_access = self.clock;
            return self.hot.get(key);
        }
        if self.tombstones.contains_key(key) {
            return Ok(None);
        }
        let Some(&meta) = self.cold.get(key) else {
            return Ok(None);
        };
        // Cold read: verified log read, charged to the enclave like any
        // sealed-entry open, then promote into the hot region (the
        // record stays live — promotion changes residency, not truth).
        let started = Instant::now();
        let (kind, k, v, seqno) = self.log.read(meta.ptr).map_err(runtime_log_err)?;
        if kind != RecordKind::Put || k != key || seqno != meta.seqno {
            return Err(StoreError::Integrity(crate::Violation::EntryMacMismatch));
        }
        self.hot.enclave().charge_crypt(k.len() + v.len());
        self.hot.enclave().charge_mac(16 + k.len() + v.len());
        self.hot.put(&k, &v)?;
        self.cold.remove(key);
        let bytes = k.len() + v.len();
        self.hot_meta.insert(
            k,
            KeyMeta { ptr: meta.ptr, seqno: meta.seqno, bytes, last_access: self.clock },
        );
        self.hot_bytes += bytes;
        if let Some(tele) = &self.tele {
            tele.store.cold_read_latency.observe(started.elapsed().as_nanos() as u64);
        }
        Ok(Some(v))
    }

    fn delete(&mut self, key: &[u8]) -> Result<bool, StoreError> {
        if self.destroyed.contains(key) {
            return Err(StoreError::Integrity(crate::Violation::DataDestroyed));
        }
        let was_hot = self.hot_meta.contains_key(key);
        let existed = was_hot || self.cold.contains_key(key);
        if !existed {
            return Ok(false);
        }
        // Tombstone append first: if it fails, nothing has mutated and
        // the delete simply did not happen. (The mirror order — hot
        // delete then append — left the key erased in DRAM but live in
        // the log on append failure.)
        let info = self.log.append(RecordKind::Delete, key, &[]).map_err(runtime_log_err)?;
        let hot_result = if was_hot { self.hot.delete(key).map(|_| ()) } else { Ok(()) };
        let freed = self.supersede(key);
        let _ = freed;
        self.tombstones.insert(
            key.to_vec(),
            KeyMeta { ptr: info.ptr, seqno: info.seqno, bytes: 0, last_access: 0 },
        );
        self.mutations_since_checkpoint += 1;
        if let Err(e) = hot_result {
            // The tombstone is logged and indexed, but the inner store
            // failed mid-delete (its integrity machinery tripped, which
            // quarantines the shard); fail the key closed meanwhile.
            self.destroyed.insert(key.to_vec());
            return Err(e);
        }
        Ok(true)
    }

    fn len(&self) -> u64 {
        (self.hot_meta.len() + self.cold.len()) as u64
    }

    fn enclave(&self) -> &Arc<Enclave> {
        self.hot.enclave()
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        self.hot.cache_stats()
    }

    fn recover(&mut self) -> Result<RecoveryReport, StoreError> {
        let mut report = self.hot.recover()?;
        // Audit the cold tier: every record must still verify. Records
        // that no longer do are destroyed — their keys fail closed from
        // here on, exactly like a condemned hot entry.
        let cold_keys: Vec<(Vec<u8>, KeyMeta)> =
            self.cold.iter().map(|(k, m)| (k.clone(), *m)).collect();
        for (key, meta) in cold_keys {
            match self.log.read(meta.ptr) {
                Ok((RecordKind::Put, k, _, seqno)) if k == key && seqno == meta.seqno => {
                    report.entries_verified += 1;
                }
                Ok(_) | Err(LogError::Corrupt { .. }) | Err(LogError::Tampered { .. }) => {
                    self.cold.remove(&key);
                    self.log.mark_dead(meta.ptr);
                    self.destroyed.insert(key);
                    report.entries_destroyed += 1;
                    // The destroyed record may have been a checkpoint
                    // winner; count it as a mutation so the next
                    // compaction re-checkpoints before dropping it.
                    self.mutations_since_checkpoint += 1;
                }
                Err(e) => return Err(runtime_log_err(e)),
            }
        }
        Ok(report)
    }

    fn attach_telemetry(&mut self, tele: Arc<aria_telemetry::ShardTelemetry>) {
        self.hot.attach_telemetry(Arc::clone(&tele));
        self.tele = Some(tele);
    }

    fn refresh_gauges(&self) {
        self.hot.refresh_gauges();
        if let Some(tele) = &self.tele {
            tele.store.hot_entries.set(self.hot_meta.len() as u64);
            tele.store.cold_entries.set(self.cold.len() as u64);
            // The inner store's keys_live gauge only covers the hot
            // region; report the full logical key count.
            tele.store.keys_live.set(self.len());
        }
    }

    /// Stream the full verified contents: first the hot region
    /// (delegated to the inner store's export, cursor tagged with LSB
    /// 0), then the cold tier from verified log reads (LSB 1, index
    /// into the sorted cold key list).
    fn export_chunk(
        &mut self,
        cursor: u64,
        max: usize,
    ) -> Result<(Vec<(Vec<u8>, Vec<u8>)>, Option<u64>), StoreError> {
        let cold_start = |cold_empty: bool| if cold_empty { None } else { Some(1u64) };
        if cursor & 1 == 0 {
            let (pairs, next) = self.hot.export_chunk(cursor >> 1, max)?;
            return Ok((
                pairs,
                match next {
                    Some(c) => Some(c << 1),
                    None => cold_start(self.cold.is_empty()),
                },
            ));
        }
        // Cold phase: deterministic order over the (unmutated) cold set.
        let mut keys: Vec<&Vec<u8>> = self.cold.keys().collect();
        keys.sort_unstable();
        let start = (cursor >> 1) as usize;
        let slice: Vec<Vec<u8>> = keys.into_iter().skip(start).take(max).cloned().collect();
        let mut out = Vec::with_capacity(slice.len());
        for key in slice {
            let meta = *self.cold.get(&key).expect("key just listed");
            let (kind, k, v, seqno) = self.log.read(meta.ptr).map_err(runtime_log_err)?;
            if kind != RecordKind::Put || k != key || seqno != meta.seqno {
                return Err(StoreError::Integrity(crate::Violation::EntryMacMismatch));
            }
            out.push((k, v));
        }
        let consumed = start + out.len();
        let next =
            if consumed < self.cold.len() { Some(((consumed as u64) << 1) | 1) } else { None };
        Ok((out, next))
    }

    fn flush(&mut self) -> Result<(), StoreError> {
        // The covering fsync of an open group-commit window. A no-op
        // when nothing is pending (per-append sync, or durability off)
        // — every drained batch calls this, so the fast path must stay
        // free.
        if self.log.pending_sync_bytes() > 0 {
            self.log.sync().map_err(runtime_log_err)?;
        }
        Ok(())
    }

    fn maintain(&mut self) -> Result<MaintenanceReport, StoreError> {
        let migrated = self.migrate()?;
        let (segments_compacted, records_rewritten) = self.compact()?;
        let mut checkpointed = false;
        if self.opts.checkpoint_every > 0
            && self.mutations_since_checkpoint >= self.opts.checkpoint_every
        {
            self.force_checkpoint()?;
            checkpointed = true;
        }
        Ok(MaintenanceReport { migrated, segments_compacted, records_rewritten, checkpointed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AriaHash, StoreConfig, Violation};
    use aria_cache::CacheConfig;
    use aria_sim::{CostModel, Enclave};

    const MASTER: &[u8; 16] = b"tiered-test-mast";

    fn hot_store() -> AriaHash {
        let mut cfg = StoreConfig::for_keys(4096);
        cfg.cache = CacheConfig::with_capacity(8 << 20);
        cfg.master_key = *MASTER;
        AriaHash::new(cfg, Arc::new(Enclave::new(CostModel::default(), 512 << 20))).unwrap()
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "aria-tiered-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn opts(dir: &std::path::Path) -> TieredOptions {
        TieredOptions::new(dir.to_path_buf()).segment_bytes(8192).hot_budget_bytes(4 << 10)
    }

    fn key(i: u64) -> Vec<u8> {
        format!("tier-key-{i:05}").into_bytes()
    }

    #[test]
    fn group_commit_crash_loses_only_unacked_suffix() {
        let dir = tmpdir("gc-crash");
        // Big window, no automatic checkpoints (a checkpoint past the
        // crash cut would make recovery refuse for the wrong reason).
        let o = TieredOptions::new(dir.clone())
            .checkpoint_every(0)
            .sync_writes(true)
            .sync_window_bytes(1 << 20);
        let mut s = TieredStore::open(hot_store(), MASTER, o.clone()).unwrap();
        for i in 0..20 {
            s.put(&key(i), &value(i)).unwrap();
        }
        // The worker-level ack boundary: covering fsync via flush().
        s.flush().unwrap();
        let (seg, durable) = s.log_frontier();
        // Unacked writes inside the next window.
        for i in 20..30 {
            s.put(&key(i), &value(i)).unwrap();
        }
        drop(s);
        // Crash: everything past the last fsync is gone.
        aria_log::crash_cut(&dir, seg, durable).unwrap();
        let mut s = TieredStore::open(hot_store(), MASTER, o).unwrap();
        assert_eq!(s.len(), 20, "exactly the acked writes survive");
        for i in 0..20 {
            assert_eq!(s.get(&key(i)).unwrap().unwrap(), value(i));
        }
        for i in 20..30 {
            assert_eq!(s.get(&key(i)).unwrap(), None, "unacked write must vanish cleanly");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn value(i: u64) -> Vec<u8> {
        format!("tier-value-{i:05}-{}", "x".repeat(32)).into_bytes()
    }

    #[test]
    fn put_get_delete_with_tiering() {
        let dir = tmpdir("basic");
        let mut s = TieredStore::open(hot_store(), MASTER, opts(&dir)).unwrap();
        for i in 0..100 {
            s.put(&key(i), &value(i)).unwrap();
        }
        assert_eq!(s.len(), 100);
        // Force migration: budget is 4 KiB, 100 entries * ~60 B ≈ 6 KiB.
        let report = s.maintain().unwrap();
        assert!(report.migrated > 0, "over-budget hot region must migrate");
        let stats = s.tier_stats();
        assert!(stats.cold_entries > 0);
        assert!(stats.hot_bytes <= 4 << 10);
        // Every key still reads correctly (cold ones promote back).
        for i in 0..100 {
            assert_eq!(s.get(&key(i)).unwrap().unwrap(), value(i), "key {i}");
        }
        // Deletes work across tiers.
        assert!(s.delete(&key(7)).unwrap());
        assert!(!s.delete(&key(7)).unwrap());
        assert_eq!(s.get(&key(7)).unwrap(), None);
        assert_eq!(s.len(), 99);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn skewed_access_keeps_working_set_hot() {
        let dir = tmpdir("skew");
        let mut s = TieredStore::open(hot_store(), MASTER, opts(&dir)).unwrap();
        for i in 0..200 {
            s.put(&key(i), &value(i)).unwrap();
        }
        // Touch a small working set, then migrate.
        for _ in 0..5 {
            for i in 0..20 {
                s.get(&key(i)).unwrap();
            }
        }
        s.maintain().unwrap();
        // The recently-touched keys must have survived in the hot region.
        let stats = s.tier_stats();
        assert!(stats.cold_entries > 0);
        for i in 0..20 {
            assert!(s.hot_meta.contains_key(&key(i)), "hot key {i} was evicted before cold keys");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_reclaims_dead_segments() {
        let dir = tmpdir("compact");
        let mut o = opts(&dir);
        o.compact_min_dead_ratio = 0.5;
        let mut s = TieredStore::open(hot_store(), MASTER, o).unwrap();
        // Overwrite the same keys repeatedly: most records die.
        for round in 0..20 {
            for i in 0..20 {
                s.put(&key(i), &value(round * 100 + i)).unwrap();
            }
        }
        let before = s.tier_stats();
        assert!(before.segments > 1);
        let mut compacted = 0;
        for _ in 0..20 {
            let r = s.maintain().unwrap();
            compacted += r.segments_compacted;
        }
        assert!(compacted > 0, "mostly-dead segments must compact");
        let after = s.tier_stats();
        assert!(after.log_bytes < before.log_bytes, "compaction must reclaim bytes");
        // Data intact.
        for i in 0..20 {
            assert_eq!(s.get(&key(i)).unwrap().unwrap(), value(1900 + i));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_recovers_with_root_match() {
        let dir = tmpdir("restart");
        let mut s = TieredStore::open(hot_store(), MASTER, opts(&dir)).unwrap();
        for i in 0..50 {
            s.put(&key(i), &value(i)).unwrap();
        }
        s.delete(&key(3)).unwrap();
        let cp = s.force_checkpoint().unwrap();
        assert_eq!(cp.epoch, 1);
        drop(s);

        let mut s = TieredStore::open(hot_store(), MASTER, opts(&dir).min_epoch(1)).unwrap();
        assert_eq!(s.len(), 49);
        assert_eq!(s.checkpoint_epoch(), 1);
        for i in 0..50 {
            if i == 3 {
                assert_eq!(s.get(&key(i)).unwrap(), None);
            } else {
                assert_eq!(s.get(&key(i)).unwrap().unwrap(), value(i), "key {i}");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn writes_after_checkpoint_survive_restart() {
        let dir = tmpdir("after-cp");
        let mut s = TieredStore::open(hot_store(), MASTER, opts(&dir)).unwrap();
        for i in 0..30 {
            s.put(&key(i), &value(i)).unwrap();
        }
        s.force_checkpoint().unwrap();
        for i in 30..60 {
            s.put(&key(i), &value(i)).unwrap();
        }
        s.delete(&key(0)).unwrap();
        drop(s);
        // Records past the checkpoint frontier replay on top of the
        // verified prefix.
        let mut s = TieredStore::open(hot_store(), MASTER, opts(&dir).min_epoch(1)).unwrap();
        assert_eq!(s.len(), 59);
        assert_eq!(s.get(&key(0)).unwrap(), None);
        assert_eq!(s.get(&key(45)).unwrap().unwrap(), value(45));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_log_refused_at_open() {
        let dir = tmpdir("tamper");
        let mut s = TieredStore::open(hot_store(), MASTER, opts(&dir)).unwrap();
        for i in 0..30 {
            s.put(&key(i), &value(i)).unwrap();
        }
        s.force_checkpoint().unwrap();
        drop(s);
        // Flip a byte mid-log.
        let len = aria_log::segment_file_len(&dir, 0).unwrap();
        aria_log::flip_byte(&dir, 0, len / 2, 0x08).unwrap();
        let err = TieredStore::open(hot_store(), MASTER, opts(&dir).min_epoch(1))
            .expect_err("tampered log must refuse");
        assert!(
            matches!(
                err,
                StoreError::RecoveryDiverged {
                    reason: RecoveryFailure::LogCorrupt { .. }
                        | RecoveryFailure::LogTampered { .. }
                }
            ),
            "got {err:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rollback_refused_at_open() {
        let dir = tmpdir("rollback");
        let mut s = TieredStore::open(hot_store(), MASTER, opts(&dir)).unwrap();
        for i in 0..20 {
            s.put(&key(i), &value(i)).unwrap();
        }
        s.force_checkpoint().unwrap(); // epoch 1
        drop(s);
        // Snapshot the epoch-1 state, run forward to epoch 2, then
        // restore the stale snapshot — a host replaying old state.
        let snap = tmpdir("rollback-snap");
        std::fs::create_dir_all(&snap).unwrap();
        for entry in std::fs::read_dir(&dir).unwrap() {
            let entry = entry.unwrap();
            std::fs::copy(entry.path(), snap.join(entry.file_name())).unwrap();
        }
        let mut s = TieredStore::open(hot_store(), MASTER, opts(&dir).min_epoch(1)).unwrap();
        for i in 20..40 {
            s.put(&key(i), &value(i)).unwrap();
        }
        s.force_checkpoint().unwrap(); // epoch 2
        drop(s);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::rename(&snap, &dir).unwrap();
        // The stale state is internally consistent — only the epoch
        // floor catches it.
        TieredStore::open(hot_store(), MASTER, opts(&dir).min_epoch(1))
            .expect("stale state passes without a floor");
        let err = TieredStore::open(hot_store(), MASTER, opts(&dir).min_epoch(2))
            .expect_err("rollback below the floor must refuse");
        assert!(
            matches!(
                err,
                StoreError::RecoveryDiverged {
                    reason: RecoveryFailure::Rollback { checkpoint_epoch: 1, min_epoch: 2 }
                }
            ),
            "got {err:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_checkpoint_with_floor_refused() {
        let dir = tmpdir("missing-cp");
        let mut s = TieredStore::open(hot_store(), MASTER, opts(&dir)).unwrap();
        s.put(&key(1), &value(1)).unwrap();
        s.force_checkpoint().unwrap();
        drop(s);
        std::fs::remove_file(dir.join("CHECKPOINT")).unwrap();
        let err = TieredStore::open(hot_store(), MASTER, opts(&dir).min_epoch(1))
            .expect_err("deleted checkpoint with a floor must refuse");
        assert!(matches!(
            err,
            StoreError::RecoveryDiverged {
                reason: RecoveryFailure::Rollback { checkpoint_epoch: 0, min_epoch: 1 }
            }
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_recovers_to_checkpoint_state() {
        let dir = tmpdir("torn");
        let mut s = TieredStore::open(hot_store(), MASTER, opts(&dir)).unwrap();
        for i in 0..25 {
            s.put(&key(i), &value(i)).unwrap();
        }
        s.force_checkpoint().unwrap();
        let frontier = s.log_frontier();
        s.put(&key(99), &value(99)).unwrap();
        drop(s);
        // Cut inside the post-checkpoint record: the unacked tail is
        // torn away, the checkpointed prefix verifies.
        aria_log::crash_cut(&dir, frontier.0, frontier.1 + 10).unwrap();
        let mut s = TieredStore::open(hot_store(), MASTER, opts(&dir).min_epoch(1)).unwrap();
        assert_eq!(s.len(), 25);
        assert_eq!(s.get(&key(99)).unwrap(), None);
        assert_eq!(s.get(&key(10)).unwrap().unwrap(), value(10));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cut_below_checkpoint_frontier_refused() {
        let dir = tmpdir("cut-deep");
        let mut s = TieredStore::open(hot_store(), MASTER, opts(&dir)).unwrap();
        for i in 0..25 {
            s.put(&key(i), &value(i)).unwrap();
        }
        s.force_checkpoint().unwrap();
        let (seg, off) = s.log_frontier();
        drop(s);
        // Cut *below* the checkpoint frontier: acknowledged-and-attested
        // state is missing, the root cannot match.
        aria_log::crash_cut(&dir, seg, off / 2).unwrap();
        let err = TieredStore::open(hot_store(), MASTER, opts(&dir).min_epoch(1))
            .expect_err("state loss below the checkpoint must refuse");
        assert!(
            matches!(err, StoreError::RecoveryDiverged { reason: RecoveryFailure::RootMismatch }),
            "got {err:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_preserves_checkpoint_root() {
        let dir = tmpdir("compact-root");
        let mut o = opts(&dir);
        o.compact_min_dead_ratio = 0.3;
        let mut s = TieredStore::open(hot_store(), MASTER, o.clone()).unwrap();
        for round in 0..10 {
            for i in 0..20 {
                s.put(&key(i), &value(round * 100 + i)).unwrap();
            }
        }
        s.force_checkpoint().unwrap();
        // Compact after the checkpoint: rewrites move records to new
        // segments but preserve seqnos, so the checkpoint still
        // verifies.
        for _ in 0..20 {
            s.maintain().unwrap();
        }
        drop(s);
        let mut s = TieredStore::open(hot_store(), MASTER, o.min_epoch(1)).unwrap();
        assert_eq!(s.len(), 20);
        for i in 0..20 {
            assert_eq!(s.get(&key(i)).unwrap().unwrap(), value(900 + i));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn export_chunk_covers_both_tiers() {
        let dir = tmpdir("export");
        let mut s =
            TieredStore::open(hot_store(), MASTER, opts(&dir).hot_budget_bytes(1 << 10)).unwrap();
        for i in 0..60 {
            s.put(&key(i), &value(i)).unwrap();
        }
        s.maintain().unwrap(); // push some keys cold
        assert!(s.tier_stats().cold_entries > 0);
        let (pairs, root) = crate::resync::content_root_of(&mut s).unwrap();
        assert_eq!(pairs.len(), 60);
        assert_eq!(root.pairs, 60);
        // Root equals the flat-pairs root over the same contents.
        let expect: Vec<(Vec<u8>, Vec<u8>)> = (0..60).map(|i| (key(i), value(i))).collect();
        assert_eq!(crate::resync::content_root(&expect), root);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn runtime_cold_tamper_is_integrity_violation_and_recover_contains() {
        let dir = tmpdir("cold-tamper");
        let mut s = TieredStore::open(hot_store(), MASTER, opts(&dir)).unwrap();
        for i in 0..80 {
            s.put(&key(i), &value(i)).unwrap();
        }
        s.maintain().unwrap();
        let cold_key = {
            let mut cold: Vec<&Vec<u8>> = s.cold.keys().collect();
            cold.sort_unstable();
            cold.first().expect("some cold key").to_vec()
        };
        let ptr = s.cold[&cold_key].ptr;
        // Host flips a byte inside the cold record's sealed payload.
        aria_log::flip_byte(&dir, ptr.segment, ptr.offset + 30, 0x04).unwrap();
        let err = s.get(&cold_key).unwrap_err();
        assert!(err.is_integrity_violation());
        assert!(err.is_quarantine_trigger());
        // Recovery sweeps the cold tier, destroys the damaged record,
        // and the key fails closed afterwards.
        let report = s.recover().unwrap();
        assert_eq!(report.entries_destroyed, 1);
        assert!(report.entries_verified > 0);
        assert_eq!(s.get(&cold_key).unwrap_err(), StoreError::Integrity(Violation::DataDestroyed));
        // Other keys unaffected.
        let stats = s.tier_stats();
        assert_eq!(stats.hot_entries + stats.cold_entries, 79);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_after_overwrites_past_checkpoint_recovers() {
        // The bricking sequence: checkpoint (root includes k=v_old),
        // then overwrite/delete k (v_old's record goes dead), then
        // compact away the segment holding v_old. v_old is dead *now*
        // but is still the checkpoint-frontier winner for k — dropping
        // it without refreshing the checkpoint makes the next open()
        // refuse with RootMismatch on a perfectly normal workload.
        let dir = tmpdir("compact-winner");
        let mut o = opts(&dir);
        o.compact_min_dead_ratio = 0.3;
        let mut s = TieredStore::open(hot_store(), MASTER, o.clone()).unwrap();
        for i in 0..40 {
            s.put(&key(i), &value(i)).unwrap();
        }
        s.force_checkpoint().unwrap();
        // Kill the checkpointed records: overwrites and deletes, with
        // enough churn to rotate past several segments.
        for round in 1..4 {
            for i in 0..30 {
                s.put(&key(i), &value(round * 1000 + i)).unwrap();
            }
        }
        for i in 30..35 {
            s.delete(&key(i)).unwrap();
        }
        // Compact until the segments holding the checkpoint winners are
        // gone (maintain: migrate → compact → checkpoint).
        let mut compacted = 0;
        for _ in 0..30 {
            compacted += s.maintain().unwrap().segments_compacted;
        }
        assert!(compacted > 0, "dead-heavy segments must compact");
        let min_epoch = s.checkpoint_epoch();
        assert!(min_epoch > 1, "compaction must have refreshed the checkpoint");
        drop(s);

        let mut s = TieredStore::open(hot_store(), MASTER, o.min_epoch(min_epoch))
            .expect("a normal workload plus compaction must stay recoverable");
        assert_eq!(s.len(), 35);
        for i in 0..30 {
            assert_eq!(s.get(&key(i)).unwrap().unwrap(), value(3000 + i), "key {i}");
        }
        for i in 30..35 {
            assert_eq!(s.get(&key(i)).unwrap(), None, "deleted key {i}");
        }
        for i in 35..40 {
            assert_eq!(s.get(&key(i)).unwrap().unwrap(), value(i), "key {i}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn same_master_different_dirs_use_distinct_keystreams() {
        // Two shards of one ShardedStore share the master secret and
        // both stamp their first record with seqno 1. The per-log
        // LOGID nonce must still give them distinct sealing keys —
        // identical (key, counter) pairs across logs would let the
        // host XOR ciphertexts into plaintext XOR.
        let dir_a = tmpdir("keystream-a");
        let dir_b = tmpdir("keystream-b");
        let mut a = TieredStore::open(hot_store(), MASTER, opts(&dir_a)).unwrap();
        let mut b = TieredStore::open(hot_store(), MASTER, opts(&dir_b)).unwrap();
        a.put(b"same-key", b"same-value-payload").unwrap();
        b.put(b"same-key", b"same-value-payload").unwrap();
        let seg_a = std::fs::read(aria_log::segment_path(&dir_a, 0)).unwrap();
        let seg_b = std::fs::read(aria_log::segment_path(&dir_b, 0)).unwrap();
        assert_eq!(seg_a.len(), seg_b.len());
        assert_ne!(seg_a, seg_b, "identical plaintext+seqno must seal differently per log");
        // And within one log, reopening is stable.
        drop(a);
        let mut a = TieredStore::open(hot_store(), MASTER, opts(&dir_a)).unwrap();
        assert_eq!(a.get(b"same-key").unwrap().unwrap(), b"same-value-payload");
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn tampered_log_nonce_refused_at_open() {
        let dir = tmpdir("nonce-tamper");
        let mut s = TieredStore::open(hot_store(), MASTER, opts(&dir)).unwrap();
        s.put(&key(1), &value(1)).unwrap();
        s.force_checkpoint().unwrap();
        drop(s);
        // Host swaps the nonce: the derived key changes and nothing
        // sealed under the old key verifies any more.
        let path = dir.join("LOGID");
        let mut buf = std::fs::read(&path).unwrap();
        buf[7] ^= 0x5a;
        std::fs::write(&path, &buf).unwrap();
        let err = TieredStore::open(hot_store(), MASTER, opts(&dir).min_epoch(1))
            .expect_err("a swapped nonce must refuse, not decrypt garbage");
        assert!(matches!(err, StoreError::RecoveryDiverged { .. }), "got {err:?}");
        // Deleting the nonce outright is detected as metadata loss.
        std::fs::remove_file(&path).unwrap();
        let err = TieredStore::open(hot_store(), MASTER, opts(&dir).min_epoch(1))
            .expect_err("a deleted nonce must refuse");
        assert!(
            matches!(
                err,
                StoreError::RecoveryDiverged {
                    reason: RecoveryFailure::MetaCorrupt { file: "LOGID" }
                }
            ),
            "got {err:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unlogged_hot_put_rolls_back_and_checkpoint_stays_reproducible() {
        let dir = tmpdir("rollback-put");
        let mut s = TieredStore::open(hot_store(), MASTER, opts(&dir)).unwrap();
        s.put(&key(1), &value(1)).unwrap();
        // Simulate put()'s append-failure path: the inner store took
        // the new value, the log never did, and the rollback must
        // leave no unlogged pair for force_checkpoint to digest.
        s.hot.put(&key(1), &value(999)).unwrap();
        s.rollback_hot_put(&key(1));
        assert_eq!(s.get(&key(1)).unwrap().unwrap(), value(1), "old value must survive");
        // A brand-new key: rollback erases it entirely.
        s.hot.put(&key(2), &value(2)).unwrap();
        s.rollback_hot_put(&key(2));
        assert_eq!(s.get(&key(2)).unwrap(), None);
        assert_eq!(s.len(), 1);
        s.force_checkpoint().unwrap();
        drop(s);
        let mut s = TieredStore::open(hot_store(), MASTER, opts(&dir).min_epoch(1))
            .expect("checkpoint sealed after rollback must replay");
        assert_eq!(s.get(&key(1)).unwrap().unwrap(), value(1));
        assert_eq!(s.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn first_boot_without_checkpoint_is_accepted() {
        let dir = tmpdir("first-boot");
        let s = TieredStore::open(hot_store(), MASTER, opts(&dir)).unwrap();
        assert_eq!(s.len(), 0);
        assert_eq!(s.checkpoint_epoch(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
