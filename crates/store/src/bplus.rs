//! Aria-T+: a B+-tree index — the extension the paper defers to future
//! work (§VII: "Aria can also support B+-tree-based index by encrypting
//! key and value respectively").
//!
//! Differences from the classic B-tree of [`crate::AriaTree`]:
//!
//! * **All KV entries live in leaves**, kept in key order, and leaves are
//!   chained — a range scan descends once and then streams sideways.
//! * **Inner nodes hold sealed routing keys**: standalone encrypted
//!   copies of separator keys, each with its own counter and a MAC bound
//!   to the containing node's incoming pointer. Routing a lookup
//!   decrypts only these short keys — never whole KV entries — which is
//!   exactly the "encrypt key and value respectively" benefit the paper
//!   anticipates.
//! * Routing keys are owned by the tree: created at leaf splits, retired
//!   at merges; they stay valid bounds even after the original KV entry
//!   is updated or deleted (B+ separators need not be live keys).
//!
//! Index-connection protection mirrors Aria-T: every sealed object (KV
//! entry in a leaf, routing key in an inner node) binds via its MAC
//! AdField to the parent pointer of its containing node; the root binds
//! to the in-EPC anchor. Structural attacks (child-pointer swaps across
//! parents, node truncation) are detected as in the B-tree.

use aria_mem::UPtr;
use aria_sim::Enclave;
use std::sync::Arc;

use crate::btree::KvPair;
use crate::config::StoreConfig;
use crate::core::StoreCore;
use crate::counter::CounterStore;
use crate::entry::{self, EntryHeader};
use crate::error::{StoreError, Violation};
use crate::{CacheStats, KvStore, RecoveryReport};

/// AdField anchor for the root node's contents.
const AD_ROOT_TAG: u64 = (1 << 63) | (1 << 61);

fn ad_of_parent(parent: Option<UPtr>) -> u64 {
    match parent {
        None => AD_ROOT_TAG,
        Some(p) => {
            let v = u64::from_le_bytes(p.to_bytes());
            debug_assert_eq!(v & AD_ROOT_TAG & !(1 << 63), 0);
            v
        }
    }
}

/// In-enclave working copy of one untrusted node block.
#[derive(Debug, Clone)]
struct Node {
    leaf: bool,
    /// Leaf: sealed KV-entry pointers, key-ordered.
    /// Inner: sealed routing-key pointers, key-ordered.
    slots: Vec<UPtr>,
    /// Child pointers (`slots.len() + 1` when inner).
    children: Vec<UPtr>,
    /// Right sibling (leaves only).
    next: UPtr,
}

impl Node {
    fn new_leaf() -> Node {
        Node { leaf: true, slots: Vec::new(), children: Vec::new(), next: UPtr::NULL }
    }

    fn serialized_len(order: usize) -> usize {
        8 + order * 8 + (order + 1) * 8 + 8
    }

    fn to_bytes(&self, order: usize) -> Vec<u8> {
        debug_assert!(self.slots.len() <= order);
        let mut out = vec![0u8; Self::serialized_len(order)];
        out[0] = self.leaf as u8;
        out[1..3].copy_from_slice(&(self.slots.len() as u16).to_le_bytes());
        let mut off = 8;
        for s in &self.slots {
            out[off..off + 8].copy_from_slice(&s.to_bytes());
            off += 8;
        }
        let mut off = 8 + order * 8;
        for c in &self.children {
            out[off..off + 8].copy_from_slice(&c.to_bytes());
            off += 8;
        }
        let off = 8 + order * 8 + (order + 1) * 8;
        out[off..off + 8].copy_from_slice(&self.next.to_bytes());
        out
    }

    fn from_bytes(bytes: &[u8], order: usize) -> Option<Node> {
        if bytes.len() < Self::serialized_len(order) {
            return None;
        }
        let leaf = bytes[0] != 0;
        let count = u16::from_le_bytes(bytes[1..3].try_into().unwrap()) as usize;
        if count > order {
            return None;
        }
        let mut slots = Vec::with_capacity(count);
        for i in 0..count {
            let off = 8 + i * 8;
            slots.push(UPtr::from_bytes(&bytes[off..off + 8].try_into().unwrap()));
        }
        let mut children = Vec::new();
        if !leaf {
            for i in 0..=count {
                let off = 8 + order * 8 + i * 8;
                children.push(UPtr::from_bytes(&bytes[off..off + 8].try_into().unwrap()));
            }
        }
        let off = 8 + order * 8 + (order + 1) * 8;
        let next = UPtr::from_bytes(&bytes[off..off + 8].try_into().unwrap());
        Some(Node { leaf, slots, children, next })
    }
}

/// The B+-tree-indexed Aria store (Aria-T+).
pub struct AriaBPlusTree {
    core: StoreCore,
    /// Root pointer, in the EPC.
    root: UPtr,
    /// Trusted height (deletion-detection metadata).
    height: u32,
    /// Max slots per node (odd).
    order: usize,
}

impl AriaBPlusTree {
    /// Build a store charging costs and EPC to `enclave`.
    pub fn new(cfg: StoreConfig, enclave: Arc<Enclave>) -> Result<Self, StoreError> {
        Self::with_suite(cfg, enclave, None)
    }

    /// As [`AriaBPlusTree::new`] with an explicit cipher suite.
    pub fn with_suite(
        cfg: StoreConfig,
        enclave: Arc<Enclave>,
        suite: Option<Arc<dyn aria_crypto::CipherSuite>>,
    ) -> Result<Self, StoreError> {
        let mut order = cfg.btree_order.max(3);
        if order.is_multiple_of(2) {
            order -= 1;
        }
        enclave.epc_alloc(16).map_err(|_| StoreError::EpcExhausted)?;
        let core = StoreCore::new(cfg, enclave, suite)?;
        Ok(AriaBPlusTree { core, root: UPtr::NULL, height: 0, order })
    }

    fn min_slots(&self) -> usize {
        self.order / 2
    }

    fn node_len(&self) -> usize {
        Node::serialized_len(self.order)
    }

    fn read_node(&self, ptr: UPtr) -> Result<Node, StoreError> {
        let bytes = self.core.heap.read(ptr, self.node_len())?;
        Node::from_bytes(bytes, self.order)
            .ok_or(StoreError::Integrity(Violation::EntryMacMismatch))
    }

    fn write_node(&mut self, ptr: UPtr, node: &Node) -> Result<(), StoreError> {
        let bytes = node.to_bytes(self.order);
        self.core.heap.write(ptr, &bytes)?;
        Ok(())
    }

    fn alloc_node(&mut self, node: &Node) -> Result<UPtr, StoreError> {
        let bytes = node.to_bytes(self.order);
        let ptr = self.core.heap.alloc(bytes.len())?;
        self.core.heap.write(ptr, &bytes)?;
        Ok(ptr)
    }

    // --- sealed-object helpers ---------------------------------------------

    fn open_entry(
        &mut self,
        ptr: UPtr,
        ad: u64,
    ) -> Result<(Vec<u8>, Vec<u8>, EntryHeader), StoreError> {
        let header = self.core.read_header(ptr)?;
        let sealed = self.core.read_sealed(ptr, &header)?;
        let (k, v) = self.core.open_checked(&sealed, &header, ad)?;
        Ok((k, v, header))
    }

    /// Read only the key of an entry (leaf ordering comparisons).
    fn entry_key(&mut self, ptr: UPtr, ad: u64) -> Result<Vec<u8>, StoreError> {
        let (k, _v, _h) = self.open_entry(ptr, ad)?;
        Ok(k)
    }

    fn rebind_entry(&mut self, ptr: UPtr, new_ad: u64) -> Result<(), StoreError> {
        let header = self.core.read_header(ptr)?;
        self.core.reseal_ad_field(ptr, &header, new_ad)
    }

    /// Seal a routing key copy of `key`, owning a fresh counter.
    fn make_routing(&mut self, key: &[u8], ad: u64) -> Result<UPtr, StoreError> {
        let redptr = self.core.counters.fetch()?;
        let counter = self.core.counters.bump(redptr)?;
        self.core.enclave.charge_crypt(key.len());
        self.core.enclave.charge_mac(entry::routing_len(key.len()));
        let sealed = entry::seal_routing(self.core.suite.as_ref(), redptr, key, &counter, ad);
        let ptr = self.core.heap.alloc(sealed.len())?;
        self.core.heap.write(ptr, &sealed)?;
        Ok(ptr)
    }

    /// Verify + decrypt a routing key.
    fn open_routing(&mut self, ptr: UPtr, ad: u64) -> Result<Vec<u8>, StoreError> {
        let head = self.core.heap.read(ptr, entry::ROUTING_HEADER_LEN)?.to_vec();
        let header = entry::parse_routing_header(&head)
            .ok_or(StoreError::Integrity(Violation::EntryMacMismatch))?;
        let sealed = self.core.heap.read(ptr, header.total_len())?.to_vec();
        self.core.enclave.access_epc(sealed.len());
        let counter = self.core.counters.get(header.redptr)?;
        self.core.enclave.charge_mac(sealed.len());
        self.core.enclave.charge_crypt(header.klen);
        entry::open_routing(self.core.suite.as_ref(), &sealed, &counter, ad)
            .ok_or(StoreError::Integrity(Violation::EntryMacMismatch))
    }

    fn rebind_routing(&mut self, ptr: UPtr, new_ad: u64) -> Result<(), StoreError> {
        let head = self.core.heap.read(ptr, entry::ROUTING_HEADER_LEN)?.to_vec();
        let header = entry::parse_routing_header(&head)
            .ok_or(StoreError::Integrity(Violation::EntryMacMismatch))?;
        let mut sealed = self.core.heap.read(ptr, header.total_len())?.to_vec();
        let counter = self.core.counters.get(header.redptr)?;
        self.core.enclave.charge_mac(sealed.len());
        entry::reseal_routing_ad_field(self.core.suite.as_ref(), &mut sealed, &counter, new_ad);
        self.core.heap.write(ptr, &sealed)?;
        Ok(())
    }

    /// Retire a routing key (free its counter and block).
    fn free_routing(&mut self, ptr: UPtr) -> Result<(), StoreError> {
        let head = self.core.heap.read(ptr, entry::ROUTING_HEADER_LEN)?.to_vec();
        let header = entry::parse_routing_header(&head)
            .ok_or(StoreError::Integrity(Violation::EntryMacMismatch))?;
        self.core.retire_counter(header.redptr)?;
        self.core.heap.free(ptr)?;
        Ok(())
    }

    /// Re-bind every slot of `node` (entries or routing keys) to `new_ad`.
    fn rebind_node_contents(&mut self, node: &Node, new_ad: u64) -> Result<(), StoreError> {
        for &s in &node.slots {
            if node.leaf {
                self.rebind_entry(s, new_ad)?;
            } else {
                self.rebind_routing(s, new_ad)?;
            }
        }
        Ok(())
    }

    // --- search helpers -------------------------------------------------------

    /// Child index to descend into at an inner node: first routing key
    /// strictly greater than `key` (keys equal to a separator live right).
    fn route(&mut self, node: &Node, node_ad: u64, key: &[u8]) -> Result<usize, StoreError> {
        for (i, &rptr) in node.slots.iter().enumerate() {
            let rk = self.open_routing(rptr, node_ad)?;
            if key < rk.as_slice() {
                return Ok(i);
            }
        }
        Ok(node.slots.len())
    }

    /// Position of `key` in a leaf: `Ok(i)` exact, `Err(i)` insert point.
    fn leaf_position(
        &mut self,
        node: &Node,
        node_ad: u64,
        key: &[u8],
    ) -> Result<Result<usize, usize>, StoreError> {
        for (i, &eptr) in node.slots.iter().enumerate() {
            let k = self.entry_key(eptr, node_ad)?;
            match key.cmp(&k[..]) {
                std::cmp::Ordering::Equal => return Ok(Ok(i)),
                std::cmp::Ordering::Less => return Ok(Err(i)),
                std::cmp::Ordering::Greater => {}
            }
        }
        Ok(Err(node.slots.len()))
    }

    // --- insertion ---------------------------------------------------------------

    /// Split the full child `ci` of the inner node at `parent_ptr`.
    fn split_child(
        &mut self,
        parent_ptr: UPtr,
        parent: &mut Node,
        parent_ad: u64,
        ci: usize,
    ) -> Result<(), StoreError> {
        let child_ptr = parent.children[ci];
        let mut child = self.read_node(child_ptr)?;
        let child_ad = ad_of_parent(Some(parent_ptr));
        if child.leaf {
            // Leaf split: upper half to a new right leaf; separator is a
            // fresh routing copy of the right leaf's first key.
            let mid = self.order.div_ceil(2);
            let right = Node {
                leaf: true,
                slots: child.slots.split_off(mid),
                children: Vec::new(),
                next: child.next,
            };
            let sep_key = self.entry_key(right.slots[0], child_ad)?;
            let right_ptr = self.alloc_node(&right)?;
            child.next = right_ptr;
            self.write_node(child_ptr, &child)?;
            // Entries moved right keep their binding (same parent).
            let sep = self.make_routing(&sep_key, parent_ad)?;
            parent.slots.insert(ci, sep);
            parent.children.insert(ci + 1, right_ptr);
            self.write_node(parent_ptr, parent)?;
        } else {
            // Inner split: median routing key moves up.
            let mid = self.order / 2;
            let right = Node {
                leaf: false,
                slots: child.slots.split_off(mid + 1),
                children: child.children.split_off(mid + 1),
                next: UPtr::NULL,
            };
            let median = child.slots.pop().expect("full inner node");
            let right_ptr = self.alloc_node(&right)?;
            self.write_node(child_ptr, &child)?;
            // Children moved to the right sibling have a new parent.
            for &gc in &right.children {
                let g = self.read_node(gc)?;
                self.rebind_node_contents(&g, ad_of_parent(Some(right_ptr)))?;
            }
            self.rebind_routing(median, parent_ad)?;
            parent.slots.insert(ci, median);
            parent.children.insert(ci + 1, right_ptr);
            self.write_node(parent_ptr, parent)?;
        }
        Ok(())
    }

    fn insert_nonfull(
        &mut self,
        node_ptr: UPtr,
        parent: Option<UPtr>,
        key: &[u8],
        value: &[u8],
    ) -> Result<bool, StoreError> {
        let mut node = self.read_node(node_ptr)?;
        let node_ad = ad_of_parent(parent);
        if node.leaf {
            match self.leaf_position(&node, node_ad, key)? {
                Ok(i) => {
                    // Update in place (or relocate on size change).
                    let old_ptr = node.slots[i];
                    let header = self.core.read_header(old_ptr)?;
                    let counter = self.core.counters.bump(header.redptr)?;
                    let new_len = entry::sealed_len(key.len(), value.len());
                    if aria_mem::UserHeap::same_block_class(new_len, header.total_len()) {
                        self.core.seal_in_place(
                            old_ptr,
                            UPtr::NULL,
                            header.redptr,
                            key,
                            value,
                            &counter,
                            node_ad,
                        )?;
                    } else {
                        let new_ptr = self.core.seal_new(
                            UPtr::NULL,
                            header.redptr,
                            key,
                            value,
                            &counter,
                            node_ad,
                        )?;
                        node.slots[i] = new_ptr;
                        self.write_node(node_ptr, &node)?;
                        self.core.heap.free(old_ptr)?;
                    }
                    Ok(false)
                }
                Err(i) => {
                    let redptr = self.core.counters.fetch()?;
                    let counter = self.core.counters.bump(redptr)?;
                    let eptr =
                        self.core.seal_new(UPtr::NULL, redptr, key, value, &counter, node_ad)?;
                    node.slots.insert(i, eptr);
                    self.write_node(node_ptr, &node)?;
                    Ok(true)
                }
            }
        } else {
            let mut ci = self.route(&node, node_ad, key)?;
            let child = self.read_node(node.children[ci])?;
            if child.slots.len() == self.order {
                self.split_child(node_ptr, &mut node, node_ad, ci)?;
                // Re-route against the newly inserted separator.
                let sep = self.open_routing(node.slots[ci], node_ad)?;
                if key >= sep.as_slice() {
                    ci += 1;
                }
            }
            self.insert_nonfull(node.children[ci], Some(node_ptr), key, value)
        }
    }

    // --- deletion -----------------------------------------------------------------

    /// Ensure `parent.children[ci]` has more than the minimum number of
    /// slots before descending; returns the (possibly shifted) index.
    fn fill_child(
        &mut self,
        parent_ptr: UPtr,
        parent: &mut Node,
        parent_ad: u64,
        ci: usize,
    ) -> Result<usize, StoreError> {
        let child_ad = ad_of_parent(Some(parent_ptr));
        let child_ptr = parent.children[ci];
        let mut child = self.read_node(child_ptr)?;
        if child.slots.len() > self.min_slots() {
            return Ok(ci);
        }
        // Borrow from the left sibling.
        if ci > 0 {
            let left_ptr = parent.children[ci - 1];
            let mut left = self.read_node(left_ptr)?;
            if left.slots.len() > self.min_slots() {
                if child.leaf {
                    // Move left's last entry; the separator becomes a
                    // routing copy of the moved key.
                    let moved = left.slots.pop().expect("non-empty");
                    let moved_key = self.entry_key(moved, child_ad)?;
                    child.slots.insert(0, moved);
                    let old_sep = parent.slots[ci - 1];
                    let new_sep = self.make_routing(&moved_key, parent_ad)?;
                    parent.slots[ci - 1] = new_sep;
                    self.free_routing(old_sep)?;
                } else {
                    // Rotate: separator moves down, left's last routing up.
                    let sep = parent.slots[ci - 1];
                    let from_left = left.slots.pop().expect("non-empty");
                    self.rebind_routing(sep, child_ad)?;
                    child.slots.insert(0, sep);
                    self.rebind_routing(from_left, parent_ad)?;
                    parent.slots[ci - 1] = from_left;
                    let moved_child = left.children.pop().expect("inner");
                    child.children.insert(0, moved_child);
                    let g = self.read_node(moved_child)?;
                    self.rebind_node_contents(&g, ad_of_parent(Some(child_ptr)))?;
                }
                self.write_node(left_ptr, &left)?;
                self.write_node(child_ptr, &child)?;
                self.write_node(parent_ptr, parent)?;
                return Ok(ci);
            }
        }
        // Borrow from the right sibling.
        if ci + 1 < parent.children.len() {
            let right_ptr = parent.children[ci + 1];
            let mut right = self.read_node(right_ptr)?;
            if right.slots.len() > self.min_slots() {
                if child.leaf {
                    let moved = right.slots.remove(0);
                    child.slots.push(moved);
                    // New separator: right's new first key.
                    let new_first = self.entry_key(right.slots[0], child_ad)?;
                    let old_sep = parent.slots[ci];
                    let new_sep = self.make_routing(&new_first, parent_ad)?;
                    parent.slots[ci] = new_sep;
                    self.free_routing(old_sep)?;
                } else {
                    let sep = parent.slots[ci];
                    let from_right = right.slots.remove(0);
                    self.rebind_routing(sep, child_ad)?;
                    child.slots.push(sep);
                    self.rebind_routing(from_right, parent_ad)?;
                    parent.slots[ci] = from_right;
                    let moved_child = right.children.remove(0);
                    child.children.push(moved_child);
                    let g = self.read_node(moved_child)?;
                    self.rebind_node_contents(&g, ad_of_parent(Some(child_ptr)))?;
                }
                self.write_node(right_ptr, &right)?;
                self.write_node(child_ptr, &child)?;
                self.write_node(parent_ptr, parent)?;
                return Ok(ci);
            }
        }
        // Merge with a sibling.
        let li = if ci + 1 < parent.children.len() { ci } else { ci - 1 };
        let left_ptr = parent.children[li];
        let right_ptr = parent.children[li + 1];
        let mut left = self.read_node(left_ptr)?;
        let right = self.read_node(right_ptr)?;
        let sep = parent.slots.remove(li);
        parent.children.remove(li + 1);
        if left.leaf {
            // Leaf merge: separator is discarded (leaves hold the keys).
            left.slots.extend_from_slice(&right.slots);
            left.next = right.next;
            self.free_routing(sep)?;
        } else {
            // Inner merge: separator moves down between the halves.
            self.rebind_routing(sep, ad_of_parent(Some(parent_ptr)))?;
            left.slots.push(sep);
            left.slots.extend_from_slice(&right.slots);
            for &gc in &right.children {
                let g = self.read_node(gc)?;
                self.rebind_node_contents(&g, ad_of_parent(Some(left_ptr)))?;
            }
            left.children.extend_from_slice(&right.children);
        }
        self.write_node(left_ptr, &left)?;
        self.write_node(parent_ptr, parent)?;
        self.core.heap.free(right_ptr)?;
        Ok(li)
    }

    fn delete_from(
        &mut self,
        node_ptr: UPtr,
        parent: Option<UPtr>,
        key: &[u8],
    ) -> Result<bool, StoreError> {
        let mut node = self.read_node(node_ptr)?;
        let node_ad = ad_of_parent(parent);
        if node.leaf {
            match self.leaf_position(&node, node_ad, key)? {
                Ok(i) => {
                    let victim = node.slots.remove(i);
                    self.write_node(node_ptr, &node)?;
                    let header = self.core.read_header(victim)?;
                    self.core.retire_counter(header.redptr)?;
                    self.core.heap.free(victim)?;
                    self.core.len -= 1;
                    Ok(true)
                }
                Err(_) => Ok(false),
            }
        } else {
            let ci = self.route(&node, node_ad, key)?;
            let ci = self.fill_child(node_ptr, &mut node, node_ad, ci)?;
            // fill_child may have restructured; re-read and re-route.
            let node = self.read_node(node_ptr)?;
            let ci2 = self.route(&node, node_ad, key)?;
            let ci = if ci2 < node.children.len() { ci2 } else { ci.min(node.children.len() - 1) };
            self.delete_from(node.children[ci], Some(node_ptr), key)
        }
    }

    fn shrink_root(&mut self) -> Result<(), StoreError> {
        if self.root.is_null() {
            return Ok(());
        }
        let root = self.read_node(self.root)?;
        if root.leaf {
            if root.slots.is_empty() {
                self.core.heap.free(self.root)?;
                self.root = UPtr::NULL;
                self.height = 0;
            }
        } else if root.slots.is_empty() {
            let new_root = root.children[0];
            self.core.heap.free(self.root)?;
            self.root = new_root;
            self.height -= 1;
            let node = self.read_node(new_root)?;
            self.rebind_node_contents(&node, AD_ROOT_TAG)?;
        }
        Ok(())
    }

    // --- public extras ---------------------------------------------------------

    /// Trusted height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The store's core (diagnostics).
    pub fn core(&self) -> &StoreCore {
        &self.core
    }

    /// Mutable core access.
    pub fn core_mut(&mut self) -> &mut StoreCore {
        &mut self.core
    }

    /// Range scan `lo <= key < hi` in key order: one descent plus a
    /// sideways walk over the chained leaves.
    pub fn range(&mut self, lo: &[u8], hi: &[u8]) -> Result<Vec<KvPair>, StoreError> {
        let mut out = Vec::new();
        if self.root.is_null() || lo >= hi {
            return Ok(out);
        }
        self.core.enclave.charge(self.core.enclave.cost().request_fixed);
        // Descend to the leaf containing lo.
        let mut ptr = self.root;
        let mut parent = None;
        loop {
            let node = self.read_node(ptr)?;
            if node.leaf {
                break;
            }
            let node_ad = ad_of_parent(parent);
            let ci = self.route(&node, node_ad, lo)?;
            parent = Some(ptr);
            ptr = node.children[ci];
        }
        // Stream sideways. Leaf contents all bind to the same AdField
        // value only when leaves share a parent; recompute per leaf by
        // tracking each leaf's parent is impossible sideways — instead we
        // exploit that leaf entries bind to *their* parent, and the walk
        // revalidates each entry against the leaf's recorded parent by
        // re-descending when the binding fails. To keep the scan O(range)
        // we simply try the last known binding first and fall back to a
        // fresh descent on mismatch.
        let mut leaf_ad = ad_of_parent(parent);
        'leaves: loop {
            let node = self.read_node(ptr)?;
            for &eptr in &node.slots {
                let (k, v) = match self.open_entry(eptr, leaf_ad) {
                    Ok((k, v, _h)) => (k, v),
                    Err(e) => {
                        // Binding changed (next leaf has a different
                        // parent): re-descend to this leaf to learn it.
                        if let Some(new_ad) = self.find_leaf_binding(ptr)? {
                            leaf_ad = new_ad;
                            let (k, v, _h) = self.open_entry(eptr, leaf_ad)?;
                            (k, v)
                        } else {
                            return Err(e);
                        }
                    }
                };
                if k.as_slice() >= hi {
                    break 'leaves;
                }
                if k.as_slice() >= lo {
                    out.push((k, v));
                }
            }
            if node.next.is_null() {
                break;
            }
            ptr = node.next;
        }
        Ok(out)
    }

    /// Find the AdField binding of a leaf by locating its parent (BFS from
    /// the root over inner nodes).
    fn find_leaf_binding(&mut self, leaf: UPtr) -> Result<Option<u64>, StoreError> {
        if self.root == leaf {
            return Ok(Some(AD_ROOT_TAG));
        }
        let mut queue = vec![self.root];
        while let Some(ptr) = queue.pop() {
            if ptr.is_null() {
                continue;
            }
            let node = self.read_node(ptr)?;
            if node.leaf {
                continue;
            }
            for &c in &node.children {
                if c == leaf {
                    return Ok(Some(ad_of_parent(Some(ptr))));
                }
                queue.push(c);
            }
        }
        Ok(None)
    }

    /// In-order keys (test oracle).
    pub fn keys_in_order(&mut self) -> Result<Vec<Vec<u8>>, StoreError> {
        Ok(self
            .range(&[], &[0xff; entry::MAX_KEY_LEN + 1][..entry::MAX_KEY_LEN])?
            .into_iter()
            .map(|(k, _)| k)
            .collect())
    }

    /// Attack: swap the first child pointers of two distinct inner nodes.
    pub fn attack_swap_child_pointers(&mut self) -> bool {
        let mut inner_nodes = Vec::new();
        let mut queue = vec![self.root];
        while let Some(ptr) = queue.pop() {
            if ptr.is_null() {
                continue;
            }
            let Ok(bytes) = self.core.heap.read(ptr, self.node_len()) else { continue };
            let Some(node) = Node::from_bytes(bytes, self.order) else { continue };
            if !node.leaf {
                inner_nodes.push((ptr, node.clone()));
                queue.extend(node.children.iter().copied());
            }
        }
        if inner_nodes.len() < 2 {
            return false;
        }
        let (p1, mut n1) = inner_nodes[0].clone();
        let (p2, mut n2) = inner_nodes[1].clone();
        std::mem::swap(&mut n1.children[0], &mut n2.children[0]);
        let b1 = n1.to_bytes(self.order);
        let b2 = n2.to_bytes(self.order);
        let ok1 = self.core.heap.raw_mut(p1, b1.len()).map(|d| d.copy_from_slice(&b1)).is_ok();
        let ok2 = self.core.heap.raw_mut(p2, b2.len()).map(|d| d.copy_from_slice(&b2)).is_ok();
        ok1 && ok2
    }
}

impl KvStore for AriaBPlusTree {
    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.core.enclave.charge(self.core.enclave.cost().request_fixed);
        if self.root.is_null() {
            let redptr = self.core.counters.fetch()?;
            let counter = self.core.counters.bump(redptr)?;
            let eptr = self.core.seal_new(UPtr::NULL, redptr, key, value, &counter, AD_ROOT_TAG)?;
            let mut node = Node::new_leaf();
            node.slots.push(eptr);
            self.root = self.alloc_node(&node)?;
            self.height = 1;
            self.core.len = 1;
            return Ok(());
        }
        let root = self.read_node(self.root)?;
        if root.slots.len() == self.order {
            let old_root_ptr = self.root;
            let mut new_root = Node {
                leaf: false,
                slots: Vec::new(),
                children: vec![old_root_ptr],
                next: UPtr::NULL,
            };
            let new_root_ptr = self.alloc_node(&new_root)?;
            self.rebind_node_contents(&root, ad_of_parent(Some(new_root_ptr)))?;
            self.split_child(new_root_ptr, &mut new_root, AD_ROOT_TAG, 0)?;
            self.root = new_root_ptr;
            self.height += 1;
        }
        let inserted = self.insert_nonfull(self.root, None, key, value)?;
        if inserted {
            self.core.len += 1;
        }
        Ok(())
    }

    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        self.core.enclave.charge(self.core.enclave.cost().request_fixed);
        if self.root.is_null() {
            return Ok(None);
        }
        let mut ptr = self.root;
        let mut parent = None;
        let mut depth = 0u32;
        loop {
            depth += 1;
            let node = self.read_node(ptr)?;
            if node.slots.is_empty() {
                return Err(StoreError::Integrity(Violation::UnauthorizedDeletion));
            }
            let node_ad = ad_of_parent(parent);
            if node.leaf {
                // Hint-guided scan: only candidates are decrypted.
                let hint = entry::key_hint(key);
                for &eptr in &node.slots {
                    let header = self.core.read_header(eptr)?;
                    if header.hint != hint {
                        continue;
                    }
                    let sealed = self.core.read_sealed(eptr, &header)?;
                    let (k, v) = self.core.open_checked(&sealed, &header, node_ad)?;
                    if k == key {
                        return Ok(Some(v));
                    }
                }
                self.core.enclave.access_epc(4);
                if depth != self.height {
                    return Err(StoreError::Integrity(Violation::UnauthorizedDeletion));
                }
                return Ok(None);
            }
            let ci = self.route(&node, node_ad, key)?;
            parent = Some(ptr);
            ptr = node.children[ci];
        }
    }

    fn delete(&mut self, key: &[u8]) -> Result<bool, StoreError> {
        self.core.enclave.charge(self.core.enclave.cost().request_fixed);
        if self.root.is_null() {
            return Ok(false);
        }
        let deleted = self.delete_from(self.root, None, key)?;
        self.shrink_root()?;
        Ok(deleted)
    }

    fn len(&self) -> u64 {
        self.core.len
    }

    fn enclave(&self) -> &Arc<Enclave> {
        &self.core.enclave
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        self.core.counters.as_cached().map(|c| {
            let s = c.cache_stats();
            CacheStats {
                hits: s.hits,
                misses: s.misses,
                swaps: s.evictions,
                swapping: c.swapping(),
            }
        })
    }

    /// Verify-and-re-admit recovery (B+-tree variant): rebuild the
    /// counter layer and allocator free lists, then stream the full leaf
    /// chain decrypting every entry. Surviving corruption surfaces as
    /// `Err` — the shard stays out of service rather than serving bytes
    /// it cannot vouch for.
    fn recover(&mut self) -> Result<RecoveryReport, StoreError> {
        let was_active = self.core.heap.faults_active();
        self.core.heap.suspend_faults(true);
        let mut report = self.core.counters.recover();
        self.core.heap.rebuild_freelists();
        let verified = self.keys_in_order().map(|keys| keys.len() as u64);
        self.core.heap.suspend_faults(!was_active);
        report.entries_verified = verified?;
        Ok(report)
    }
}
