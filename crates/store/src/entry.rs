//! Sealed KV-entry codec (paper §V, Figure 8).
//!
//! An entry occupies one untrusted heap block with this layout:
//!
//! ```text
//! +--------+---------+--------+------+------+----------------+---------+
//! | next 8 | RedPtr 8| hint 4 |klen 2|vlen 2| enc(key‖value) | MAC 16  |
//! +--------+---------+--------+------+------+----------------+---------+
//! ```
//!
//! * `next` is index **connection** data (a successor pointer for the hash
//!   chain); it is *not* covered by the entry MAC — connections are
//!   protected by the *additional field* (AdField) scheme instead: each
//!   entry's MAC covers the identity of the pointer cell that points at
//!   it, so swapping two pointers breaks both victims' MACs (§V-C).
//! * `RedPtr` is the redirection pointer: the id of the entry's
//!   encryption counter in the counter area.
//! * `hint` is a hash of the plaintext key, used to skip non-matching
//!   chain entries without decrypting them (§V-C).
//! * key and value are concatenated and CTR-encrypted under the entry's
//!   counter.
//! * the MAC covers `RedPtr ‖ hint ‖ klen ‖ vlen ‖ ciphertext ‖ counter ‖
//!   AdField`.

use aria_crypto::CipherSuite;
use aria_mem::UPtr;

/// Fixed header length preceding the ciphertext.
pub const HEADER_LEN: usize = 24;

/// Trailing MAC length.
pub const MAC_LEN: usize = 16;

/// Maximum key length (lengths are encoded in 16 bits; the evaluation
/// uses 16-byte keys throughout).
pub const MAX_KEY_LEN: usize = 1024;

/// Maximum value length.
pub const MAX_VALUE_LEN: usize = 32 * 1024;

/// Parsed entry header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryHeader {
    /// Successor pointer (hash chain) or child/meta pointer (tree).
    pub next: UPtr,
    /// Counter id in the redirection layer.
    pub redptr: u64,
    /// Plaintext-key hint.
    pub hint: u32,
    /// Key length in bytes.
    pub klen: usize,
    /// Value length in bytes.
    pub vlen: usize,
}

impl EntryHeader {
    /// Total sealed-entry length for this header.
    pub fn total_len(&self) -> usize {
        HEADER_LEN + self.klen + self.vlen + MAC_LEN
    }
}

/// Total sealed length for a key/value pair.
pub fn sealed_len(klen: usize, vlen: usize) -> usize {
    HEADER_LEN + klen + vlen + MAC_LEN
}

/// 4-byte hint of a plaintext key (FNV-1a folded).
pub fn key_hint(key: &[u8]) -> u32 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash ^ (hash >> 32)) as u32
}

fn mac_input<'a>(body: &'a [u8], counter: &'a [u8; 16], ad_field: &'a [u8; 8]) -> [&'a [u8]; 3] {
    // `body` is the MAC'd prefix of the sealed bytes: redptr..ciphertext.
    [body, counter, ad_field]
}

/// Build the sealed bytes for an entry.
pub fn seal_entry(
    suite: &dyn CipherSuite,
    next: UPtr,
    redptr: u64,
    key: &[u8],
    value: &[u8],
    counter: &[u8; 16],
    ad_field: u64,
) -> Vec<u8> {
    debug_assert!(key.len() <= MAX_KEY_LEN && value.len() <= MAX_VALUE_LEN);
    let mut out = Vec::with_capacity(sealed_len(key.len(), value.len()));
    out.extend_from_slice(&next.to_bytes());
    out.extend_from_slice(&redptr.to_le_bytes());
    out.extend_from_slice(&key_hint(key).to_le_bytes());
    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
    out.extend_from_slice(&(value.len() as u16).to_le_bytes());
    let payload_start = out.len();
    out.extend_from_slice(key);
    out.extend_from_slice(value);
    suite.crypt(counter, &mut out[payload_start..]);
    let ad = ad_field.to_le_bytes();
    let mac = suite.mac_parts(&mac_input(&out[8..], counter, &ad));
    out.extend_from_slice(&mac);
    out
}

/// Parse the fixed header from sealed bytes.
pub fn parse_header(bytes: &[u8]) -> Option<EntryHeader> {
    if bytes.len() < HEADER_LEN {
        return None;
    }
    let next = UPtr::from_bytes(&bytes[0..8].try_into().unwrap());
    let redptr = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let hint = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
    let klen = u16::from_le_bytes(bytes[20..22].try_into().unwrap()) as usize;
    let vlen = u16::from_le_bytes(bytes[22..24].try_into().unwrap()) as usize;
    Some(EntryHeader { next, redptr, hint, klen, vlen })
}

/// Overwrite the `next` pointer in place (connection update; the MAC does
/// not cover `next` by design).
pub fn write_next(bytes: &mut [u8], next: UPtr) {
    bytes[0..8].copy_from_slice(&next.to_bytes());
}

/// Verify the MAC of sealed bytes under the given counter and AdField.
pub fn verify_entry(
    suite: &dyn CipherSuite,
    bytes: &[u8],
    counter: &[u8; 16],
    ad_field: u64,
) -> bool {
    let Some(header) = parse_header(bytes) else { return false };
    let total = header.total_len();
    if bytes.len() < total {
        return false;
    }
    let mac_off = total - MAC_LEN;
    let ad = ad_field.to_le_bytes();
    let expect = suite.mac_parts(&mac_input(&bytes[8..mac_off], counter, &ad));
    expect == bytes[mac_off..total]
}

/// Verify and decrypt an entry, returning `(key, value)`.
pub fn open_entry(
    suite: &dyn CipherSuite,
    bytes: &[u8],
    counter: &[u8; 16],
    ad_field: u64,
) -> Option<(Vec<u8>, Vec<u8>)> {
    if !verify_entry(suite, bytes, counter, ad_field) {
        return None;
    }
    let header = parse_header(bytes)?;
    let mut payload = bytes[HEADER_LEN..HEADER_LEN + header.klen + header.vlen].to_vec();
    suite.crypt(counter, &mut payload);
    let value = payload.split_off(header.klen);
    Some((payload, value))
}

/// Recompute the MAC in place for a new AdField (used when an entry's
/// incoming pointer cell changes, e.g. after deleting its predecessor).
/// The ciphertext and counter are unchanged.
pub fn reseal_ad_field(
    suite: &dyn CipherSuite,
    bytes: &mut [u8],
    counter: &[u8; 16],
    new_ad_field: u64,
) {
    let header = parse_header(bytes).expect("valid entry");
    let mac_off = header.total_len() - MAC_LEN;
    let ad = new_ad_field.to_le_bytes();
    let mac = suite.mac_parts(&mac_input(&bytes[8..mac_off], counter, &ad));
    bytes[mac_off..mac_off + MAC_LEN].copy_from_slice(&mac);
}

// --- routing keys (B+-tree extension, paper §VII "future work") --------

/// Sealed routing-key layout (B+-tree inner-node separators):
///
/// ```text
/// +---------+--------+-------+------------+--------+
/// | RedPtr 8| klen 2 | pad 6 | enc(key)   | MAC 16 |
/// +---------+--------+-------+------------+--------+
/// ```
///
/// A routing key owns its counter (so it survives updates/deletions of
/// the KV entry it was copied from) and its MAC binds it to the pointer
/// of the node that contains it, like any entry.
pub const ROUTING_HEADER_LEN: usize = 16;

/// Total sealed length of a routing key.
pub fn routing_len(klen: usize) -> usize {
    ROUTING_HEADER_LEN + klen + MAC_LEN
}

/// Seal a routing key.
pub fn seal_routing(
    suite: &dyn CipherSuite,
    redptr: u64,
    key: &[u8],
    counter: &[u8; 16],
    ad_field: u64,
) -> Vec<u8> {
    debug_assert!(key.len() <= MAX_KEY_LEN);
    let mut out = Vec::with_capacity(routing_len(key.len()));
    out.extend_from_slice(&redptr.to_le_bytes());
    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
    out.extend_from_slice(&[0u8; 6]);
    let start = out.len();
    out.extend_from_slice(key);
    suite.crypt(counter, &mut out[start..]);
    let ad = ad_field.to_le_bytes();
    let mac = suite.mac_parts(&[&out[..], counter, &ad]);
    out.extend_from_slice(&mac);
    out
}

/// Parsed routing-key header.
#[derive(Debug, Clone, Copy)]
pub struct RoutingHeader {
    /// Counter id owned by this routing key.
    pub redptr: u64,
    /// Plaintext key length.
    pub klen: usize,
}

impl RoutingHeader {
    /// Total sealed length.
    pub fn total_len(&self) -> usize {
        routing_len(self.klen)
    }
}

/// Parse a routing-key header.
pub fn parse_routing_header(bytes: &[u8]) -> Option<RoutingHeader> {
    if bytes.len() < ROUTING_HEADER_LEN {
        return None;
    }
    Some(RoutingHeader {
        redptr: u64::from_le_bytes(bytes[0..8].try_into().unwrap()),
        klen: u16::from_le_bytes(bytes[8..10].try_into().unwrap()) as usize,
    })
}

/// Verify + decrypt a routing key.
pub fn open_routing(
    suite: &dyn CipherSuite,
    bytes: &[u8],
    counter: &[u8; 16],
    ad_field: u64,
) -> Option<Vec<u8>> {
    let header = parse_routing_header(bytes)?;
    let total = header.total_len();
    if bytes.len() < total {
        return None;
    }
    let mac_off = total - MAC_LEN;
    let ad = ad_field.to_le_bytes();
    let expect = suite.mac_parts(&[&bytes[..mac_off], counter, &ad]);
    if expect != bytes[mac_off..total] {
        return None;
    }
    let mut key = bytes[ROUTING_HEADER_LEN..ROUTING_HEADER_LEN + header.klen].to_vec();
    suite.crypt(counter, &mut key);
    Some(key)
}

/// Recompute a routing key's MAC for a new AdField in place.
pub fn reseal_routing_ad_field(
    suite: &dyn CipherSuite,
    bytes: &mut [u8],
    counter: &[u8; 16],
    new_ad_field: u64,
) {
    let header = parse_routing_header(bytes).expect("valid routing key");
    let mac_off = header.total_len() - MAC_LEN;
    let ad = new_ad_field.to_le_bytes();
    let mac = suite.mac_parts(&[&bytes[..mac_off], counter, &ad]);
    bytes[mac_off..mac_off + MAC_LEN].copy_from_slice(&mac);
}

#[cfg(test)]
mod tests {
    use super::*;
    use aria_crypto::RealSuite;

    fn suite() -> RealSuite {
        RealSuite::from_master(&[1u8; 16])
    }

    #[test]
    fn seal_open_roundtrip() {
        let s = suite();
        let ctr = [5u8; 16];
        let sealed = seal_entry(&s, UPtr::NULL, 42, b"key-0123456789ab", b"hello", &ctr, 7);
        assert_eq!(sealed.len(), sealed_len(16, 5));
        let (k, v) = open_entry(&s, &sealed, &ctr, 7).expect("verifies");
        assert_eq!(k, b"key-0123456789ab");
        assert_eq!(v, b"hello");
    }

    #[test]
    fn header_fields_roundtrip() {
        let s = suite();
        let ctr = [9u8; 16];
        let sealed = seal_entry(&s, UPtr::NULL, 1234, b"kk", b"vvv", &ctr, 0);
        let h = parse_header(&sealed).unwrap();
        assert_eq!(h.redptr, 1234);
        assert_eq!(h.klen, 2);
        assert_eq!(h.vlen, 3);
        assert_eq!(h.hint, key_hint(b"kk"));
        assert!(h.next.is_null());
    }

    #[test]
    fn payload_is_actually_encrypted() {
        let s = suite();
        let sealed =
            seal_entry(&s, UPtr::NULL, 0, b"plaintextkey!!!!", b"secretvalue", &[3u8; 16], 0);
        let hay = &sealed[HEADER_LEN..];
        assert!(!hay.windows(11).any(|w| w == b"secretvalue"), "value leaked in plaintext");
        assert!(!hay.windows(12).any(|w| w == b"plaintextkey"), "key leaked in plaintext");
    }

    #[test]
    fn wrong_counter_rejected() {
        let s = suite();
        let sealed = seal_entry(&s, UPtr::NULL, 0, b"k", b"v", &[1u8; 16], 0);
        assert!(open_entry(&s, &sealed, &[2u8; 16], 0).is_none());
    }

    #[test]
    fn wrong_ad_field_rejected() {
        // This is exactly the pointer-swap detection: an entry reached via
        // a different pointer cell fails its MAC.
        let s = suite();
        let sealed = seal_entry(&s, UPtr::NULL, 0, b"k", b"v", &[1u8; 16], 1000);
        assert!(open_entry(&s, &sealed, &[1u8; 16], 1000).is_some());
        assert!(open_entry(&s, &sealed, &[1u8; 16], 1001).is_none());
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let s = suite();
        let ctr = [1u8; 16];
        let mut sealed = seal_entry(&s, UPtr::NULL, 0, b"key", b"value", &ctr, 0);
        sealed[HEADER_LEN + 1] ^= 0x01;
        assert!(open_entry(&s, &sealed, &ctr, 0).is_none());
    }

    #[test]
    fn tampered_lengths_rejected() {
        let s = suite();
        let ctr = [1u8; 16];
        let mut sealed = seal_entry(&s, UPtr::NULL, 0, b"key", b"value", &ctr, 0);
        sealed[20] = 2; // shrink klen
        assert!(!verify_entry(&s, &sealed, &ctr, 0));
    }

    #[test]
    fn next_pointer_update_does_not_break_mac() {
        let s = suite();
        let ctr = [1u8; 16];
        let mut sealed = seal_entry(&s, UPtr::NULL, 0, b"key", b"value", &ctr, 0);
        write_next(&mut sealed, UPtr::NULL);
        assert!(verify_entry(&s, &sealed, &ctr, 0));
    }

    #[test]
    fn reseal_ad_field_moves_entry() {
        let s = suite();
        let ctr = [1u8; 16];
        let mut sealed = seal_entry(&s, UPtr::NULL, 0, b"key", b"value", &ctr, 10);
        reseal_ad_field(&s, &mut sealed, &ctr, 20);
        assert!(!verify_entry(&s, &sealed, &ctr, 10));
        let (k, v) = open_entry(&s, &sealed, &ctr, 20).unwrap();
        assert_eq!((k.as_slice(), v.as_slice()), (b"key".as_slice(), b"value".as_slice()));
    }

    #[test]
    fn routing_key_roundtrip_and_tamper() {
        let s = suite();
        let ctr = [4u8; 16];
        let mut sealed = seal_routing(&s, 77, b"separator-key-01", &ctr, 9);
        assert_eq!(open_routing(&s, &sealed, &ctr, 9).unwrap(), b"separator-key-01");
        // Wrong AdField (pointer swap) rejected.
        assert!(open_routing(&s, &sealed, &ctr, 10).is_none());
        // Tamper rejected.
        sealed[ROUTING_HEADER_LEN] ^= 1;
        assert!(open_routing(&s, &sealed, &ctr, 9).is_none());
    }

    #[test]
    fn routing_key_reseal_moves_binding() {
        let s = suite();
        let ctr = [4u8; 16];
        let mut sealed = seal_routing(&s, 0, b"kk", &ctr, 1);
        reseal_routing_ad_field(&s, &mut sealed, &ctr, 2);
        assert!(open_routing(&s, &sealed, &ctr, 1).is_none());
        assert_eq!(open_routing(&s, &sealed, &ctr, 2).unwrap(), b"kk");
    }

    #[test]
    fn routing_key_is_encrypted() {
        let s = suite();
        let sealed = seal_routing(&s, 0, b"plaintext-needle", &[7u8; 16], 0);
        assert!(!sealed.windows(16).any(|w| w == b"plaintext-needle"));
    }

    #[test]
    fn replayed_old_entry_with_new_counter_rejected() {
        // Counter bump on re-encryption invalidates old (entry, MAC) pairs.
        let s = suite();
        let mut ctr = [0u8; 16];
        let old = seal_entry(&s, UPtr::NULL, 0, b"key", b"old-value", &ctr, 0);
        aria_crypto::increment_counter(&mut ctr);
        let _new = seal_entry(&s, UPtr::NULL, 0, b"key", b"new-value", &ctr, 0);
        // Attacker replays the old sealed bytes; verification uses the
        // trusted (bumped) counter.
        assert!(open_entry(&s, &old, &ctr, 0).is_none());
    }
}
