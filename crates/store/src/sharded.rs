//! A sharded, thread-safe front-end over any [`KvStore`].
//!
//! [`ShardedStore`] hash-partitions the keyspace across `N` independent
//! shards. Each shard is a complete store instance — its own simulated
//! enclave, counter Merkle tree and Secure Cache — owned by a dedicated
//! worker thread and fed over a bounded MPSC channel. Clients hold only
//! cloneable senders, so a `ShardedStore` is `Send + Sync` and can be
//! shared behind an `Arc` by any number of client threads even though
//! the underlying stores are single-threaded.
//!
//! # Partitioning
//!
//! The shard of a key is chosen by bit-mixing (splitmix64) an FNV-1a
//! digest of the key bytes. The extra mixing step matters: the hash
//! index inside each shard buckets keys by `fnv % 2^k`, so routing on
//! the raw FNV digest would correlate with bucket choice and leave each
//! shard using only `1/N` of its buckets. After mixing, shard routing
//! and bucket choice are independent.
//!
//! # Security
//!
//! Sharding does not weaken the protection argument. Each shard keeps
//! its *own* Merkle root inside its *own* enclave; an adversary who
//! tampers with shard `i`'s untrusted memory is detected by shard `i`'s
//! root exactly as in the single-store design, and no other shard's
//! verification state is involved — there is no cross-shard trust edge
//! to exploit. The router itself is untrusted machinery: it only decides
//! *which* enclave receives a request, and a misrouted request is
//! equivalent to a lookup of an absent key, never an integrity escape.
//!
//! # Batching
//!
//! Requests carry whole op vectors ([`BatchOp`]) and workers drain their
//! queue opportunistically, so per-request fixed costs amortize: runs of
//! `Get`s become one [`KvStore::multi_get`] and runs of `Put`s one
//! [`KvStore::put_batch`], each charging the simulated per-request cost
//! once.
//!
//! # Health and quarantine
//!
//! Every shard carries a health state machine:
//!
//! ```text
//! Healthy ──violation──▶ Quarantined ──▶ Recovering ──▶ Healthy
//!                                            │
//!                                            └──(attempts exhausted)──▶ Dead
//! ```
//!
//! When any reply carries a quarantine-triggering integrity violation
//! (see [`StoreError::is_quarantine_trigger`]) the shard flips to
//! `Quarantined`: new operations routed to it are refused with
//! [`StoreError::ShardQuarantined`] *without touching the worker*, while
//! sibling shards keep serving. A recovery job is queued on the shard's
//! own worker thread; it runs [`KvStore::recover`] (drain the Secure
//! Cache, audit the counter Merkle tree against the enclave root,
//! condemn and reinitialize damaged counters, sweep the index
//! re-verifying every entry MAC) up to [`RECOVERY_ATTEMPTS`] times.
//! Success re-admits the shard; exhausting the attempts marks it `Dead`
//! (refused with [`StoreError::ShardUnavailable`], like a crashed
//! worker). [`ShardedStore::healths`] exposes the per-shard state.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Instant;

use aria_sim::{EnclaveSnapshot, EnclaveStats};
use aria_telemetry::{OpKind as TeleOpKind, ShardTelemetry, SlowOp, SlowOpTracer};

use crate::{CacheStats, KvStore, StoreError};

/// Default bound of each shard's request queue.
pub const DEFAULT_QUEUE_DEPTH: usize = 64;

/// How many queued requests a worker drains per wakeup.
const WORKER_DRAIN_LIMIT: usize = 32;

/// How many times a quarantined shard retries [`KvStore::recover`]
/// before it is declared [`ShardHealth::Dead`].
pub const RECOVERY_ATTEMPTS: u32 = 3;

/// Lifecycle state of one shard (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ShardHealth {
    /// Serving normally.
    Healthy = 0,
    /// An integrity violation was detected; recovery is queued. Ops are
    /// refused with [`StoreError::ShardQuarantined`].
    Quarantined = 1,
    /// Recovery is running on the shard's worker thread. Ops are still
    /// refused with [`StoreError::ShardQuarantined`].
    Recovering = 2,
    /// Recovery failed (or the worker thread died); the shard is out of
    /// service for good. Ops are refused with
    /// [`StoreError::ShardUnavailable`].
    Dead = 3,
}

impl ShardHealth {
    /// Wire/atomic representation.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Inverse of [`ShardHealth::as_u8`]; unknown values decode as
    /// `Dead` (fail closed).
    pub fn from_u8(v: u8) -> ShardHealth {
        match v {
            0 => ShardHealth::Healthy,
            1 => ShardHealth::Quarantined,
            2 => ShardHealth::Recovering,
            _ => ShardHealth::Dead,
        }
    }
}

impl std::fmt::Display for ShardHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ShardHealth::Healthy => "healthy",
            ShardHealth::Quarantined => "quarantined",
            ShardHealth::Recovering => "recovering",
            ShardHealth::Dead => "dead",
        };
        f.write_str(s)
    }
}

/// A point-in-time copy of one shard's health counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHealthSnapshot {
    /// Current lifecycle state.
    pub health: ShardHealth,
    /// Quarantine-triggering violations observed on this shard.
    pub violations: u64,
    /// Completed quarantine → recovery → re-admission cycles.
    pub recoveries: u64,
}

/// Shared (front-end ↔ recovery job) health record of one shard.
struct ShardState {
    health: AtomicU8,
    violations: AtomicU64,
    recoveries: AtomicU64,
    /// Last key count the shard's worker reported. Monitoring paths read
    /// this instead of asking the worker, so a quarantined (or busy)
    /// shard still contributes its last-known size.
    last_len: AtomicU64,
}

impl ShardState {
    fn new() -> ShardState {
        ShardState {
            health: AtomicU8::new(ShardHealth::Healthy.as_u8()),
            violations: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
            last_len: AtomicU64::new(0),
        }
    }

    fn health(&self) -> ShardHealth {
        ShardHealth::from_u8(self.health.load(Ordering::SeqCst))
    }

    fn snapshot(&self) -> ShardHealthSnapshot {
        ShardHealthSnapshot {
            health: self.health(),
            violations: self.violations.load(Ordering::SeqCst),
            recoveries: self.recoveries.load(Ordering::SeqCst),
        }
    }
}

/// One operation of a [`ShardedStore::run_batch`] request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOp {
    /// Fetch a key.
    Get(Vec<u8>),
    /// Insert or update a key.
    Put(Vec<u8>, Vec<u8>),
    /// Remove a key.
    Delete(Vec<u8>),
}

impl BatchOp {
    /// The key this operation addresses.
    pub fn key(&self) -> &[u8] {
        match self {
            BatchOp::Get(k) | BatchOp::Delete(k) => k,
            BatchOp::Put(k, _) => k,
        }
    }
}

/// The result of one [`BatchOp`], in the same position as its op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchReply {
    /// Result of a [`BatchOp::Get`].
    Get(Result<Option<Vec<u8>>, StoreError>),
    /// Result of a [`BatchOp::Put`].
    Put(Result<(), StoreError>),
    /// Result of a [`BatchOp::Delete`]; `true` if the key existed.
    Delete(Result<bool, StoreError>),
}

impl BatchReply {
    /// The error carried by this reply, if any.
    pub fn error(&self) -> Option<&StoreError> {
        match self {
            BatchReply::Get(Err(e)) | BatchReply::Put(Err(e)) | BatchReply::Delete(Err(e)) => {
                Some(e)
            }
            _ => None,
        }
    }

    /// Whether this reply reports a detected attack.
    pub fn is_integrity_violation(&self) -> bool {
        self.error().is_some_and(StoreError::is_integrity_violation)
    }
}

enum Request<S> {
    Ops { ops: Vec<BatchOp>, reply: Sender<Vec<BatchReply>> },
    Exec(Box<dyn FnOnce(&mut S) + Send>),
}

/// The kind of a [`BatchOp`], kept so a reply of the right shape can be
/// synthesized when a shard worker dies mid-request.
#[derive(Clone, Copy)]
enum OpKind {
    Get,
    Put,
    Delete,
}

impl OpKind {
    fn of(op: &BatchOp) -> OpKind {
        match op {
            BatchOp::Get(_) => OpKind::Get,
            BatchOp::Put(..) => OpKind::Put,
            BatchOp::Delete(_) => OpKind::Delete,
        }
    }

    fn with_err(self, err: StoreError) -> BatchReply {
        match self {
            OpKind::Get => BatchReply::Get(Err(err)),
            OpKind::Put => BatchReply::Put(Err(err)),
            OpKind::Delete => BatchReply::Delete(Err(err)),
        }
    }

    fn unavailable(self, shard: usize) -> BatchReply {
        self.with_err(StoreError::ShardUnavailable { shard })
    }
}

/// A `Send + Sync` front-end multiplexing client threads onto `N`
/// single-threaded store shards (see the module docs).
///
/// ```
/// use std::sync::Arc;
/// use aria_sim::Enclave;
/// use aria_store::{AriaHash, StoreConfig};
/// use aria_store::sharded::ShardedStore;
///
/// let store = ShardedStore::with_shards(4, |shard| {
///     let enclave = Arc::new(Enclave::with_default_epc());
///     AriaHash::new(StoreConfig::for_keys(10_000), enclave)
/// })
/// .unwrap();
///
/// store.put(b"k", b"v").unwrap();
/// assert_eq!(store.get(b"k").unwrap().unwrap(), b"v");
/// assert_eq!(store.len(), 1);
/// let _ = shard_used(&store);
/// # fn shard_used(s: &ShardedStore<AriaHash>) -> usize { s.shard_of(b"k") }
/// ```
pub struct ShardedStore<S: KvStore + Send + 'static> {
    senders: Vec<SyncSender<Request<S>>>,
    workers: Vec<JoinHandle<()>>,
    states: Vec<Arc<ShardState>>,
    tele: Vec<Arc<ShardTelemetry>>,
    slow_ops: Arc<SlowOpTracer>,
}

/// Everything a shard worker needs to report telemetry.
struct WorkerCtx {
    shard: u32,
    tele: Arc<ShardTelemetry>,
    slow_ops: Arc<SlowOpTracer>,
    state: Arc<ShardState>,
}

impl<S: KvStore + Send + 'static> ShardedStore<S> {
    /// Build a store with `shards` worker threads and the default queue
    /// depth. `factory(shard)` runs *inside* each worker thread to build
    /// that shard's store (stores need not be `Send` once running, but
    /// `S` itself must be to move the factory result into place).
    pub fn with_shards<F>(shards: usize, factory: F) -> Result<Self, StoreError>
    where
        F: Fn(usize) -> Result<S, StoreError> + Send + Sync + 'static,
    {
        Self::new(shards, DEFAULT_QUEUE_DEPTH, factory)
    }

    /// Build a store with an explicit per-shard queue bound.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `queue_depth` is zero.
    pub fn new<F>(shards: usize, queue_depth: usize, factory: F) -> Result<Self, StoreError>
    where
        F: Fn(usize) -> Result<S, StoreError> + Send + Sync + 'static,
    {
        assert!(shards > 0, "a sharded store needs at least one shard");
        assert!(queue_depth > 0, "request queues must hold at least one request");
        let factory = Arc::new(factory);
        let slow_ops = Arc::new(SlowOpTracer::default());
        let states: Vec<Arc<ShardState>> =
            (0..shards).map(|_| Arc::new(ShardState::new())).collect();
        let tele: Vec<Arc<ShardTelemetry>> =
            (0..shards).map(|_| Arc::new(ShardTelemetry::default())).collect();
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        let mut readies = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = mpsc::sync_channel(queue_depth);
            let (ready_tx, ready_rx) = mpsc::channel();
            let factory = Arc::clone(&factory);
            let ctx = WorkerCtx {
                shard: shard as u32,
                tele: Arc::clone(&tele[shard]),
                slow_ops: Arc::clone(&slow_ops),
                state: Arc::clone(&states[shard]),
            };
            let handle = thread::Builder::new()
                .name(format!("aria-shard-{shard}"))
                .spawn(move || {
                    let store = match factory(shard) {
                        Ok(store) => {
                            let _ = ready_tx.send(Ok(()));
                            store
                        }
                        Err(e) => {
                            let _ = ready_tx.send(Err(e));
                            return;
                        }
                    };
                    worker_loop(store, rx, ctx);
                })
                .expect("spawn shard worker thread");
            senders.push(tx);
            workers.push(handle);
            readies.push(ready_rx);
        }
        for ready in readies {
            match ready.recv() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    // Tear down whatever did start before reporting.
                    drop(senders);
                    for handle in workers {
                        let _ = handle.join();
                    }
                    return Err(e);
                }
                Err(_) => panic!("shard worker panicked during construction"),
            }
        }
        Ok(ShardedStore { senders, workers, states, tele, slow_ops })
    }

    /// Per-shard telemetry bundles (index = shard). The handles are the
    /// live recorders — a monitoring thread can snapshot them at any
    /// time without touching the workers.
    pub fn telemetry(&self) -> &[Arc<ShardTelemetry>] {
        &self.tele
    }

    /// The slow-op tracer all shard workers record into.
    pub fn slow_ops(&self) -> &Arc<SlowOpTracer> {
        &self.slow_ops
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// The shard serving `key` (stable for the lifetime of the store).
    pub fn shard_of(&self, key: &[u8]) -> usize {
        (splitmix64(fnv1a(key)) % self.senders.len() as u64) as usize
    }

    /// Insert or update a key (blocking).
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        match self.request_one(BatchOp::Put(key.to_vec(), value.to_vec())) {
            BatchReply::Put(r) => r,
            _ => unreachable!("put answered with a non-put reply"),
        }
    }

    /// Fetch a key (blocking).
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        match self.request_one(BatchOp::Get(key.to_vec())) {
            BatchReply::Get(r) => r,
            _ => unreachable!("get answered with a non-get reply"),
        }
    }

    /// Remove a key (blocking); returns whether it existed.
    pub fn delete(&self, key: &[u8]) -> Result<bool, StoreError> {
        match self.request_one(BatchOp::Delete(key.to_vec())) {
            BatchReply::Delete(r) => r,
            _ => unreachable!("delete answered with a non-delete reply"),
        }
    }

    /// Run a batch of operations, partitioned across shards and executed
    /// concurrently. Replies come back in input order. Ops routed to the
    /// same shard keep their relative order; ops on *different* shards
    /// run concurrently, so a batch should not rely on cross-key
    /// ordering (same as issuing them from independent clients).
    /// A worker whose thread has died (e.g. a panic in the underlying
    /// store) never hangs the caller: its ops come back as
    /// [`StoreError::ShardUnavailable`] while other shards answer
    /// normally; quarantined shards answer
    /// [`StoreError::ShardQuarantined`] without being touched.
    pub fn run_batch(&self, ops: Vec<BatchOp>) -> Vec<BatchReply> {
        let shards = self.senders.len();
        let total = ops.len();
        let mut per_shard_ops: Vec<Vec<BatchOp>> = (0..shards).map(|_| Vec::new()).collect();
        let mut per_shard_idx: Vec<Vec<usize>> = (0..shards).map(|_| Vec::new()).collect();
        let mut per_shard_kinds: Vec<Vec<OpKind>> = (0..shards).map(|_| Vec::new()).collect();
        for (i, op) in ops.into_iter().enumerate() {
            let shard = self.shard_of(op.key());
            per_shard_idx[shard].push(i);
            per_shard_kinds[shard].push(OpKind::of(&op));
            per_shard_ops[shard].push(op);
        }
        // Send every shard its slice first so they all work in parallel,
        // then collect.
        let mut out: Vec<Option<BatchReply>> = (0..total).map(|_| None).collect();
        let refuse = |out: &mut Vec<Option<BatchReply>>, shard: usize, err: &StoreError| {
            for (&i, &kind) in per_shard_idx[shard].iter().zip(&per_shard_kinds[shard]) {
                out[i] = Some(kind.with_err(err.clone()));
            }
        };
        let mut pending = Vec::new();
        for (shard, ops) in per_shard_ops.into_iter().enumerate() {
            if ops.is_empty() {
                continue;
            }
            if let Some(err) = self.admission_error(shard) {
                // Quarantined/recovering/dead shards are refused up
                // front, without queueing behind the worker.
                refuse(&mut out, shard, &err);
                continue;
            }
            let (tx, rx) = mpsc::channel();
            if self.senders[shard].send(Request::Ops { ops, reply: tx }).is_err() {
                // Worker gone: the channel hands the request back and we
                // answer for the dead shard instead of panicking.
                self.mark_dead(shard);
                refuse(&mut out, shard, &StoreError::ShardUnavailable { shard });
                continue;
            }
            pending.push((shard, rx));
        }
        for (shard, rx) in pending {
            match rx.recv() {
                Ok(replies) => {
                    debug_assert_eq!(replies.len(), per_shard_idx[shard].len());
                    self.observe_replies(shard, &replies);
                    for (&i, reply) in per_shard_idx[shard].iter().zip(replies) {
                        out[i] = Some(reply);
                    }
                }
                // Worker died after accepting the request (reply sender
                // dropped during unwind) — same typed error, no hang.
                Err(_) => {
                    self.mark_dead(shard);
                    refuse(&mut out, shard, &StoreError::ShardUnavailable { shard });
                }
            }
        }
        out.into_iter().map(|r| r.expect("every op answered")).collect()
    }

    /// Total live keys across all shards. Dead shards contribute
    /// nothing (their worker cannot be asked).
    #[allow(clippy::len_without_is_empty)] // is_empty is defined right below
    pub fn len(&self) -> u64 {
        self.try_map_shards(|s| s.len()).into_iter().flatten().sum()
    }

    /// Sum of every shard's last worker-reported key count. Unlike
    /// [`ShardedStore::len`] this never blocks behind a worker queue and
    /// still counts quarantined, recovering and dead shards (at their
    /// last-known size), so monitoring stays truthful mid-incident.
    pub fn len_estimate(&self) -> u64 {
        self.states.iter().map(|s| s.last_len.load(Ordering::SeqCst)).sum()
    }

    /// Whether every reachable shard is empty.
    pub fn is_empty(&self) -> bool {
        self.try_map_shards(|s| s.is_empty()).into_iter().flatten().all(|e| e)
    }

    /// Per-shard Secure Cache statistics (index = shard). `None` for
    /// stores without a Secure Cache *and* for unreachable shards.
    pub fn cache_stats(&self) -> Vec<Option<CacheStats>> {
        self.try_map_shards(|s| s.cache_stats()).into_iter().map(|s| s.flatten()).collect()
    }

    /// Cache statistics summed across shards (`None` if no shard runs a
    /// Secure Cache). `swapping` is true if *any* shard still swaps.
    pub fn aggregate_cache_stats(&self) -> Option<CacheStats> {
        let mut agg: Option<CacheStats> = None;
        for stats in self.cache_stats().into_iter().flatten() {
            let agg = agg.get_or_insert_with(CacheStats::default);
            agg.hits += stats.hits;
            agg.misses += stats.misses;
            agg.swaps += stats.swaps;
            agg.swapping |= stats.swapping;
        }
        agg
    }

    /// Enclave snapshots of every reachable shard (dead workers are
    /// skipped — monitoring must not panic mid-incident).
    pub fn snapshots(&self) -> Vec<EnclaveSnapshot> {
        self.try_map_shards(|s| s.enclave().snapshot()).into_iter().flatten().collect()
    }

    /// Aggregate enclave statistics across shards. `max_cycles` is the
    /// critical path — the wall clock of the parallel deployment.
    pub fn stats(&self) -> EnclaveStats {
        EnclaveStats::aggregate(self.snapshots())
    }

    /// Run `f` on one shard's store, blocking for the result. This is
    /// the escape hatch for store-specific APIs (attack injection,
    /// memory accounting) that the generic front-end does not mirror.
    ///
    /// # Panics
    ///
    /// Panics if the shard's worker thread has died; unlike the op
    /// paths there is no result shape to carry a typed error in.
    pub fn with_shard<R, F>(&self, shard: usize, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut S) -> R + Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        self.senders[shard]
            .send(Request::Exec(Box::new(move |store: &mut S| {
                let _ = tx.send(f(store));
            })))
            .expect("shard worker disconnected");
        rx.recv().expect("shard worker dropped a reply")
    }

    /// Run the same closure on every shard, collecting per-shard results.
    pub fn map_shards<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(&mut S) -> R + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        // Dispatch to all shards before collecting any reply.
        let receivers: Vec<_> = (0..self.senders.len())
            .map(|shard| {
                let f = Arc::clone(&f);
                let (tx, rx) = mpsc::channel();
                self.senders[shard]
                    .send(Request::Exec(Box::new(move |store: &mut S| {
                        let _ = tx.send(f(store));
                    })))
                    .expect("shard worker disconnected");
                rx
            })
            .collect();
        receivers.into_iter().map(|rx| rx.recv().expect("shard worker dropped a reply")).collect()
    }

    /// [`ShardedStore::map_shards`] that tolerates dead workers: a shard
    /// whose worker is gone yields `None` (and is marked dead) instead
    /// of panicking. Note this *does* wait for quarantined shards — an
    /// in-flight recovery job runs ahead of the closure in queue order.
    fn try_map_shards<R, F>(&self, f: F) -> Vec<Option<R>>
    where
        R: Send + 'static,
        F: Fn(&mut S) -> R + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let receivers: Vec<_> = (0..self.senders.len())
            .map(|shard| {
                let f = Arc::clone(&f);
                let (tx, rx) = mpsc::channel();
                let sent = self.senders[shard]
                    .send(Request::Exec(Box::new(move |store: &mut S| {
                        let _ = tx.send(f(store));
                    })))
                    .is_ok();
                if !sent {
                    self.mark_dead(shard);
                }
                (shard, sent, rx)
            })
            .collect();
        receivers
            .into_iter()
            .map(|(shard, sent, rx)| {
                if !sent {
                    return None;
                }
                match rx.recv() {
                    Ok(r) => Some(r),
                    Err(_) => {
                        self.mark_dead(shard);
                        None
                    }
                }
            })
            .collect()
    }

    fn request_one(&self, op: BatchOp) -> BatchReply {
        let shard = self.shard_of(op.key());
        let kind = OpKind::of(&op);
        if let Some(err) = self.admission_error(shard) {
            return kind.with_err(err);
        }
        let (tx, rx) = mpsc::channel();
        if self.senders[shard].send(Request::Ops { ops: vec![op], reply: tx }).is_err() {
            self.mark_dead(shard);
            return kind.unavailable(shard);
        }
        match rx.recv() {
            Ok(mut replies) => {
                debug_assert_eq!(replies.len(), 1);
                self.observe_replies(shard, &replies);
                replies.pop().expect("one reply per op")
            }
            Err(_) => {
                self.mark_dead(shard);
                kind.unavailable(shard)
            }
        }
    }

    // --- health machinery -------------------------------------------------------

    /// Per-shard health snapshots (index = shard). Reads atomics only —
    /// never blocks on a worker, so it stays accurate mid-quarantine.
    pub fn healths(&self) -> Vec<ShardHealthSnapshot> {
        self.states.iter().map(|s| s.snapshot()).collect()
    }

    /// Current health of one shard.
    pub fn health_of(&self, shard: usize) -> ShardHealth {
        self.states[shard].health()
    }

    /// The error a request routed to `shard` must be refused with right
    /// now, if any.
    fn admission_error(&self, shard: usize) -> Option<StoreError> {
        match self.states[shard].health() {
            ShardHealth::Healthy => None,
            ShardHealth::Quarantined | ShardHealth::Recovering => {
                Some(StoreError::ShardQuarantined { shard })
            }
            ShardHealth::Dead => Some(StoreError::ShardUnavailable { shard }),
        }
    }

    fn mark_dead(&self, shard: usize) {
        let prev = self.states[shard].health.swap(ShardHealth::Dead.as_u8(), Ordering::SeqCst);
        if prev != ShardHealth::Dead.as_u8() {
            self.tele[shard].store.record_health_transition(prev, ShardHealth::Dead.as_u8());
        }
    }

    /// Scan a shard's replies for quarantine-triggering violations and
    /// start a recovery cycle if one is found.
    fn observe_replies(&self, shard: usize, replies: &[BatchReply]) {
        let mut triggers = 0u64;
        for reply in replies {
            if let Some(err) = reply.error() {
                if let StoreError::Integrity(v) = err {
                    self.tele[shard].store.record_violation(v.class());
                }
                if err.is_quarantine_trigger() {
                    triggers += 1;
                }
            }
        }
        if triggers > 0 {
            self.quarantine(shard, triggers);
        }
    }

    /// Flip `shard` to `Quarantined` and queue a recovery job on its
    /// worker. Exactly one caller wins the CAS, so concurrent detections
    /// of the same incident queue exactly one recovery.
    fn quarantine(&self, shard: usize, violations: u64) {
        let state = &self.states[shard];
        state.violations.fetch_add(violations, Ordering::SeqCst);
        if state
            .health
            .compare_exchange(
                ShardHealth::Healthy.as_u8(),
                ShardHealth::Quarantined.as_u8(),
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_err()
        {
            // Already quarantined, recovering, or dead.
            return;
        }
        let tele = Arc::clone(&self.tele[shard]);
        tele.store.record_health_transition(
            ShardHealth::Healthy.as_u8(),
            ShardHealth::Quarantined.as_u8(),
        );
        let state = Arc::clone(state);
        let recovery = Request::Exec(Box::new(move |store: &mut S| {
            state.health.store(ShardHealth::Recovering.as_u8(), Ordering::SeqCst);
            tele.store.record_health_transition(
                ShardHealth::Quarantined.as_u8(),
                ShardHealth::Recovering.as_u8(),
            );
            for _ in 0..RECOVERY_ATTEMPTS {
                if store.recover().is_ok() {
                    state.recoveries.fetch_add(1, Ordering::SeqCst);
                    state.health.store(ShardHealth::Healthy.as_u8(), Ordering::SeqCst);
                    tele.store.record_health_transition(
                        ShardHealth::Recovering.as_u8(),
                        ShardHealth::Healthy.as_u8(),
                    );
                    return;
                }
            }
            // The untrusted state cannot be re-verified: the shard never
            // re-admits — answering from it could ack corrupt data.
            state.health.store(ShardHealth::Dead.as_u8(), Ordering::SeqCst);
            tele.store.record_health_transition(
                ShardHealth::Recovering.as_u8(),
                ShardHealth::Dead.as_u8(),
            );
        }));
        if self.senders[shard].send(recovery).is_err() {
            self.mark_dead(shard);
        }
    }

    /// Test hook: force a shard's health (gating paths are hard to catch
    /// in the narrow real windows).
    #[cfg(test)]
    fn force_health(&self, shard: usize, health: ShardHealth) {
        self.states[shard].health.store(health.as_u8(), Ordering::SeqCst);
    }

    /// Send `f` to a shard worker without waiting for it to run
    /// (fire-and-forget [`ShardedStore::with_shard`]). Returns `false` if
    /// the worker is gone. Besides async maintenance work, this is the
    /// fault-injection hook: a closure that panics kills the worker
    /// thread, after which ops routed to the shard report
    /// [`StoreError::ShardUnavailable`].
    pub fn exec_detached<F>(&self, shard: usize, f: F) -> bool
    where
        F: FnOnce(&mut S) + Send + 'static,
    {
        self.senders[shard].send(Request::Exec(Box::new(f))).is_ok()
    }
}

impl<S: KvStore + Send + 'static> Drop for ShardedStore<S> {
    fn drop(&mut self) {
        // Closing the channels lets each worker's recv() fail; join so
        // shard state (and any panic) is settled before we return.
        self.senders.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<S: KvStore + Send + 'static> std::fmt::Debug for ShardedStore<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore").field("shards", &self.senders.len()).finish()
    }
}

fn worker_loop<S: KvStore>(mut store: S, rx: Receiver<Request<S>>, ctx: WorkerCtx) {
    store.attach_telemetry(Arc::clone(&ctx.tele));
    store.refresh_gauges();
    ctx.state.last_len.store(store.len(), Ordering::SeqCst);
    while let Ok(first) = rx.recv() {
        // Drain whatever else queued up while we were busy; under load
        // this turns independent client requests into one wakeup.
        let mut batch = vec![first];
        while batch.len() < WORKER_DRAIN_LIMIT {
            match rx.try_recv() {
                Ok(req) => batch.push(req),
                Err(_) => break,
            }
        }
        for req in batch {
            match req {
                Request::Ops { ops, reply } => {
                    ctx.tele.store.batch_size.observe(ops.len() as u64);
                    let replies = apply_ops(&mut store, ops, &ctx);
                    // Publish the new size before the reply so a client
                    // that saw its ack also sees the updated estimate.
                    ctx.state.last_len.store(store.len(), Ordering::SeqCst);
                    // The client may have given up (dropped the
                    // receiver); the work is still applied.
                    let _ = reply.send(replies);
                }
                Request::Exec(f) => {
                    // Exec closures can do anything (recovery, attack
                    // injection), so re-publish the size afterwards.
                    f(&mut store);
                    ctx.state.last_len.store(store.len(), Ordering::SeqCst);
                }
            }
        }
        store.refresh_gauges();
    }
}

/// Pre-segment readings of the per-shard activity counters. The slow-op
/// tracer attributes a run's time to stages by differencing these
/// around the run — no per-stage clocks on the hot path.
struct SegmentProbe {
    start: Instant,
    index_probes: u64,
    counter_fetches: u64,
    verify_sum: u64,
    admit_evict: u64,
    crypt_bytes: u64,
}

impl SegmentProbe {
    fn begin<S: KvStore>(store: &S, ctx: &WorkerCtx) -> Option<SegmentProbe> {
        if !aria_telemetry::enabled() {
            return None;
        }
        let t = &ctx.tele;
        Some(SegmentProbe {
            start: Instant::now(),
            index_probes: t.store.index_probes.get(),
            counter_fetches: t.cache.hits.get() + t.cache.misses.get(),
            verify_sum: t.cache.verify_depth.sum(),
            admit_evict: t.cache.inserts.get() + t.cache.evictions.get(),
            crypt_bytes: store.enclave().bytes_crypted(),
        })
    }

    /// Close the segment: record per-op latency for the run and, if the
    /// amortized per-op time crossed the tracer threshold, a structured
    /// slow-op span built from the counter deltas.
    fn finish<S: KvStore>(
        self,
        store: &S,
        ctx: &WorkerCtx,
        kind: TeleOpKind,
        first_key: &[u8],
        n: u64,
    ) {
        let elapsed = self.start.elapsed().as_nanos() as u64;
        let per_op = elapsed / n.max(1);
        let t = &ctx.tele;
        match kind {
            TeleOpKind::Get => t.store.get_latency.observe_n(per_op, n),
            TeleOpKind::Put => t.store.put_latency.observe_n(per_op, n),
            TeleOpKind::Delete => t.store.delete_latency.observe_n(per_op, n),
            TeleOpKind::Other => {}
        }
        if per_op < ctx.slow_ops.threshold_nanos() {
            return;
        }
        ctx.slow_ops.record(SlowOp {
            seq: 0, // assigned by the tracer
            shard: ctx.shard,
            kind,
            key_hash: splitmix64(fnv1a(first_key)),
            batch: n.min(u32::MAX as u64) as u32,
            total_nanos: elapsed,
            index_probes: t.store.index_probes.get().saturating_sub(self.index_probes),
            counter_fetches: (t.cache.hits.get() + t.cache.misses.get())
                .saturating_sub(self.counter_fetches),
            verify_depth: t.cache.verify_depth.sum().saturating_sub(self.verify_sum),
            cache_admit_evict: (t.cache.inserts.get() + t.cache.evictions.get())
                .saturating_sub(self.admit_evict),
            crypt_bytes: store.enclave().bytes_crypted().saturating_sub(self.crypt_bytes),
        });
    }
}

/// Apply a batch, feeding maximal same-kind runs to the batched trait
/// methods so stores that amortize per-request costs get to.
fn apply_ops<S: KvStore>(store: &mut S, ops: Vec<BatchOp>, ctx: &WorkerCtx) -> Vec<BatchReply> {
    let mut out = Vec::with_capacity(ops.len());
    let mut i = 0;
    while i < ops.len() {
        let probe = SegmentProbe::begin(store, ctx);
        let (kind, j) = match &ops[i] {
            BatchOp::Get(_) => {
                let mut j = i;
                while j < ops.len() && matches!(ops[j], BatchOp::Get(_)) {
                    j += 1;
                }
                let keys: Vec<&[u8]> = ops[i..j].iter().map(BatchOp::key).collect();
                out.extend(store.multi_get(&keys).into_iter().map(BatchReply::Get));
                (TeleOpKind::Get, j)
            }
            BatchOp::Put(..) => {
                let mut j = i;
                while j < ops.len() && matches!(ops[j], BatchOp::Put(..)) {
                    j += 1;
                }
                let pairs: Vec<(&[u8], &[u8])> = ops[i..j]
                    .iter()
                    .map(|op| match op {
                        BatchOp::Put(k, v) => (k.as_slice(), v.as_slice()),
                        _ => unreachable!("run contains only puts"),
                    })
                    .collect();
                out.extend(store.put_batch(&pairs).into_iter().map(BatchReply::Put));
                (TeleOpKind::Put, j)
            }
            BatchOp::Delete(_) => {
                let mut j = i;
                while j < ops.len() && matches!(ops[j], BatchOp::Delete(_)) {
                    j += 1;
                }
                for op in &ops[i..j] {
                    out.push(BatchReply::Delete(store.delete(op.key())));
                }
                (TeleOpKind::Delete, j)
            }
        };
        if let Some(probe) = probe {
            probe.finish(store, ctx, kind, ops[i].key(), (j - i) as u64);
        }
        i = j;
    }
    out
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Finalizing mixer (splitmix64): decorrelates shard routing from the
/// in-shard bucket hash, which is the raw FNV digest modulo a power of
/// two. Public because it is also a convenient, dependency-free PRNG
/// step (chain it over its own output) for jitter and test seeding.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AriaHash, StoreConfig};
    use aria_sim::Enclave;

    fn small_sharded(shards: usize) -> ShardedStore<AriaHash> {
        ShardedStore::with_shards(shards, |_| {
            AriaHash::new(StoreConfig::for_keys(4_096), Arc::new(Enclave::with_default_epc()))
        })
        .unwrap()
    }

    #[test]
    fn sharded_store_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedStore<AriaHash>>();
    }

    #[test]
    fn basic_ops_round_trip() {
        let store = small_sharded(4);
        assert!(store.is_empty());
        store.put(b"alpha", b"1").unwrap();
        store.put(b"beta", b"2").unwrap();
        assert_eq!(store.get(b"alpha").unwrap().unwrap(), b"1");
        assert_eq!(store.get(b"missing").unwrap(), None);
        assert_eq!(store.len(), 2);
        assert!(store.delete(b"alpha").unwrap());
        assert!(!store.delete(b"alpha").unwrap());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn run_batch_preserves_input_order() {
        let store = small_sharded(4);
        let mut ops = Vec::new();
        for i in 0..64u32 {
            ops.push(BatchOp::Put(format!("key{i}").into_bytes(), i.to_le_bytes().to_vec()));
        }
        for reply in store.run_batch(ops) {
            assert!(matches!(reply, BatchReply::Put(Ok(()))));
        }
        let gets: Vec<BatchOp> =
            (0..64u32).map(|i| BatchOp::Get(format!("key{i}").into_bytes())).collect();
        for (i, reply) in store.run_batch(gets).into_iter().enumerate() {
            match reply {
                BatchReply::Get(Ok(Some(v))) => assert_eq!(v, (i as u32).to_le_bytes()),
                other => panic!("op {i}: unexpected reply {other:?}"),
            }
        }
    }

    #[test]
    fn mixed_batch_matches_sequential_semantics() {
        let store = small_sharded(3);
        let ops = vec![
            BatchOp::Put(b"a".to_vec(), b"1".to_vec()),
            BatchOp::Put(b"b".to_vec(), b"2".to_vec()),
            BatchOp::Get(b"a".to_vec()),
            BatchOp::Delete(b"b".to_vec()),
            BatchOp::Get(b"b".to_vec()),
        ];
        let replies = store.run_batch(ops);
        assert!(matches!(replies[0], BatchReply::Put(Ok(()))));
        assert!(matches!(replies[1], BatchReply::Put(Ok(()))));
        // a and b may land on different shards, so only same-shard
        // ordering is guaranteed; a's get follows a's put on a's shard.
        assert_eq!(replies[2], BatchReply::Get(Ok(Some(b"1".to_vec()))));
        assert_eq!(replies[3], BatchReply::Delete(Ok(true)));
        assert_eq!(replies[4], BatchReply::Get(Ok(None)));
    }

    #[test]
    fn partitioning_is_stable_and_spread() {
        let store = small_sharded(4);
        let mut used = [0u32; 4];
        for i in 0..256u32 {
            let key = format!("user:{i}");
            let first = store.shard_of(key.as_bytes());
            assert_eq!(first, store.shard_of(key.as_bytes()));
            used[first] += 1;
        }
        // All shards get meaningful traffic from a uniform key set.
        for (shard, &count) in used.iter().enumerate() {
            assert!(count > 16, "shard {shard} got only {count}/256 keys");
        }
    }

    #[test]
    fn construction_failure_propagates() {
        let result = ShardedStore::<AriaHash>::with_shards(4, |shard| {
            if shard == 2 {
                Err(StoreError::CountersExhausted)
            } else {
                AriaHash::new(StoreConfig::for_keys(1_024), Arc::new(Enclave::with_default_epc()))
            }
        });
        assert_eq!(result.err(), Some(StoreError::CountersExhausted));
    }

    #[test]
    fn with_shard_reaches_store_specific_api() {
        let store = small_sharded(2);
        store.put(b"probe", b"x").unwrap();
        let shard = store.shard_of(b"probe");
        let len = store.with_shard(shard, |s| s.len());
        assert_eq!(len, 1);
        let other = store.with_shard(1 - shard, |s| s.len());
        assert_eq!(other, 0);
    }

    #[test]
    fn dead_worker_yields_typed_error_not_hang() {
        let store = small_sharded(4);
        store.put(b"seed", b"v").unwrap();
        let dead = store.shard_of(b"seed");
        // Kill one worker; its queue closes once the panic unwinds.
        assert!(store.exec_detached(dead, |_| panic!("injected worker crash")));
        // Wait for the channel to actually disconnect (bounded).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            match store.get(b"seed") {
                Err(StoreError::ShardUnavailable { shard }) => {
                    assert_eq!(shard, dead);
                    break;
                }
                _ if std::time::Instant::now() < deadline => std::thread::yield_now(),
                other => panic!("worker never died: {other:?}"),
            }
        }
        assert_eq!(store.put(b"seed", b"w"), Err(StoreError::ShardUnavailable { shard: dead }));
        assert_eq!(store.delete(b"seed"), Err(StoreError::ShardUnavailable { shard: dead }));
        // A batch spanning live and dead shards: dead shard's ops carry
        // the typed error, live shards still answer.
        let ops: Vec<BatchOp> =
            (0..64u32).map(|i| BatchOp::Put(format!("k{i}").into_bytes(), vec![1])).collect();
        let keys: Vec<Vec<u8>> = (0..64u32).map(|i| format!("k{i}").into_bytes()).collect();
        let replies = store.run_batch(ops);
        let mut dead_ops = 0;
        let mut live_ops = 0;
        for (key, reply) in keys.iter().zip(replies) {
            if store.shard_of(key) == dead {
                assert_eq!(
                    reply,
                    BatchReply::Put(Err(StoreError::ShardUnavailable { shard: dead }))
                );
                dead_ops += 1;
            } else {
                assert_eq!(reply, BatchReply::Put(Ok(())));
                live_ops += 1;
            }
        }
        assert!(dead_ops > 0 && live_ops > 0, "want both shard fates exercised");
    }

    #[test]
    fn quarantine_gating_refuses_ops_without_touching_worker() {
        let store = small_sharded(2);
        store.put(b"k", b"v").unwrap();
        let shard = store.shard_of(b"k");
        store.force_health(shard, ShardHealth::Quarantined);
        assert_eq!(store.get(b"k"), Err(StoreError::ShardQuarantined { shard }));
        store.force_health(shard, ShardHealth::Recovering);
        assert_eq!(store.put(b"k", b"w"), Err(StoreError::ShardQuarantined { shard }));
        store.force_health(shard, ShardHealth::Dead);
        assert_eq!(store.delete(b"k"), Err(StoreError::ShardUnavailable { shard }));
        // Re-admission restores service — the worker itself never died.
        store.force_health(shard, ShardHealth::Healthy);
        assert_eq!(store.get(b"k").unwrap().unwrap(), b"v");
    }

    #[test]
    fn violation_quarantines_shard_then_recovery_readmits_it() {
        let store = small_sharded(2);
        for i in 0..128u32 {
            store.put(format!("key{i}").as_bytes(), b"payload").unwrap();
        }
        let victim_key = b"key7".to_vec();
        let victim = store.shard_of(&victim_key);
        let sibling_key = (0..128u32)
            .map(|i| format!("key{i}").into_bytes())
            .find(|k| store.shard_of(k) != victim)
            .expect("some key lives on the other shard");

        // Tamper with the sealed value bytes in untrusted memory.
        let k = victim_key.clone();
        assert!(store.with_shard(victim, move |s| s.attack_tamper_value(&k)));

        // The read detects the attack (never acks wrong bytes) and
        // triggers quarantine + auto-recovery.
        let err = store.get(&victim_key).unwrap_err();
        assert!(err.is_quarantine_trigger(), "got {err:?}");

        // Recovery runs on the victim's worker; wait for re-admission.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let snap = store.healths()[victim];
            if snap.health == ShardHealth::Healthy && snap.recoveries >= 1 {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "shard never re-admitted: {snap:?}");
            // The sibling shard keeps serving throughout.
            assert_eq!(store.get(&sibling_key).unwrap().unwrap(), b"payload");
            std::thread::yield_now();
        }
        let snap = store.healths()[victim];
        assert!(snap.violations >= 1);
        assert_eq!(snap.recoveries, 1);

        // The tampered entry was destroyed: its bucket now fails closed,
        // and that scar must NOT re-quarantine the shard.
        assert_eq!(
            store.get(&victim_key),
            Err(StoreError::Integrity(crate::Violation::DataDestroyed))
        );
        assert_eq!(store.healths()[victim].health, ShardHealth::Healthy);

        // Untouched keys on the recovered shard still verify and serve.
        let survivor = (0..128u32)
            .map(|i| format!("key{i}").into_bytes())
            .find(|k| store.shard_of(k) == victim && *k != victim_key)
            .expect("victim shard holds more keys");
        assert_eq!(store.get(&survivor).unwrap().unwrap(), b"payload");
        // And the shard accepts new writes again.
        store.put(b"fresh-after-recovery", b"x").unwrap();
    }

    #[test]
    fn dead_worker_is_reflected_in_health() {
        let store = small_sharded(2);
        store.put(b"seed", b"v").unwrap();
        let dead = store.shard_of(b"seed");
        assert!(store.exec_detached(dead, |_| panic!("injected worker crash")));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while store.get(b"seed") != Err(StoreError::ShardUnavailable { shard: dead }) {
            assert!(std::time::Instant::now() < deadline, "worker never died");
            std::thread::yield_now();
        }
        assert_eq!(store.healths()[dead].health, ShardHealth::Dead);
        assert_eq!(store.healths()[1 - dead].health, ShardHealth::Healthy);
        // Monitoring paths skip the dead worker instead of panicking.
        let _ = store.len();
        assert_eq!(store.cache_stats()[dead], None);
        assert_eq!(store.snapshots().len(), 1);
    }

    #[test]
    fn drop_joins_workers_with_queued_ops() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let store = small_sharded(2);
        let applied = Arc::new(AtomicU64::new(0));
        // Stall the worker, then queue work behind the stall; dropping
        // the store must still drain and join, losing nothing.
        assert!(
            store.exec_detached(0, |_| std::thread::sleep(std::time::Duration::from_millis(100)))
        );
        for _ in 0..32 {
            let applied = Arc::clone(&applied);
            assert!(store.exec_detached(0, move |_| {
                applied.fetch_add(1, Ordering::SeqCst);
            }));
        }
        drop(store);
        assert_eq!(applied.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let store = small_sharded(4);
        for i in 0..100u32 {
            store.put(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        let stats = store.stats();
        assert_eq!(stats.enclaves, 4);
        assert!(stats.totals.cycles > 0);
        assert!(stats.max_cycles <= stats.totals.cycles);
        let cache = store.aggregate_cache_stats().expect("AriaHash runs a Secure Cache");
        assert!(cache.accesses() > 0);
    }
}
