//! A sharded, thread-safe front-end over any [`KvStore`], with optional
//! per-shard replication.
//!
//! [`ShardedStore`] hash-partitions the keyspace across `N` independent
//! shard *groups*. Each group holds `R` replicas (default 1); every
//! replica is a complete store instance — its own simulated enclave,
//! counter Merkle tree and Secure Cache — owned by a dedicated worker
//! thread and fed over a bounded MPSC channel. Clients hold only the
//! front-end, so a `ShardedStore` is `Send + Sync` and can be shared
//! behind an `Arc` by any number of client threads even though the
//! underlying stores are single-threaded.
//!
//! # Partitioning
//!
//! The group of a key is chosen by bit-mixing (splitmix64) an FNV-1a
//! digest of the key bytes. The extra mixing step matters: the hash
//! index inside each shard buckets keys by `fnv % 2^k`, so routing on
//! the raw FNV digest would correlate with bucket choice and leave each
//! shard using only `1/N` of its buckets. After mixing, shard routing
//! and bucket choice are independent.
//!
//! # Replication
//!
//! With `R > 1` ([`ShardedStore::with_replicas`]) each group runs one
//! *primary* and `R-1` synchronous *backups*. Writes are sent to the
//! primary **and** every in-service backup under a per-group send lock
//! (so all queues observe the same write order), and acknowledged only
//! after every addressed replica has applied them — the bounded worker
//! queues are the in-flight window that keeps the hot path pipelined.
//! Reads are served by the primary alone; when the primary leaves
//! service the next operation promotes a healthy backup by CAS on the
//! group's [`GroupHealthMachine`] (automatic failover).
//!
//! A replica that dies or quarantines rejoins via *anti-entropy
//! re-sync*: a fresh worker (own enclave, own heap) streams the
//! survivor's MAC-verified contents ([`KvStore::export_chunk`]) in a
//! live first pass, then a short write-fenced second pass applies the
//! delta and both sides compare [`crate::ContentRoot`]s — each computed
//! inside its own enclave from its own verified reads. Matching roots
//! re-admit the replica; a mismatch marks it [`ShardHealth::Dead`] with
//! [`StoreError::ReplicaDiverged`] (a diverged replica must never serve).
//! With `R == 1` none of this machinery is touched: no group lock, no
//! fence check beyond one atomic load, identical hot path to the
//! unreplicated design.
//!
//! # Security
//!
//! Sharding and replication do not weaken the protection argument. Each
//! replica keeps its *own* Merkle root inside its *own* enclave; an
//! adversary who tampers with one replica's untrusted memory is detected
//! by that replica's root exactly as in the single-store design, and no
//! other replica's verification state is involved. The router and the
//! replication plumbing are untrusted machinery: they only decide which
//! enclave receives a request. Re-sync soundness (why a malicious host
//! cannot poison a rejoining replica) is argued in DESIGN.md §13.
//!
//! # Batching
//!
//! Requests carry whole op vectors ([`BatchOp`]) and workers drain their
//! queue opportunistically, so per-request fixed costs amortize: runs of
//! `Get`s become one [`KvStore::multi_get`] and runs of `Put`s one
//! [`KvStore::put_batch`], each charging the simulated per-request cost
//! once.
//!
//! # Health and quarantine
//!
//! Every replica carries a health state machine:
//!
//! ```text
//! Healthy ──violation──▶ Quarantined ──▶ Recovering ──▶ Healthy
//!    │                        │               │
//!    └────(worker died)───────┴───────────────┴──(failed)──▶ Dead
//!                                                   Dead ──▶ Recovering
//! ```
//!
//! When any reply carries a quarantine-triggering integrity violation
//! (see [`StoreError::is_quarantine_trigger`]) the replica flips to
//! `Quarantined`: operations are refused with
//! [`StoreError::ShardQuarantined`] *without touching the worker*, while
//! sibling groups (and, with replication, sibling replicas) keep
//! serving. Recovery is single-flight — exactly one claimant wins the
//! `Quarantined → Recovering` (or `Dead → Recovering`) CAS. Unreplicated
//! groups recover in place with [`KvStore::recover`] (up to
//! [`RECOVERY_ATTEMPTS`] times); replicated groups re-sync from a
//! surviving replica as described above. [`ShardedStore::healths`]
//! exposes per-group state, [`ShardedStore::replica_healths`] per-replica
//! detail (role, lag), and [`ShardedStore::group_stats`] failover and
//! re-sync counters.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use aria_sim::{EnclaveSnapshot, EnclaveStats};
use aria_telemetry::{
    stage as trace_stage, OpKind as TeleOpKind, ShardTelemetry, SlowOp, SlowOpTracer, SpanCell,
};

use crate::reshard::{
    self, ReshardCtl, ReshardFault, ReshardMode, ReshardStatus, RoutingTable, NUM_ROUTING_SLOTS,
};
use crate::resync::content_root_of;
use crate::{CacheStats, KvStore, StoreError};

/// Default bound of each shard's request queue.
pub const DEFAULT_QUEUE_DEPTH: usize = 64;

/// How many queued requests a worker drains per wakeup.
const WORKER_DRAIN_LIMIT: usize = 32;

/// How many times a quarantined unreplicated shard retries
/// [`KvStore::recover`] before it is declared [`ShardHealth::Dead`].
pub const RECOVERY_ATTEMPTS: u32 = 3;

/// Upper bound on replicas per group (sanity rail, not a design limit).
pub const MAX_REPLICAS: usize = 8;

/// How many pairs a re-sync bulk-apply sends per worker round trip.
const RESYNC_APPLY_CHUNK: usize = 256;

/// Lifecycle state of one replica (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ShardHealth {
    /// Serving normally.
    Healthy = 0,
    /// An integrity violation was detected; recovery is queued. Ops are
    /// refused with [`StoreError::ShardQuarantined`].
    Quarantined = 1,
    /// Recovery (or anti-entropy re-sync) is running. Ops are still
    /// refused with [`StoreError::ShardQuarantined`].
    Recovering = 2,
    /// Recovery failed (or the worker thread died); the replica is out
    /// of service. Ops are refused with
    /// [`StoreError::ShardUnavailable`]. A replicated group may still
    /// pull a dead replica back through re-sync.
    Dead = 3,
}

impl ShardHealth {
    /// Wire/atomic representation.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Inverse of [`ShardHealth::as_u8`]; unknown values decode as
    /// `Dead` (fail closed).
    pub fn from_u8(v: u8) -> ShardHealth {
        match v {
            0 => ShardHealth::Healthy,
            1 => ShardHealth::Quarantined,
            2 => ShardHealth::Recovering,
            _ => ShardHealth::Dead,
        }
    }
}

impl std::fmt::Display for ShardHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ShardHealth::Healthy => "healthy",
            ShardHealth::Quarantined => "quarantined",
            ShardHealth::Recovering => "recovering",
            ShardHealth::Dead => "dead",
        };
        f.write_str(s)
    }
}

/// Role of a replica within its group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ReplicaRole {
    /// Serves reads and is the authoritative write acknowledger.
    Primary = 0,
    /// Applies every write synchronously; promoted on failover.
    Backup = 1,
}

impl ReplicaRole {
    /// Wire/atomic representation.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Inverse of [`ReplicaRole::as_u8`]; unknown values decode as
    /// `Backup` (a bogus byte must not claim primaryship).
    pub fn from_u8(v: u8) -> ReplicaRole {
        if v == 0 {
            ReplicaRole::Primary
        } else {
            ReplicaRole::Backup
        }
    }
}

impl std::fmt::Display for ReplicaRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ReplicaRole::Primary => "primary",
            ReplicaRole::Backup => "backup",
        })
    }
}

/// A point-in-time copy of one *group's* health counters (aggregated
/// over its replicas; for one replica see [`ReplicaHealthSnapshot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHealthSnapshot {
    /// Current lifecycle state (of the group: `Healthy` while any
    /// replica can serve).
    pub health: ShardHealth,
    /// Quarantine-triggering violations observed across the group.
    pub violations: u64,
    /// Completed recovery / re-sync re-admission cycles.
    pub recoveries: u64,
}

/// A point-in-time copy of one replica's state within its group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaHealthSnapshot {
    /// The shard group this replica belongs to.
    pub group: usize,
    /// Replica index within the group.
    pub replica: usize,
    /// Current role.
    pub role: ReplicaRole,
    /// Current lifecycle state.
    pub health: ShardHealth,
    /// Quarantine-triggering violations observed on this replica.
    pub violations: u64,
    /// Completed recovery / re-sync re-admission cycles.
    pub recoveries: u64,
    /// Absolute difference between this replica's last reported key
    /// count and the primary's — 0 when in sync, growing while the
    /// replica is out of service.
    pub lag: u64,
}

/// Per-group aggregate counters (see [`ShardedStore::group_stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupStats {
    /// The shard group.
    pub group: usize,
    /// Replica index currently acting as primary.
    pub primary: usize,
    /// Completed primary promotions (failovers).
    pub failovers: u64,
    /// Completed anti-entropy re-sync cycles (roots matched).
    pub resyncs: u64,
    /// The error that ended the most recent failed re-sync, if any
    /// (e.g. [`StoreError::ReplicaDiverged`]).
    pub last_resync_error: Option<StoreError>,
    /// Per-replica detail.
    pub replicas: Vec<ReplicaHealthSnapshot>,
}

/// The CAS-driven health state machine of one replicated shard group.
///
/// This is deliberately a standalone type: the store drives it from
/// operation outcomes, and property tests drive it with arbitrary
/// fault/recover/promote interleavings to check that no invalid
/// transition is ever reachable and that the group always has exactly
/// one primary. Valid edges are
/// `Healthy → Quarantined` ([`GroupHealthMachine::quarantine`]),
/// `Quarantined|Dead → Recovering` ([`GroupHealthMachine::claim_recovery`],
/// single-flight), `Recovering → Healthy` ([`GroupHealthMachine::readmit`]),
/// `Recovering → Dead` ([`GroupHealthMachine::fail_recovery`]) and
/// `any → Dead` ([`GroupHealthMachine::mark_dead`]). The primary index
/// only ever moves to a currently-`Healthy` replica, and only while the
/// incumbent is out of service ([`GroupHealthMachine::promote`]).
pub struct GroupHealthMachine {
    primary: AtomicUsize,
    healths: Vec<AtomicU8>,
    failovers: AtomicU64,
}

impl GroupHealthMachine {
    /// A machine for `replicas` replicas, all `Healthy`, replica 0
    /// primary.
    pub fn new(replicas: usize) -> GroupHealthMachine {
        assert!(replicas >= 1, "a group needs at least one replica");
        GroupHealthMachine {
            primary: AtomicUsize::new(0),
            healths: (0..replicas).map(|_| AtomicU8::new(ShardHealth::Healthy.as_u8())).collect(),
            failovers: AtomicU64::new(0),
        }
    }

    /// Number of replicas this machine tracks.
    pub fn replicas(&self) -> usize {
        self.healths.len()
    }

    /// Replica index currently holding the primary role.
    pub fn primary(&self) -> usize {
        self.primary.load(Ordering::SeqCst)
    }

    /// Completed promotions.
    pub fn failovers(&self) -> u64 {
        self.failovers.load(Ordering::SeqCst)
    }

    /// Current state of one replica.
    pub fn health(&self, replica: usize) -> ShardHealth {
        ShardHealth::from_u8(self.healths[replica].load(Ordering::SeqCst))
    }

    /// Current role of one replica.
    pub fn role_of(&self, replica: usize) -> ReplicaRole {
        if self.primary() == replica {
            ReplicaRole::Primary
        } else {
            ReplicaRole::Backup
        }
    }

    fn cas(&self, replica: usize, from: ShardHealth, to: ShardHealth) -> bool {
        self.healths[replica]
            .compare_exchange(from.as_u8(), to.as_u8(), Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// `Healthy → Quarantined`. Returns whether this caller won the
    /// transition (concurrent detections of one incident get one winner).
    pub fn quarantine(&self, replica: usize) -> bool {
        self.cas(replica, ShardHealth::Healthy, ShardHealth::Quarantined)
    }

    /// Claim the single recovery slot: `Quarantined → Recovering` or
    /// `Dead → Recovering`. Returns the state the claim was won from,
    /// or `None` if the replica is not claimable (someone else is
    /// already recovering it, or it is healthy).
    pub fn claim_recovery(&self, replica: usize) -> Option<ShardHealth> {
        if self.cas(replica, ShardHealth::Quarantined, ShardHealth::Recovering) {
            return Some(ShardHealth::Quarantined);
        }
        if self.cas(replica, ShardHealth::Dead, ShardHealth::Recovering) {
            return Some(ShardHealth::Dead);
        }
        None
    }

    /// `Recovering → Healthy`. Only the recovery claimant calls this;
    /// returns false if the replica was concurrently marked dead.
    pub fn readmit(&self, replica: usize) -> bool {
        self.cas(replica, ShardHealth::Recovering, ShardHealth::Healthy)
    }

    /// `Recovering → Dead`.
    pub fn fail_recovery(&self, replica: usize) -> bool {
        self.cas(replica, ShardHealth::Recovering, ShardHealth::Dead)
    }

    /// Force a replica dead (worker gone): `Healthy → Dead` or
    /// `Quarantined → Dead`. Returns the previous state when this call
    /// made the change, `None` otherwise. `Recovering` is deliberately
    /// not reachable from here — that state is owned by the single-flight
    /// recovery claimant, whose own send/apply failures surface a real
    /// mid-recovery death as [`GroupHealthMachine::fail_recovery`]. An
    /// external death report landing on a `Recovering` replica would
    /// yank it out from under its claimant and park it `Dead` with no
    /// retry once the claimant's `readmit` CAS silently lost.
    pub fn mark_dead(&self, replica: usize) -> Option<ShardHealth> {
        [ShardHealth::Healthy, ShardHealth::Quarantined]
            .into_iter()
            .find(|&from| self.cas(replica, from, ShardHealth::Dead))
    }

    /// If the incumbent primary is out of service, CAS the primary index
    /// to a `Healthy` replica. Returns the new primary on success,
    /// `None` when no promotion is needed or possible. The primary index
    /// is a single atomic, so the group has exactly one primary at every
    /// instant by construction.
    pub fn promote(&self) -> Option<usize> {
        loop {
            let cur = self.primary.load(Ordering::SeqCst);
            if self.health(cur) == ShardHealth::Healthy {
                return None;
            }
            let next = (0..self.replicas())
                .find(|&r| r != cur && self.health(r) == ShardHealth::Healthy)?;
            if self.primary.compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst).is_ok()
            {
                self.failovers.fetch_add(1, Ordering::SeqCst);
                return Some(next);
            }
        }
    }

    /// Test hook: set a replica's state directly (gating paths are hard
    /// to catch in the narrow real windows).
    #[doc(hidden)]
    pub fn force(&self, replica: usize, health: ShardHealth) {
        self.healths[replica].store(health.as_u8(), Ordering::SeqCst);
    }
}

impl std::fmt::Debug for GroupHealthMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupHealthMachine")
            .field("primary", &self.primary())
            .field("healths", &(0..self.replicas()).map(|r| self.health(r)).collect::<Vec<_>>())
            .field("failovers", &self.failovers())
            .finish()
    }
}

/// Shared (front-end ↔ recovery job) counters of one replica slot.
pub(crate) struct ShardState {
    violations: AtomicU64,
    recoveries: AtomicU64,
    /// Last key count the slot's worker reported. Monitoring paths read
    /// this instead of asking the worker, so a quarantined (or busy)
    /// replica still contributes its last-known size.
    last_len: AtomicU64,
    /// Ops accepted into the worker's queue and not yet retired.
    /// Incremented by the front-end on a successful send, decremented
    /// by the worker after applying (and reset on respawn — ops queued
    /// to a dead worker are never retired). These are plain atomics,
    /// not telemetry counters, because admission control must keep
    /// working with the `telemetry` feature compiled out.
    inflight_ops: AtomicU64,
    /// Batches the worker has fully applied and replied to — the
    /// progress heartbeat the stuck-shard watchdog samples. A slot
    /// whose `inflight_ops` stays positive while this stands still is
    /// accepting work but retiring nothing.
    batches_retired: AtomicU64,
    /// EWMA of per-op service time in nanoseconds (alpha = 1/8),
    /// maintained by the worker. `inflight_ops * ewma_op_ns` is the
    /// admission controller's queue-delay estimate. 0 until the first
    /// batch retires.
    ewma_op_ns: AtomicU64,
    /// Data ops refused by admission control
    /// ([`StoreError::Overloaded`]) since start.
    shed_ops: AtomicU64,
}

impl ShardState {
    fn new() -> ShardState {
        ShardState {
            violations: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
            last_len: AtomicU64::new(0),
            inflight_ops: AtomicU64::new(0),
            batches_retired: AtomicU64::new(0),
            ewma_op_ns: AtomicU64::new(0),
            shed_ops: AtomicU64::new(0),
        }
    }

    /// Current queue-delay estimate for this slot, in nanoseconds.
    fn queue_delay_ns(&self) -> u64 {
        self.inflight_ops
            .load(Ordering::Relaxed)
            .saturating_mul(self.ewma_op_ns.load(Ordering::Relaxed))
    }
}

/// One operation of a [`ShardedStore::run_batch`] request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOp {
    /// Fetch a key.
    Get(Vec<u8>),
    /// Insert or update a key.
    Put(Vec<u8>, Vec<u8>),
    /// Remove a key.
    Delete(Vec<u8>),
}

impl BatchOp {
    /// The key this operation addresses.
    pub fn key(&self) -> &[u8] {
        match self {
            BatchOp::Get(k) | BatchOp::Delete(k) => k,
            BatchOp::Put(k, _) => k,
        }
    }

    /// Whether this operation mutates the store.
    pub fn is_write(&self) -> bool {
        !matches!(self, BatchOp::Get(_))
    }
}

/// The result of one [`BatchOp`], in the same position as its op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchReply {
    /// Result of a [`BatchOp::Get`].
    Get(Result<Option<Vec<u8>>, StoreError>),
    /// Result of a [`BatchOp::Put`].
    Put(Result<(), StoreError>),
    /// Result of a [`BatchOp::Delete`]; `true` if the key existed.
    Delete(Result<bool, StoreError>),
}

impl BatchReply {
    /// The error carried by this reply, if any.
    pub fn error(&self) -> Option<&StoreError> {
        match self {
            BatchReply::Get(Err(e)) | BatchReply::Put(Err(e)) | BatchReply::Delete(Err(e)) => {
                Some(e)
            }
            _ => None,
        }
    }

    /// Whether this reply reports a detected attack.
    pub fn is_integrity_violation(&self) -> bool {
        self.error().is_some_and(StoreError::is_integrity_violation)
    }
}

pub(crate) enum Request<S> {
    Ops {
        ops: Vec<BatchOp>,
        /// Trace span cells for sampled requests whose ops are in this
        /// batch (empty unless tracing sampled them). The worker stamps
        /// queue/execute stages and attribution deltas on each.
        spans: Vec<Arc<SpanCell>>,
        reply: Sender<Vec<BatchReply>>,
    },
    Exec(Box<dyn FnOnce(&mut S) + Send>),
}

/// The kind of a [`BatchOp`], kept so a reply of the right shape can be
/// synthesized when a shard worker dies mid-request.
#[derive(Clone, Copy)]
enum OpKind {
    Get,
    Put,
    Delete,
}

impl OpKind {
    fn of(op: &BatchOp) -> OpKind {
        match op {
            BatchOp::Get(_) => OpKind::Get,
            BatchOp::Put(..) => OpKind::Put,
            BatchOp::Delete(_) => OpKind::Delete,
        }
    }

    fn with_err(self, err: StoreError) -> BatchReply {
        match self {
            OpKind::Get => BatchReply::Get(Err(err)),
            OpKind::Put => BatchReply::Put(Err(err)),
            OpKind::Delete => BatchReply::Delete(Err(err)),
        }
    }
}

/// A replica slot: the (replaceable) channel to its worker plus its
/// shared counters (telemetry lives in the parallel `Inner::tele` vec).
pub(crate) struct Slot<S> {
    pub(crate) sender: RwLock<Option<SyncSender<Request<S>>>>,
    pub(crate) state: Arc<ShardState>,
    /// Worker incarnation, bumped under the `sender` write lock each
    /// time [`spawn_worker`] publishes a fresh worker. Death evidence
    /// (a failed send or a dropped reply receiver) is stamped with the
    /// generation it was gathered against and ignored if the worker has
    /// been respawned since — a receiver from a pre-crash batch failing
    /// *after* the replica was re-synced and re-admitted proves nothing
    /// about the current worker.
    pub(crate) generation: AtomicU64,
}

/// Per-group control block: health machine, write-order lock and the
/// re-sync fence.
pub(crate) struct GroupCtl {
    pub(crate) machine: GroupHealthMachine,
    /// Held around every replicated write send so the primary's and the
    /// backups' queues observe the same write order. Never taken when
    /// `replicas == 1`.
    pub(crate) write_lock: Mutex<()>,
    /// While set, writes to this group are refused (retryable
    /// [`StoreError::ShardQuarantined`]); reads keep flowing to the
    /// primary. Raised only for the short delta phase of a re-sync.
    pub(crate) fence: AtomicBool,
    pub(crate) resyncs: AtomicU64,
    pub(crate) last_resync_error: Mutex<Option<StoreError>>,
}

pub(crate) type Factory<S> = dyn Fn(usize) -> Result<S, StoreError> + Send + Sync;

/// Chaos hook consulted at the end of a re-sync: returning `true` for a
/// group corrupts the rejoining replica just before root comparison,
/// modeling a replica that silently diverged (its re-admission must be
/// refused with [`StoreError::ReplicaDiverged`]).
type ResyncFaultHook = dyn Fn(usize) -> bool + Send + Sync;

pub(crate) struct Inner<S: KvStore + Send + 'static> {
    /// Total shard groups the store is *sized* for. With elastic
    /// construction ([`ShardedStore::with_elastic`]) only a prefix is
    /// active at first; the rest have no workers and own no routing
    /// slots until a split activates them.
    pub(crate) groups: usize,
    pub(crate) replicas: usize,
    pub(crate) queue_depth: usize,
    pub(crate) slots: Vec<Slot<S>>,
    pub(crate) ctls: Vec<GroupCtl>,
    pub(crate) tele: Vec<Arc<ShardTelemetry>>,
    pub(crate) factory: Arc<Factory<S>>,
    pub(crate) slow_ops: Arc<SlowOpTracer>,
    pub(crate) shutdown: AtomicBool,
    pub(crate) workers: Mutex<Vec<JoinHandle<()>>>,
    pub(crate) resyncers: Mutex<Vec<JoinHandle<()>>>,
    pub(crate) maintainers: Mutex<Vec<JoinHandle<()>>>,
    resync_fault: RwLock<Option<Arc<ResyncFaultHook>>>,
    /// Slot-granular key → group routing, replacing the fixed
    /// `hash % groups` map; bumps its epoch on every committed
    /// migration.
    pub(crate) routing: Arc<RoutingTable>,
    /// Migration driver state: single-flight claim, counters, per-group
    /// active flags, chaos hook.
    pub(crate) reshard: ReshardCtl,
    /// Admission control: refuse data ops routed to a group whose
    /// estimated queue delay exceeds this many nanoseconds. 0 = off
    /// (the default — nothing changes for existing callers).
    queue_delay_budget_ns: AtomicU64,
    /// Stuck-shard watchdog: a primary that holds in-flight ops but
    /// retires no batch for this many nanoseconds is quarantined by the
    /// maintenance ticker. 0 = off (the default).
    watchdog_window_ns: AtomicU64,
}

impl<S: KvStore + Send + 'static> Inner<S> {
    pub(crate) fn slot_index(&self, group: usize, replica: usize) -> usize {
        group * self.replicas + replica
    }
}

/// Lock a registry even if a previous holder panicked: a
/// `Vec<JoinHandle>` has no invariant a partial mutation can break.
pub(crate) fn lock_handles(
    m: &Mutex<Vec<JoinHandle<()>>>,
) -> std::sync::MutexGuard<'_, Vec<JoinHandle<()>>> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A `Send + Sync` front-end multiplexing client threads onto `N`
/// single-threaded store shard groups (see the module docs).
///
/// ```
/// use std::sync::Arc;
/// use aria_sim::Enclave;
/// use aria_store::{AriaHash, StoreConfig};
/// use aria_store::sharded::ShardedStore;
///
/// let store = ShardedStore::with_shards(4, |shard| {
///     let enclave = Arc::new(Enclave::with_default_epc());
///     AriaHash::new(StoreConfig::for_keys(10_000), enclave)
/// })
/// .unwrap();
///
/// store.put(b"k", b"v").unwrap();
/// assert_eq!(store.get(b"k").unwrap().unwrap(), b"v");
/// assert_eq!(store.len(), 1);
/// let _ = shard_used(&store);
/// # fn shard_used(s: &ShardedStore<AriaHash>) -> usize { s.shard_of(b"k") }
/// ```
pub struct ShardedStore<S: KvStore + Send + 'static> {
    inner: Arc<Inner<S>>,
}

/// Everything a shard worker needs to report telemetry and validate
/// routing ownership at execution time.
struct WorkerCtx {
    shard: u32,
    /// The shard *group* this worker's replica belongs to — the unit
    /// routing slots are owned by.
    group: usize,
    routing: Arc<RoutingTable>,
    tele: Arc<ShardTelemetry>,
    slow_ops: Arc<SlowOpTracer>,
    state: Arc<ShardState>,
}

impl<S: KvStore + Send + 'static> ShardedStore<S> {
    /// Build an unreplicated store with `shards` worker threads and the
    /// default queue depth. `factory(slot)` runs *inside* each worker
    /// thread to build that slot's store (stores need not be `Send` once
    /// running, but `S` itself must be to move the factory result into
    /// place).
    pub fn with_shards<F>(shards: usize, factory: F) -> Result<Self, StoreError>
    where
        F: Fn(usize) -> Result<S, StoreError> + Send + Sync + 'static,
    {
        Self::with_replicas(shards, 1, DEFAULT_QUEUE_DEPTH, factory)
    }

    /// Build an unreplicated store with an explicit per-shard queue
    /// bound.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `queue_depth` is zero.
    pub fn new<F>(shards: usize, queue_depth: usize, factory: F) -> Result<Self, StoreError>
    where
        F: Fn(usize) -> Result<S, StoreError> + Send + Sync + 'static,
    {
        Self::with_replicas(shards, 1, queue_depth, factory)
    }

    /// Build a store with `groups` logical shards of `replicas` replicas
    /// each. `factory(slot)` runs inside each worker thread; slot
    /// `group * replicas + replica` builds that replica's store (and is
    /// re-invoked to respawn a replica for re-sync).
    ///
    /// # Panics
    ///
    /// Panics if `groups`, `replicas` or `queue_depth` is zero, or if
    /// `replicas` exceeds [`MAX_REPLICAS`].
    pub fn with_replicas<F>(
        groups: usize,
        replicas: usize,
        queue_depth: usize,
        factory: F,
    ) -> Result<Self, StoreError>
    where
        F: Fn(usize) -> Result<S, StoreError> + Send + Sync + 'static,
    {
        Self::with_elastic(groups, groups, replicas, queue_depth, factory)
    }

    /// Build an *elastic* store: sized for `max_groups` shard groups but
    /// serving from only the first `active` at construction. Inactive
    /// groups hold no workers (and no routing slots) until an online
    /// split ([`ShardedStore::start_reshard`]) activates them; a merge
    /// that empties a group deactivates it again. With
    /// `active == max_groups` this is exactly
    /// [`ShardedStore::with_replicas`].
    ///
    /// # Panics
    ///
    /// Panics if `active` is zero or exceeds `max_groups`, if
    /// `max_groups` exceeds [`NUM_ROUTING_SLOTS`], or on the
    /// [`ShardedStore::with_replicas`] bounds.
    pub fn with_elastic<F>(
        active: usize,
        max_groups: usize,
        replicas: usize,
        queue_depth: usize,
        factory: F,
    ) -> Result<Self, StoreError>
    where
        F: Fn(usize) -> Result<S, StoreError> + Send + Sync + 'static,
    {
        assert!(active > 0, "a sharded store needs at least one active shard group");
        assert!(active <= max_groups, "active groups cannot exceed the sized maximum");
        assert!(max_groups <= NUM_ROUTING_SLOTS, "at most {NUM_ROUTING_SLOTS} shard groups");
        assert!(replicas > 0, "every group needs at least one replica");
        assert!(replicas <= MAX_REPLICAS, "at most {MAX_REPLICAS} replicas per group");
        assert!(queue_depth > 0, "request queues must hold at least one request");
        let groups = max_groups;
        let slots = groups * replicas;
        let tele: Vec<Arc<ShardTelemetry>> =
            (0..slots).map(|_| Arc::new(ShardTelemetry::default())).collect();
        let inner = Arc::new(Inner {
            groups,
            replicas,
            queue_depth,
            slots: (0..slots)
                .map(|_| Slot {
                    sender: RwLock::new(None),
                    state: Arc::new(ShardState::new()),
                    generation: AtomicU64::new(0),
                })
                .collect(),
            ctls: (0..groups)
                .map(|_| GroupCtl {
                    machine: GroupHealthMachine::new(replicas),
                    write_lock: Mutex::new(()),
                    fence: AtomicBool::new(false),
                    resyncs: AtomicU64::new(0),
                    last_resync_error: Mutex::new(None),
                })
                .collect(),
            tele,
            factory: Arc::new(factory),
            slow_ops: Arc::new(SlowOpTracer::default()),
            shutdown: AtomicBool::new(false),
            workers: Mutex::new(Vec::with_capacity(slots)),
            resyncers: Mutex::new(Vec::new()),
            maintainers: Mutex::new(Vec::new()),
            resync_fault: RwLock::new(None),
            routing: Arc::new(RoutingTable::new(active)),
            reshard: ReshardCtl::new(groups, active),
            queue_delay_budget_ns: AtomicU64::new(0),
            watchdog_window_ns: AtomicU64::new(0),
        });
        for group in 0..groups {
            if group < active {
                for replica in 0..replicas {
                    if let Err(e) = spawn_worker(&inner, inner.slot_index(group, replica)) {
                        teardown(&inner);
                        return Err(e);
                    }
                }
            } else {
                // Inactive groups are out of service until a split
                // activates them; `Dead` refuses any op that somehow
                // reaches one (routing never points there).
                for replica in 0..replicas {
                    inner.ctls[group].machine.force(replica, ShardHealth::Dead);
                }
            }
        }
        reshard::publish_routing_gauges(&inner);
        Ok(ShardedStore { inner })
    }

    /// Per-slot telemetry bundles (index = `group * replicas + replica`;
    /// with one replica per group, index = shard). The handles are the
    /// live recorders — a monitoring thread can snapshot them at any
    /// time without touching the workers.
    pub fn telemetry(&self) -> &[Arc<ShardTelemetry>] {
        &self.inner.tele
    }

    /// The slow-op tracer all shard workers record into.
    pub fn slow_ops(&self) -> &Arc<SlowOpTracer> {
        &self.inner.slow_ops
    }

    /// Number of shard groups the store is sized for (logical shards;
    /// with elastic construction this includes inactive groups).
    pub fn shards(&self) -> usize {
        self.inner.groups
    }

    /// Number of currently *active* shard groups (groups with workers
    /// that own routing slots).
    pub fn active_shards(&self) -> usize {
        self.inner.reshard.active_groups()
    }

    /// Replicas per group (1 = replication off).
    pub fn replicas(&self) -> usize {
        self.inner.replicas
    }

    /// The shard group serving `key` *right now* — stable between
    /// committed migrations, and changed only by an epoch bump.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        self.inner.routing.group_of(key)
    }

    /// The routing slot `key` hashes to (stable for the lifetime of the
    /// store — migrations move slot *ownership*, never the key → slot
    /// map).
    pub fn slot_of(&self, key: &[u8]) -> usize {
        self.inner.routing.slot_of(key)
    }

    /// The live routing table (epoch, slot owners, migration freeze
    /// state).
    pub fn routing(&self) -> &Arc<RoutingTable> {
        &self.inner.routing
    }

    /// Current routing epoch (starts at 1; bumped once per committed
    /// migration).
    pub fn routing_epoch(&self) -> u64 {
        self.inner.routing.epoch()
    }

    /// If a client claiming routing knowledge as of `claimed_epoch`
    /// would misinterpret ops on `key` — i.e. the key's slot changed
    /// owner after that epoch — returns `(current_owner, current_epoch)`
    /// so the caller can refuse with a typed `WrongShard` instead of
    /// serving against routing the client no longer holds. A claim of 0
    /// means "no claim" and never refuses.
    pub fn stale_claim(&self, key: &[u8], claimed_epoch: u64) -> Option<(usize, u64)> {
        let routing = &self.inner.routing;
        let slot = routing.slot_of(key);
        if claimed_epoch > 0 && routing.moved_epoch(slot) > claimed_epoch {
            Some((routing.owner(slot), routing.epoch()))
        } else {
            None
        }
    }

    /// Start an online shard migration in the background: `Split` moves
    /// half of `source`'s routing slots to (and activates) the inactive
    /// group `target`; `Merge` moves *all* of `source`'s slots to the
    /// active group `target` and deactivates `source` once drained.
    /// Single-flight: a second call while one runs is refused. The
    /// migration is crash-safe and abortable — `source` stays
    /// authoritative until the epoch flip commits, and an aborted (or
    /// killed) target is scrubbed back out of service. Progress is
    /// observable through [`ShardedStore::reshard_status`].
    pub fn start_reshard(
        &self,
        mode: ReshardMode,
        source: usize,
        target: usize,
    ) -> Result<(), StoreError> {
        reshard::start(&self.inner, mode, source, target)
    }

    /// Point-in-time migration driver status and counters.
    pub fn reshard_status(&self) -> ReshardStatus {
        reshard::status(&self.inner)
    }

    /// Install the reshard chaos hook, consulted at the driver's
    /// injection points (stream tamper mid-copy, target kill mid-copy).
    /// Returning `true` injects the fault once at that point.
    pub fn set_reshard_fault_hook<F>(&self, hook: F)
    where
        F: Fn(ReshardFault) -> bool + Send + Sync + 'static,
    {
        self.inner.reshard.set_fault_hook(hook);
    }

    /// Install the re-sync divergence chaos hook (see
    /// [`StoreError::ReplicaDiverged`]). The hook is consulted once per
    /// re-sync, after the delta apply and before root comparison;
    /// returning `true` corrupts the rejoining replica so its root
    /// cannot match.
    pub fn set_resync_fault_hook<F>(&self, hook: F)
    where
        F: Fn(usize) -> bool + Send + Sync + 'static,
    {
        *self.inner.resync_fault.write().unwrap_or_else(|p| p.into_inner()) = Some(Arc::new(hook));
    }

    // --- overload control ---------------------------------------------------

    /// Enable (or, with `None`, disable) per-shard admission control:
    /// data ops routed to a group whose estimated queue delay
    /// (`in-flight ops × EWMA of per-op service time`) exceeds `budget`
    /// are refused fast with [`StoreError::Overloaded`] instead of
    /// queueing — nothing is enqueued, nothing applied, so a refusal is
    /// never an acknowledgement. Off by default.
    pub fn set_queue_delay_budget(&self, budget: Option<Duration>) {
        let ns = budget.map_or(0, |d| d.as_nanos().min(u64::MAX as u128) as u64);
        self.inner.queue_delay_budget_ns.store(ns, Ordering::SeqCst);
    }

    /// The configured admission budget, if any.
    pub fn queue_delay_budget(&self) -> Option<Duration> {
        match self.inner.queue_delay_budget_ns.load(Ordering::SeqCst) {
            0 => None,
            ns => Some(Duration::from_nanos(ns)),
        }
    }

    /// Arm (or, with `None`, disarm) the stuck-shard watchdog: a
    /// group's acting primary that holds in-flight ops but retires no
    /// batch for `window` is quarantined through the health machine by
    /// the maintenance ticker (see [`ShardedStore::start_maintenance`]
    /// — the watchdog samples on that ticker, so it needs maintenance
    /// running to act). Off by default.
    pub fn set_watchdog_window(&self, window: Option<Duration>) {
        let ns = window.map_or(0, |d| d.as_nanos().min(u64::MAX as u128) as u64);
        self.inner.watchdog_window_ns.store(ns, Ordering::SeqCst);
    }

    /// Per-group estimated queue delay on the acting primary (index =
    /// group), in nanoseconds. Reads atomics only — never blocks on a
    /// worker — and refreshes each slot's `queue_delay_ns` telemetry
    /// gauge as a side effect.
    pub fn queue_delay_estimates(&self) -> Vec<u64> {
        (0..self.inner.groups)
            .map(|g| {
                let p = self.inner.ctls[g].machine.primary();
                let slot = self.inner.slot_index(g, p);
                let est = self.inner.slots[slot].state.queue_delay_ns();
                self.inner.tele[slot].store.queue_delay_ns.set(est);
                est
            })
            .collect()
    }

    /// Total data ops refused by admission control since start, across
    /// all slots.
    pub fn shed_ops_total(&self) -> u64 {
        self.inner.slots.iter().map(|s| s.state.shed_ops.load(Ordering::Relaxed)).sum()
    }

    /// Admission check for one group: refuse fast when the acting
    /// primary's estimated queue delay is over budget. `ops` is the
    /// batch size, charged to the shed counter on refusal.
    fn admit(&self, group: usize, ops: usize) -> Result<(), StoreError> {
        let budget = self.inner.queue_delay_budget_ns.load(Ordering::Relaxed);
        if budget == 0 {
            return Ok(());
        }
        let p = self.inner.ctls[group].machine.primary();
        let slot = self.inner.slot_index(group, p);
        let st = &self.inner.slots[slot].state;
        let est = st.queue_delay_ns();
        if est <= budget {
            return Ok(());
        }
        st.shed_ops.fetch_add(ops as u64, Ordering::Relaxed);
        self.inner.tele[slot].store.admission_shed.add(ops as u64);
        // Hint: the time the backlog needs to drain back under budget,
        // floored at 1 ms (a zero hint reads as "no hint" on the wire)
        // and capped at 1 s so a momentary spike never parks clients.
        let retry_after_ms = (est.saturating_sub(budget) / 1_000_000).clamp(1, 1_000);
        Err(StoreError::Overloaded { shard: group, retry_after_ms })
    }

    /// Insert or update a key (blocking).
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        match self.request_one(BatchOp::Put(key.to_vec(), value.to_vec())) {
            BatchReply::Put(r) => r,
            _ => unreachable!("put answered with a non-put reply"),
        }
    }

    /// Fetch a key (blocking).
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        match self.request_one(BatchOp::Get(key.to_vec())) {
            BatchReply::Get(r) => r,
            _ => unreachable!("get answered with a non-get reply"),
        }
    }

    /// Remove a key (blocking); returns whether it existed.
    pub fn delete(&self, key: &[u8]) -> Result<bool, StoreError> {
        match self.request_one(BatchOp::Delete(key.to_vec())) {
            BatchReply::Delete(r) => r,
            _ => unreachable!("delete answered with a non-delete reply"),
        }
    }

    fn request_one(&self, op: BatchOp) -> BatchReply {
        let mut replies = self.run_batch(vec![op]);
        debug_assert_eq!(replies.len(), 1);
        replies.pop().expect("one reply per op")
    }

    /// Run a batch of operations, partitioned across shard groups and
    /// executed concurrently. Replies come back in input order. Ops
    /// routed to the same group keep their relative order; ops on
    /// *different* groups run concurrently, so a batch should not rely
    /// on cross-key ordering (same as issuing them from independent
    /// clients). A worker whose thread has died never hangs the caller:
    /// its ops come back as [`StoreError::ShardUnavailable`] (after
    /// failover is attempted) while other groups answer normally;
    /// quarantined groups answer [`StoreError::ShardQuarantined`]
    /// without being touched.
    ///
    /// With replication, a write reply is an acknowledgement that the
    /// write was applied by the primary **and** every in-service backup;
    /// an errored or unavailable reply means the write may or may not
    /// have been applied (the caller must treat it as unacknowledged).
    pub fn run_batch(&self, ops: Vec<BatchOp>) -> Vec<BatchReply> {
        self.run_batch_traced(ops, Vec::new())
    }

    /// [`ShardedStore::run_batch`] with trace span cells riding along.
    /// Each entry in `op_spans` is a sampled request's span plus the
    /// half-open range of flat op indexes (into `ops`) that belong to
    /// it; the span is handed to every shard group executing one of
    /// those ops, gets its shard/op-count fields filled in here, and is
    /// stamped through the queue and execute stages by the workers.
    pub fn run_batch_traced(
        &self,
        ops: Vec<BatchOp>,
        op_spans: Vec<(std::ops::Range<usize>, Arc<SpanCell>)>,
    ) -> Vec<BatchReply> {
        let groups = self.inner.groups;
        let total = ops.len();
        let mut per_group_ops: Vec<Vec<BatchOp>> = (0..groups).map(|_| Vec::new()).collect();
        let mut per_group_idx: Vec<Vec<usize>> = (0..groups).map(|_| Vec::new()).collect();
        let mut op_group: Vec<usize> = Vec::with_capacity(total);
        for (i, op) in ops.into_iter().enumerate() {
            let group = self.shard_of(op.key());
            op_group.push(group);
            per_group_idx[group].push(i);
            per_group_ops[group].push(op);
        }
        let mut per_group_spans: Vec<Vec<Arc<SpanCell>>> =
            (0..groups).map(|_| Vec::new()).collect();
        for (range, span) in op_spans {
            let mut gs: Vec<usize> = op_group[range.clone()].to_vec();
            if gs.is_empty() {
                continue;
            }
            span.set_shard(gs[0] as u32);
            gs.sort_unstable();
            gs.dedup();
            span.set_ops(range.len() as u64);
            for g in gs {
                per_group_spans[g].push(Arc::clone(&span));
            }
        }
        let mut out: Vec<Option<BatchReply>> = (0..total).map(|_| None).collect();
        for (group, replies) in
            self.run_sharded_traced(per_group_ops, per_group_spans).into_iter().enumerate()
        {
            debug_assert_eq!(replies.len(), per_group_idx[group].len());
            for (&i, reply) in per_group_idx[group].iter().zip(replies) {
                out[i] = Some(reply);
            }
        }
        out.into_iter().map(|r| r.expect("every op answered")).collect()
    }

    /// Run pre-grouped batches, one op vector per shard group, skipping
    /// the partitioning pass of [`ShardedStore::run_batch`]. This is
    /// the reactor's submission path: the network layer already groups
    /// decoded ops by shard across all of a reactor's connections, so
    /// the whole tick reaches the workers as one hand-off per shard.
    ///
    /// `per_group.len()` must equal [`ShardedStore::shards`], and every
    /// op in `per_group[g]` must satisfy `shard_of(op.key()) == g`
    /// (checked in debug builds) — a misrouted op would be applied on
    /// the wrong shard. Replies come back in the same shape: one vector
    /// per group, one reply per op in submission order. Failure
    /// semantics are identical to [`ShardedStore::run_batch`].
    pub fn run_sharded(&self, per_group: Vec<Vec<BatchOp>>) -> Vec<Vec<BatchReply>> {
        let groups = per_group.len();
        self.run_sharded_traced(per_group, (0..groups).map(|_| Vec::new()).collect())
    }

    /// [`ShardedStore::run_sharded`] with trace span cells riding along:
    /// `per_group_spans[g]` holds the cells of sampled requests whose
    /// ops landed in `per_group[g]`. The store stamps queue entry/exit
    /// and execute stages (plus verify/cold/hot attribution deltas) on
    /// the primary's copy; backup sends carry no spans so replicated
    /// writes are attributed exactly once.
    pub fn run_sharded_traced(
        &self,
        per_group: Vec<Vec<BatchOp>>,
        mut per_group_spans: Vec<Vec<Arc<SpanCell>>>,
    ) -> Vec<Vec<BatchReply>> {
        assert_eq!(per_group.len(), self.inner.groups, "one op vector per shard group");
        assert_eq!(per_group_spans.len(), self.inner.groups, "one span vector per shard group");
        #[cfg(debug_assertions)]
        for (group, gops) in per_group.iter().enumerate() {
            for op in gops {
                // A slot that has migrated at least once may legitimately
                // race an epoch flip between routing and submission; the
                // worker refuses such stragglers with `WrongShard` at
                // execution time. A mismatch on a never-moved slot is a
                // plain routing bug.
                let slot = self.inner.routing.slot_of(op.key());
                debug_assert!(
                    self.inner.routing.owner(slot) == group
                        || self.inner.routing.moved_epoch(slot) > 0,
                    "op routed to the wrong group"
                );
            }
        }
        let mut per_group_kinds: Vec<Vec<OpKind>> = Vec::with_capacity(per_group.len());
        for gops in &per_group {
            per_group_kinds.push(gops.iter().map(OpKind::of).collect());
        }
        let mut out: Vec<Option<Vec<BatchReply>>> = (0..per_group.len()).map(|_| None).collect();
        let refuse = |out: &mut Vec<Option<Vec<BatchReply>>>, group: usize, err: &StoreError| {
            out[group] =
                Some(per_group_kinds[group].iter().map(|k| k.with_err(err.clone())).collect());
        };
        // Send every group its slice first so they all work in parallel,
        // then collect. `backups` carries the receivers whose replies
        // must land before the group's writes count as acknowledged.
        struct Pending {
            group: usize,
            primary: usize,
            primary_gen: u64,
            rx: Receiver<Vec<BatchReply>>,
            backups: Vec<(usize, u64, Receiver<Vec<BatchReply>>)>,
        }
        let mut pending: Vec<Pending> = Vec::new();
        for (group, gops) in per_group.into_iter().enumerate() {
            if gops.is_empty() {
                out[group] = Some(Vec::new());
                continue;
            }
            let gspans = std::mem::take(&mut per_group_spans[group]);
            match self.dispatch_group(group, gops, gspans) {
                Ok((primary, primary_gen, rx, backups)) => {
                    pending.push(Pending { group, primary, primary_gen, rx, backups })
                }
                Err(e) => refuse(&mut out, group, &e),
            }
        }
        for p in pending {
            match p.rx.recv() {
                Ok(replies) => {
                    debug_assert_eq!(replies.len(), per_group_kinds[p.group].len());
                    self.observe_replies(p.group, p.primary, &replies);
                    out[p.group] = Some(replies);
                }
                // The primary died after accepting the request (reply
                // sender dropped during unwind): the ops are
                // unacknowledged — the caller gets the typed error, and
                // the next operation fails over.
                Err(_) => {
                    self.mark_replica_dead(p.group, p.primary, p.primary_gen);
                    refuse(&mut out, p.group, &StoreError::ShardUnavailable { shard: p.group });
                }
            }
            // Acknowledgement waits for every backup: a write is acked
            // only once applied on all in-service replicas. A backup
            // that errors or dies here degrades the group (quarantine /
            // dead + re-sync) but does not retract the primary's reply.
            for (replica, generation, brx) in p.backups {
                match brx.recv() {
                    Ok(replies) => self.observe_replies(p.group, replica, &replies),
                    Err(_) => self.mark_replica_dead(p.group, replica, generation),
                }
            }
        }
        out.into_iter().map(|r| r.expect("every group answered")).collect()
    }

    /// Route one group's op slice: pick (and if needed promote) the
    /// acting primary, then send — dual-writing to in-service backups
    /// under the group's write lock when replicated.
    #[allow(clippy::type_complexity)]
    fn dispatch_group(
        &self,
        group: usize,
        gops: Vec<BatchOp>,
        gspans: Vec<Arc<SpanCell>>,
    ) -> Result<
        (usize, u64, Receiver<Vec<BatchReply>>, Vec<(usize, u64, Receiver<Vec<BatchReply>>)>),
        StoreError,
    > {
        let inner = &self.inner;
        let ctl = &inner.ctls[group];
        // Admission first: an over-budget group refuses before anything
        // is enqueued, so the worker never spends service time on ops
        // whose callers are already backing off.
        self.admit(group, gops.len())?;
        let stamp_enqueue = |spans: &[Arc<SpanCell>]| {
            for s in spans {
                s.stamp(trace_stage::ENQUEUE);
            }
        };
        let has_writes = gops.iter().any(BatchOp::is_write);
        // Reads (and the unreplicated hot path) skip the write lock.
        if !has_writes || inner.replicas == 1 {
            let mut gops = gops;
            let mut gspans = gspans;
            for _ in 0..inner.replicas {
                let primary = self.acting_primary(group)?;
                let (tx, rx) = mpsc::channel();
                let slot = inner.slot_index(group, primary);
                // Stamp before the send: once the request is in the
                // channel the worker may stamp DEQUEUE at any moment,
                // and queue entry must not postdate queue exit. A failed
                // send retries through here and re-stamps (fetch_max
                // keeps the latest attempt).
                stamp_enqueue(&gspans);
                match self.send_to_slot(slot, Request::Ops { ops: gops, spans: gspans, reply: tx })
                {
                    Ok(generation) => return Ok((primary, generation, rx, Vec::new())),
                    Err((req, generation)) => {
                        // Worker gone: record the death, then retry via
                        // failover (promote finds the next healthy
                        // replica, if any).
                        self.mark_replica_dead(group, primary, generation);
                        match req {
                            Request::Ops { ops, spans, .. } => {
                                gops = ops;
                                gspans = spans;
                            }
                            Request::Exec(_) => unreachable!("ops request returned"),
                        }
                    }
                }
            }
            return Err(self.group_refusal(group));
        }
        let writes: Vec<BatchOp> = gops.iter().filter(|op| op.is_write()).cloned().collect();
        let guard = ctl.write_lock.lock().unwrap_or_else(|p| p.into_inner());
        // The fence is checked under the lock: the re-sync thread raises
        // it and then cycles this lock, so every write sent before the
        // barrier is in the queues the survivor will drain, and none can
        // slip in during the delta phase.
        if ctl.fence.load(Ordering::SeqCst) {
            drop(guard);
            return Err(StoreError::ShardQuarantined { shard: group });
        }
        let primary = self.acting_primary(group)?;
        let (tx, rx) = mpsc::channel();
        let pslot = inner.slot_index(group, primary);
        stamp_enqueue(&gspans);
        let primary_gen =
            match self.send_to_slot(pslot, Request::Ops { ops: gops, spans: gspans, reply: tx }) {
                Ok(generation) => generation,
                Err((_, generation)) => {
                    drop(guard);
                    self.mark_replica_dead(group, primary, generation);
                    // No transparent write retry after a mid-send death: the
                    // backups' queues may already order other writers' ops
                    // around this batch. Unacknowledged is the honest answer.
                    return Err(StoreError::ShardUnavailable { shard: group });
                }
            };
        let mut backups = Vec::new();
        for replica in 0..inner.replicas {
            if replica == primary || ctl.machine.health(replica) != ShardHealth::Healthy {
                continue;
            }
            let (btx, brx) = mpsc::channel();
            let bslot = inner.slot_index(group, replica);
            // Backups carry no spans: execute-stage attribution belongs
            // to the primary alone, not once per replica.
            let breq = Request::Ops { ops: writes.clone(), spans: Vec::new(), reply: btx };
            match self.send_to_slot(bslot, breq) {
                Ok(generation) => backups.push((replica, generation, brx)),
                Err((_, generation)) => self.mark_replica_dead(group, replica, generation),
            }
        }
        drop(guard);
        Ok((primary, primary_gen, rx, backups))
    }

    /// Send a request to a slot's worker. Returns the slot's worker
    /// generation the send was made against — any later death evidence
    /// derived from this request (a dropped reply receiver) must carry
    /// it to [`ShardedStore::mark_replica_dead`]. On failure the request
    /// is handed back (worker gone or slot empty) along with the
    /// generation the failure was observed at.
    fn send_to_slot(&self, slot: usize, req: Request<S>) -> Result<u64, (Request<S>, u64)> {
        send_to_slot_inner(&self.inner, slot, req)
    }

    /// The replica that should serve this group right now, promoting a
    /// healthy backup if the incumbent primary is out of service.
    fn acting_primary(&self, group: usize) -> Result<usize, StoreError> {
        let m = &self.inner.ctls[group].machine;
        let p = m.primary();
        if m.health(p) == ShardHealth::Healthy {
            return Ok(p);
        }
        if let Some(np) = m.promote() {
            self.record_failover(group, np);
            return Ok(np);
        }
        // A concurrent promoter may have won the race.
        let p = m.primary();
        if m.health(p) == ShardHealth::Healthy {
            return Ok(p);
        }
        Err(self.group_refusal(group))
    }

    /// The error a request routed to a fully out-of-service group must
    /// be refused with.
    fn group_refusal(&self, group: usize) -> StoreError {
        match self.group_health(group) {
            ShardHealth::Quarantined | ShardHealth::Recovering => {
                StoreError::ShardQuarantined { shard: group }
            }
            _ => StoreError::ShardUnavailable { shard: group },
        }
    }

    fn record_failover(&self, group: usize, new_primary: usize) {
        record_failover_inner(&self.inner, group, new_primary);
    }

    /// Total live keys across all groups (counted on each group's
    /// primary). Dead groups contribute nothing (no worker can be
    /// asked).
    #[allow(clippy::len_without_is_empty)] // is_empty is defined right below
    pub fn len(&self) -> u64 {
        self.try_map_shards(|s| s.len()).into_iter().flatten().sum()
    }

    /// Sum of every group's last primary-reported key count. Unlike
    /// [`ShardedStore::len`] this never blocks behind a worker queue and
    /// still counts quarantined, recovering and dead groups (at their
    /// last-known size), so monitoring stays truthful mid-incident.
    pub fn len_estimate(&self) -> u64 {
        (0..self.inner.groups)
            .map(|g| {
                let p = self.inner.ctls[g].machine.primary();
                self.inner.slots[self.inner.slot_index(g, p)].state.last_len.load(Ordering::SeqCst)
            })
            .sum()
    }

    /// Whether every reachable group is empty.
    pub fn is_empty(&self) -> bool {
        self.try_map_shards(|s| s.is_empty()).into_iter().flatten().all(|e| e)
    }

    /// Per-group Secure Cache statistics (index = group, read on the
    /// primary). `None` for stores without a Secure Cache *and* for
    /// unreachable groups.
    pub fn cache_stats(&self) -> Vec<Option<CacheStats>> {
        self.try_map_shards(|s| s.cache_stats()).into_iter().map(|s| s.flatten()).collect()
    }

    /// Cache statistics summed across groups (`None` if no shard runs a
    /// Secure Cache). `swapping` is true if *any* shard still swaps.
    pub fn aggregate_cache_stats(&self) -> Option<CacheStats> {
        let mut agg: Option<CacheStats> = None;
        for stats in self.cache_stats().into_iter().flatten() {
            let agg = agg.get_or_insert_with(CacheStats::default);
            agg.hits += stats.hits;
            agg.misses += stats.misses;
            agg.swaps += stats.swaps;
            agg.swapping |= stats.swapping;
        }
        agg
    }

    /// Enclave snapshots of every reachable group's primary (dead
    /// workers are skipped — monitoring must not panic mid-incident).
    pub fn snapshots(&self) -> Vec<EnclaveSnapshot> {
        self.try_map_shards(|s| s.enclave().snapshot()).into_iter().flatten().collect()
    }

    /// Aggregate enclave statistics across group primaries. `max_cycles`
    /// is the critical path — the wall clock of the parallel deployment.
    pub fn stats(&self) -> EnclaveStats {
        EnclaveStats::aggregate(self.snapshots())
    }

    /// Run `f` on one group's *primary* store, blocking for the result.
    /// This is the escape hatch for store-specific APIs (attack
    /// injection, memory accounting) that the generic front-end does not
    /// mirror.
    ///
    /// # Panics
    ///
    /// Panics if the primary's worker thread has died; unlike the op
    /// paths there is no result shape to carry a typed error in.
    pub fn with_shard<R, F>(&self, group: usize, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut S) -> R + Send + 'static,
    {
        let primary = self.inner.ctls[group].machine.primary();
        let slot = self.inner.slot_index(group, primary);
        let (tx, rx) = mpsc::channel();
        self.send_to_slot(
            slot,
            Request::Exec(Box::new(move |store: &mut S| {
                let _ = tx.send(f(store));
            })),
        )
        .unwrap_or_else(|_| panic!("shard worker disconnected"));
        rx.recv().expect("shard worker dropped a reply")
    }

    /// Run the same closure on every group's primary, collecting
    /// per-group results.
    pub fn map_shards<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(&mut S) -> R + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        // Dispatch to all groups before collecting any reply.
        let receivers: Vec<_> = (0..self.inner.groups)
            .map(|group| {
                let f = Arc::clone(&f);
                let (tx, rx) = mpsc::channel();
                let primary = self.inner.ctls[group].machine.primary();
                self.send_to_slot(
                    self.inner.slot_index(group, primary),
                    Request::Exec(Box::new(move |store: &mut S| {
                        let _ = tx.send(f(store));
                    })),
                )
                .unwrap_or_else(|_| panic!("shard worker disconnected"));
                rx
            })
            .collect();
        receivers.into_iter().map(|rx| rx.recv().expect("shard worker dropped a reply")).collect()
    }

    /// [`ShardedStore::map_shards`] that tolerates dead workers: a group
    /// whose primary worker is gone yields `None` (and the replica is
    /// marked dead) instead of panicking. Note this *does* wait for
    /// quarantined groups — an in-flight recovery job runs ahead of the
    /// closure in queue order.
    fn try_map_shards<R, F>(&self, f: F) -> Vec<Option<R>>
    where
        R: Send + 'static,
        F: Fn(&mut S) -> R + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let receivers: Vec<_> = (0..self.inner.groups)
            .map(|group| {
                let f = Arc::clone(&f);
                let (tx, rx) = mpsc::channel();
                let primary = self.inner.ctls[group].machine.primary();
                let sent = self.send_to_slot(
                    self.inner.slot_index(group, primary),
                    Request::Exec(Box::new(move |store: &mut S| {
                        let _ = tx.send(f(store));
                    })),
                );
                let generation = match sent {
                    Ok(generation) => Some(generation),
                    Err((_, generation)) => {
                        self.mark_replica_dead(group, primary, generation);
                        None
                    }
                };
                (group, primary, generation, rx)
            })
            .collect();
        receivers
            .into_iter()
            .map(|(group, primary, generation, rx)| {
                let generation = generation?;
                match rx.recv() {
                    Ok(r) => Some(r),
                    Err(_) => {
                        self.mark_replica_dead(group, primary, generation);
                        None
                    }
                }
            })
            .collect()
    }

    // --- health machinery -------------------------------------------------------

    /// Per-group health snapshots (index = group). Reads atomics only —
    /// never blocks on a worker, so it stays accurate mid-quarantine.
    /// A group is `Healthy` while *any* replica can serve.
    pub fn healths(&self) -> Vec<ShardHealthSnapshot> {
        (0..self.inner.groups)
            .map(|g| {
                let mut violations = 0;
                let mut recoveries = 0;
                for r in 0..self.inner.replicas {
                    let st = &self.inner.slots[self.inner.slot_index(g, r)].state;
                    violations += st.violations.load(Ordering::SeqCst);
                    recoveries += st.recoveries.load(Ordering::SeqCst);
                }
                ShardHealthSnapshot { health: self.group_health(g), violations, recoveries }
            })
            .collect()
    }

    /// Per-replica health snapshots, group-major (`group * replicas +
    /// replica`). Also refreshes the per-slot role/lag telemetry gauges.
    pub fn replica_healths(&self) -> Vec<ReplicaHealthSnapshot> {
        let inner = &self.inner;
        let mut out = Vec::with_capacity(inner.groups * inner.replicas);
        for g in 0..inner.groups {
            let m = &inner.ctls[g].machine;
            let p = m.primary();
            let plen = inner.slots[inner.slot_index(g, p)].state.last_len.load(Ordering::SeqCst);
            for r in 0..inner.replicas {
                let slot = inner.slot_index(g, r);
                let st = &inner.slots[slot].state;
                let lag = st.last_len.load(Ordering::SeqCst).abs_diff(plen);
                let role = m.role_of(r);
                let tele = &inner.tele[slot].store;
                tele.replica_role.set(u64::from(role.as_u8()));
                tele.replica_lag.set(lag);
                out.push(ReplicaHealthSnapshot {
                    group: g,
                    replica: r,
                    role,
                    health: m.health(r),
                    violations: st.violations.load(Ordering::SeqCst),
                    recoveries: st.recoveries.load(Ordering::SeqCst),
                    lag,
                });
            }
        }
        out
    }

    /// Per-group failover / re-sync counters with replica detail.
    pub fn group_stats(&self) -> Vec<GroupStats> {
        let replicas = self.replica_healths();
        (0..self.inner.groups)
            .map(|g| {
                let ctl = &self.inner.ctls[g];
                GroupStats {
                    group: g,
                    primary: ctl.machine.primary(),
                    failovers: ctl.machine.failovers(),
                    resyncs: ctl.resyncs.load(Ordering::SeqCst),
                    last_resync_error: ctl
                        .last_resync_error
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .clone(),
                    replicas: replicas.iter().filter(|r| r.group == g).cloned().collect(),
                }
            })
            .collect()
    }

    /// Current health of one group (`Healthy` while any replica serves).
    pub fn health_of(&self, group: usize) -> ShardHealth {
        self.group_health(group)
    }

    fn group_health(&self, group: usize) -> ShardHealth {
        let m = &self.inner.ctls[group].machine;
        let states: Vec<ShardHealth> = (0..m.replicas()).map(|r| m.health(r)).collect();
        if states.contains(&ShardHealth::Healthy) {
            ShardHealth::Healthy
        } else if states.contains(&ShardHealth::Recovering) {
            ShardHealth::Recovering
        } else if states.contains(&ShardHealth::Quarantined) {
            ShardHealth::Quarantined
        } else {
            ShardHealth::Dead
        }
    }

    /// Record a replica's worker as gone: mark it dead, fail over if it
    /// was the primary, and (when replicated) start a re-sync to pull a
    /// fresh replacement back into the group.
    fn mark_replica_dead(&self, group: usize, replica: usize, generation: u64) {
        mark_replica_dead_inner(&self.inner, group, replica, generation);
    }

    /// Scan a replica's replies for quarantine-triggering violations and
    /// start a recovery cycle if one is found.
    fn observe_replies(&self, group: usize, replica: usize, replies: &[BatchReply]) {
        let slot = self.inner.slot_index(group, replica);
        let mut triggers = 0u64;
        for reply in replies {
            if let Some(err) = reply.error() {
                if let StoreError::Integrity(v) = err {
                    self.inner.tele[slot].store.record_violation(v.class());
                }
                if err.is_quarantine_trigger() {
                    triggers += 1;
                }
            }
        }
        if triggers > 0 {
            self.quarantine_replica(group, replica, triggers);
        }
    }

    /// Flip a replica to `Quarantined` and start its recovery. Exactly
    /// one caller wins the CAS, so concurrent detections of the same
    /// incident start exactly one recovery.
    fn quarantine_replica(&self, group: usize, replica: usize, violations: u64) {
        quarantine_replica_inner(&self.inner, group, replica, violations);
    }

    /// Test hook: force every replica of a group to a health state.
    #[cfg(test)]
    fn force_health(&self, group: usize, health: ShardHealth) {
        let m = &self.inner.ctls[group].machine;
        for r in 0..m.replicas() {
            m.force(r, health);
        }
    }

    /// Send `f` to a group's primary worker without waiting for it to
    /// run (fire-and-forget [`ShardedStore::with_shard`]). Returns
    /// `false` if the worker is gone. Besides async maintenance work,
    /// this is the fault-injection hook: a closure that panics kills the
    /// worker thread, after which the replica is marked dead (and, when
    /// replicated, a backup is promoted).
    pub fn exec_detached<F>(&self, group: usize, f: F) -> bool
    where
        F: FnOnce(&mut S) + Send + 'static,
    {
        let primary = self.inner.ctls[group].machine.primary();
        self.exec_detached_replica(group, primary, f)
    }

    /// [`ShardedStore::exec_detached`] addressed to a specific replica.
    pub fn exec_detached_replica<F>(&self, group: usize, replica: usize, f: F) -> bool
    where
        F: FnOnce(&mut S) + Send + 'static,
    {
        let slot = self.inner.slot_index(group, replica);
        self.send_to_slot(slot, Request::Exec(Box::new(f))).is_ok()
    }

    /// Start one background maintenance ticker per shard group: every
    /// `interval` it runs a bounded [`KvStore::maintain`] pass (tier
    /// migration, log compaction, checkpointing — a no-op on untiered
    /// stores) on the group's acting primary, then refreshes its
    /// gauges. Each pass runs on the shard's own worker thread like any
    /// other request, so it never races client operations, and the
    /// ticker schedules a new pass only after the previous one reported
    /// back (no stacking). The same ticker samples the stuck-shard
    /// watchdog (see [`ShardedStore::set_watchdog_window`]) with
    /// non-blocking atomic reads, so a wedged worker cannot silence it.
    /// The tickers poll the shutdown flag and are joined by `Drop`
    /// (same lifecycle as the re-sync threads), so dropping the store
    /// mid-compaction cannot hang or leak a thread. Idempotent-ish:
    /// calling twice stacks extra tickers, so call once.
    pub fn start_maintenance(&self, interval: Duration) {
        for group in 0..self.inner.groups {
            spawn_maintainer(&self.inner, group, interval);
        }
    }
}

/// Start the periodic maintenance ticker for one group (no-op once the
/// store is shutting down).
fn spawn_maintainer<S: KvStore + Send + 'static>(
    inner: &Arc<Inner<S>>,
    group: usize,
    interval: Duration,
) {
    if inner.shutdown.load(Ordering::SeqCst) {
        return;
    }
    let inner2 = Arc::clone(inner);
    let handle = thread::Builder::new()
        .name(format!("aria-maint-{group}"))
        .spawn(move || maintain_loop(&inner2, group, interval))
        .expect("spawn maintenance thread");
    let mut reg = lock_handles(&inner.maintainers);
    reg.retain(|h| !h.is_finished());
    reg.push(handle);
}

/// Body of a group's maintenance ticker: sleep in short slices (so
/// shutdown is observed within ~10 ms), then sample the stuck-shard
/// watchdog and run one maintenance pass on the acting primary.
///
/// The watchdog samples *first* and reads atomics only — it must keep
/// firing while the worker is wedged, which is exactly when anything
/// queued behind the stall blocks. For the same reason the maintenance
/// pass is dispatched fire-and-forget with a completion flag instead
/// of synchronously: a new pass is only scheduled once the previous
/// one reported back, preserving the no-stacking backpressure (a slow
/// compaction still delays the next pass, it just no longer wedges the
/// ticker — and with it the watchdog — behind a stuck worker).
fn maintain_loop<S: KvStore + Send + 'static>(
    inner: &Arc<Inner<S>>,
    group: usize,
    interval: Duration,
) {
    let mut last_retired: Option<u64> = None;
    let mut last_progress = Instant::now();
    let pass_done = Arc::new(AtomicBool::new(true));
    // Where the outstanding pass went, to detect a respawn that dropped
    // the closure unrun (the flag would otherwise stay false forever).
    let mut pass_sent_to: Option<(usize, u64)> = None;
    loop {
        let mut remaining = interval;
        while !remaining.is_zero() {
            if inner.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let slice = remaining.min(Duration::from_millis(10));
            thread::sleep(slice);
            remaining = remaining.saturating_sub(slice);
        }
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let primary = inner.ctls[group].machine.primary();
        let slot = inner.slot_index(group, primary);
        let st = &inner.slots[slot].state;
        // --- stuck-shard watchdog (atomics only, never blocks) ---
        let retired = st.batches_retired.load(Ordering::SeqCst);
        let inflight = st.inflight_ops.load(Ordering::SeqCst);
        let window_ns = inner.watchdog_window_ns.load(Ordering::SeqCst);
        if last_retired != Some(retired) || inflight == 0 {
            // Progress (or nothing owed): reset the heartbeat. A
            // primary change lands here too via the retired mismatch.
            last_retired = Some(retired);
            last_progress = Instant::now();
        } else if window_ns > 0
            && (last_progress.elapsed().as_nanos() as u64) > window_ns
            && inner.ctls[group].machine.health(primary) == ShardHealth::Healthy
        {
            // Accepting work but retiring nothing for a full window:
            // quarantine through the health machine instead of letting
            // callers queue forever. Recovery re-admits the shard once
            // its worker verifies again (or a sibling re-syncs it).
            inner.tele[slot].store.watchdog_quarantines.inc();
            quarantine_replica_inner(inner, group, primary, 0);
            last_progress = Instant::now();
        }
        // --- maintenance pass (fire-and-forget, no stacking) ---
        if !pass_done.load(Ordering::SeqCst) {
            // The outstanding pass is lost, not just slow, if its
            // worker was respawned (generation moved): the closure was
            // dropped unrun with the old channel.
            if let Some((pslot, pgen)) = pass_sent_to {
                if inner.slots[pslot].generation.load(Ordering::SeqCst) != pgen {
                    pass_done.store(true, Ordering::SeqCst);
                }
            }
        }
        if pass_done.swap(false, Ordering::SeqCst) {
            let done = Arc::clone(&pass_done);
            let req = Request::Exec(Box::new(move |s: &mut S| {
                let _ = s.maintain();
                s.refresh_gauges();
                done.store(true, Ordering::SeqCst);
            }));
            match send_to_slot_inner(inner, slot, req) {
                Ok(generation) => pass_sent_to = Some((slot, generation)),
                Err(_) => pass_done.store(true, Ordering::SeqCst),
            }
        }
    }
}

impl<S: KvStore + Send + 'static> Drop for ShardedStore<S> {
    fn drop(&mut self) {
        teardown(&self.inner);
    }
}

/// Shut the store down: stop new re-syncs, join the in-flight ones
/// (they check the flag and bail at their next step — the workers they
/// talk to are still alive here, so they cannot hang), then close every
/// worker channel and join the workers.
fn teardown<S: KvStore + Send + 'static>(inner: &Arc<Inner<S>>) {
    inner.shutdown.store(true, Ordering::SeqCst);
    loop {
        let handles = std::mem::take(&mut *lock_handles(&inner.resyncers));
        if handles.is_empty() {
            break;
        }
        for h in handles {
            let _ = h.join();
        }
    }
    // Maintenance tickers are joined while the workers are still alive
    // so an in-flight maintenance pass they dispatched can still drain
    // normally before the worker channels close.
    loop {
        let handles = std::mem::take(&mut *lock_handles(&inner.maintainers));
        if handles.is_empty() {
            break;
        }
        for h in handles {
            let _ = h.join();
        }
    }
    for slot in &inner.slots {
        *slot.sender.write().unwrap_or_else(|p| p.into_inner()) = None;
    }
    loop {
        let handles = std::mem::take(&mut *lock_handles(&inner.workers));
        if handles.is_empty() {
            break;
        }
        for h in handles {
            let _ = h.join();
        }
    }
}

impl<S: KvStore + Send + 'static> std::fmt::Debug for ShardedStore<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("shards", &self.inner.groups)
            .field("replicas", &self.inner.replicas)
            .finish()
    }
}

/// Spawn (or respawn) the worker for one slot, building its store with
/// the stored factory *inside* the worker thread, and publish its
/// sender. Blocks until the factory reports.
pub(crate) fn spawn_worker<S: KvStore + Send + 'static>(
    inner: &Arc<Inner<S>>,
    slot: usize,
) -> Result<(), StoreError> {
    if inner.shutdown.load(Ordering::SeqCst) {
        return Err(StoreError::ShardUnavailable { shard: slot / inner.replicas });
    }
    let (tx, rx) = mpsc::sync_channel(inner.queue_depth);
    let (ready_tx, ready_rx) = mpsc::channel();
    let factory = Arc::clone(&inner.factory);
    let ctx = WorkerCtx {
        shard: slot as u32,
        group: slot / inner.replicas,
        routing: Arc::clone(&inner.routing),
        tele: Arc::clone(&inner.tele[slot]),
        slow_ops: Arc::clone(&inner.slow_ops),
        state: Arc::clone(&inner.slots[slot].state),
    };
    let handle = thread::Builder::new()
        .name(format!("aria-shard-{slot}"))
        .spawn(move || match factory(slot) {
            Ok(store) => {
                let _ = ready_tx.send(Ok(()));
                worker_loop(store, rx, ctx);
            }
            Err(e) => {
                let _ = ready_tx.send(Err(e));
            }
        })
        .expect("spawn shard worker thread");
    match ready_rx.recv() {
        Ok(Ok(())) => {
            // Replacing the sender drops the previous worker's channel;
            // that worker drains what it already accepted and exits (its
            // handle stays in the registry and is joined at teardown).
            // The generation bump happens under the same write lock, so
            // no sender can be observed with a mismatched generation.
            let mut sender = inner.slots[slot].sender.write().unwrap_or_else(|p| p.into_inner());
            inner.slots[slot].generation.fetch_add(1, Ordering::SeqCst);
            // Ops charged to a dead predecessor will never retire;
            // start the fresh worker's queue estimate from zero.
            inner.slots[slot].state.inflight_ops.store(0, Ordering::SeqCst);
            *sender = Some(tx);
            drop(sender);
            let mut workers = lock_handles(&inner.workers);
            workers.retain(|h| !h.is_finished());
            workers.push(handle);
            Ok(())
        }
        Ok(Err(e)) => {
            let _ = handle.join();
            Err(e)
        }
        Err(_) => panic!("shard worker panicked during construction"),
    }
}

/// Run `f` on a slot's worker and wait for the result; a gone worker
/// yields [`StoreError::ShardUnavailable`] instead of a hang or panic.
pub(crate) fn exec_on_slot<S, R, F>(
    inner: &Arc<Inner<S>>,
    group: usize,
    slot: usize,
    f: F,
) -> Result<R, StoreError>
where
    S: KvStore + Send + 'static,
    R: Send + 'static,
    F: FnOnce(&mut S) -> R + Send + 'static,
{
    let (tx, rx) = mpsc::channel();
    let req = Request::Exec(Box::new(move |store: &mut S| {
        let _ = tx.send(f(store));
    }));
    let sent = {
        let guard = inner.slots[slot].sender.read().unwrap_or_else(|p| p.into_inner());
        match &*guard {
            Some(s) => s.send(req).is_ok(),
            None => false,
        }
    };
    if !sent {
        return Err(StoreError::ShardUnavailable { shard: group });
    }
    rx.recv().map_err(|_| StoreError::ShardUnavailable { shard: group })
}

/// Send a request to a slot's worker (the free-function form —
/// background threads like the maintenance ticker hold only an
/// `Arc<Inner>`, never a `ShardedStore`, whose `Drop` runs teardown).
/// Returns the slot's worker generation the send was made against; on
/// failure the request is handed back along with the generation the
/// failure was observed at. A successful `Ops` send charges the ops to
/// the slot's in-flight counter — the worker retires them.
pub(crate) fn send_to_slot_inner<S: KvStore + Send + 'static>(
    inner: &Arc<Inner<S>>,
    slot: usize,
    req: Request<S>,
) -> Result<u64, (Request<S>, u64)> {
    let guard = inner.slots[slot].sender.read().unwrap_or_else(|p| p.into_inner());
    // Read under the guard: a respawn bumps the generation while
    // holding the write lock, so a sender observed here belongs to
    // exactly this generation.
    let generation = inner.slots[slot].generation.load(Ordering::SeqCst);
    let ops_sent = match &req {
        Request::Ops { ops, .. } => ops.len() as u64,
        Request::Exec(_) => 0,
    };
    match &*guard {
        Some(tx) => {
            // Charge in-flight BEFORE the send: once the request is in
            // the channel the worker may retire it (and run its
            // saturating decrement against 0) before a post-send
            // increment would execute, leaking the counter upward for
            // the rest of the worker's life.
            if ops_sent > 0 {
                inner.slots[slot].state.inflight_ops.fetch_add(ops_sent, Ordering::SeqCst);
            }
            match tx.send(req) {
                Ok(()) => Ok(generation),
                Err(e) => {
                    if ops_sent > 0 {
                        let _ = inner.slots[slot].state.inflight_ops.fetch_update(
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                            |v| Some(v.saturating_sub(ops_sent)),
                        );
                    }
                    Err((e.0, generation))
                }
            }
        }
        None => Err((req, generation)),
    }
}

/// Free-function form of [`ShardedStore::record_failover`].
fn record_failover_inner<S: KvStore + Send + 'static>(
    inner: &Arc<Inner<S>>,
    group: usize,
    new_primary: usize,
) {
    let slot = inner.slot_index(group, new_primary);
    inner.tele[slot].store.failovers.inc();
    for r in 0..inner.replicas {
        let role = inner.ctls[group].machine.role_of(r);
        inner.tele[inner.slot_index(group, r)].store.replica_role.set(u64::from(role.as_u8()));
    }
}

/// Free-function form of [`ShardedStore::mark_replica_dead`]: record a
/// replica's worker as gone, fail over if it was the primary, and
/// (when replicated) start a re-sync.
fn mark_replica_dead_inner<S: KvStore + Send + 'static>(
    inner: &Arc<Inner<S>>,
    group: usize,
    replica: usize,
    generation: u64,
) {
    let slot = inner.slot_index(group, replica);
    // Stale evidence: a send/recv failure observed against an older
    // worker incarnation says nothing about the current one — the
    // replica may have been respawned, re-synced and re-admitted
    // since that batch was dispatched. (A respawn bumps the
    // generation *before* the rejoiner leaves `Recovering`, and
    // `mark_dead` refuses `Recovering`, so current-generation
    // evidence can never race a respawn into killing the fresh
    // worker either.)
    if inner.slots[slot].generation.load(Ordering::SeqCst) != generation {
        return;
    }
    let m = &inner.ctls[group].machine;
    let Some(prev) = m.mark_dead(replica) else { return };
    inner.tele[slot].store.record_health_transition(prev.as_u8(), ShardHealth::Dead.as_u8());
    if m.primary() == replica {
        if let Some(np) = m.promote() {
            record_failover_inner(inner, group, np);
        }
    }
    // A previously-healthy replica rejoins via re-sync; a death from
    // Quarantined already has a recovery claimant in flight (the
    // claim CAS retargets Dead → Recovering).
    if inner.replicas > 1 && prev == ShardHealth::Healthy {
        spawn_resync(inner, group, replica);
    }
}

/// Free-function form of [`ShardedStore::quarantine_replica`], also
/// driven by the stuck-shard watchdog on the maintenance ticker.
fn quarantine_replica_inner<S: KvStore + Send + 'static>(
    inner: &Arc<Inner<S>>,
    group: usize,
    replica: usize,
    violations: u64,
) {
    let slot = inner.slot_index(group, replica);
    inner.slots[slot].state.violations.fetch_add(violations, Ordering::SeqCst);
    let m = &inner.ctls[group].machine;
    if !m.quarantine(replica) {
        // Already quarantined, recovering, or dead.
        return;
    }
    inner.tele[slot]
        .store
        .record_health_transition(ShardHealth::Healthy.as_u8(), ShardHealth::Quarantined.as_u8());
    if m.primary() == replica {
        if let Some(np) = m.promote() {
            record_failover_inner(inner, group, np);
        }
    }
    if inner.replicas > 1 {
        spawn_resync(inner, group, replica);
    } else {
        queue_local_recovery_inner(inner, group);
    }
}

/// Unreplicated recovery: run [`KvStore::recover`] on the shard's own
/// worker thread, up to [`RECOVERY_ATTEMPTS`] times. Queued like any
/// other request, so it runs after whatever the worker already
/// accepted — including the stall that a watchdog quarantine caught —
/// and re-admits the shard once the store verifies again.
fn queue_local_recovery_inner<S: KvStore + Send + 'static>(inner: &Arc<Inner<S>>, group: usize) {
    let inner2 = Arc::clone(inner);
    let slot = inner.slot_index(group, 0);
    let recovery = Request::Exec(Box::new(move |store: &mut S| {
        let m = &inner2.ctls[group].machine;
        let tele = &inner2.tele[slot].store;
        let Some(prev) = m.claim_recovery(0) else { return };
        tele.record_health_transition(prev.as_u8(), ShardHealth::Recovering.as_u8());
        for _ in 0..RECOVERY_ATTEMPTS {
            if store.recover().is_ok() {
                inner2.slots[slot].state.recoveries.fetch_add(1, Ordering::SeqCst);
                if m.readmit(0) {
                    tele.record_health_transition(
                        ShardHealth::Recovering.as_u8(),
                        ShardHealth::Healthy.as_u8(),
                    );
                }
                return;
            }
        }
        // The untrusted state cannot be re-verified: the shard never
        // re-admits — answering from it could ack corrupt data.
        if m.fail_recovery(0) {
            tele.record_health_transition(
                ShardHealth::Recovering.as_u8(),
                ShardHealth::Dead.as_u8(),
            );
        }
    }));
    if let Err((_, generation)) = send_to_slot_inner(inner, slot, recovery) {
        mark_replica_dead_inner(inner, group, 0, generation);
    }
}

/// Start the single-flight re-sync thread for a replica (no-op once the
/// store is shutting down). The registry is reaped as it grows and
/// drained by [`teardown`].
fn spawn_resync<S: KvStore + Send + 'static>(inner: &Arc<Inner<S>>, group: usize, replica: usize) {
    if inner.shutdown.load(Ordering::SeqCst) {
        return;
    }
    let inner2 = Arc::clone(inner);
    let handle = thread::Builder::new()
        .name(format!("aria-resync-{group}-{replica}"))
        .spawn(move || resync_replica(&inner2, group, replica))
        .expect("spawn re-sync thread");
    let mut reg = lock_handles(&inner.resyncers);
    reg.retain(|h| !h.is_finished());
    reg.push(handle);
}

/// Anti-entropy re-sync of one replica from a surviving sibling (module
/// docs, DESIGN.md §13). Runs on its own thread; single-flight via
/// [`GroupHealthMachine::claim_recovery`].
fn resync_replica<S: KvStore + Send + 'static>(
    inner: &Arc<Inner<S>>,
    group: usize,
    replica: usize,
) {
    let ctl = &inner.ctls[group];
    let m = &ctl.machine;
    let slot = inner.slot_index(group, replica);
    let tele = Arc::clone(&inner.tele[slot]);
    let Some(prev) = m.claim_recovery(replica) else { return };
    tele.store.record_health_transition(prev.as_u8(), ShardHealth::Recovering.as_u8());
    let fail = |err: StoreError| {
        *ctl.last_resync_error.lock().unwrap_or_else(|p| p.into_inner()) = Some(err);
        if m.fail_recovery(replica) {
            tele.store.record_health_transition(
                ShardHealth::Recovering.as_u8(),
                ShardHealth::Dead.as_u8(),
            );
        }
    };
    if inner.shutdown.load(Ordering::SeqCst) {
        fail(StoreError::ShardUnavailable { shard: group });
        return;
    }
    // Survivor: a healthy sibling, preferring the acting primary.
    let p = m.primary();
    let survivor = if p != replica && m.health(p) == ShardHealth::Healthy {
        Some(p)
    } else {
        (0..inner.replicas).find(|&r| r != replica && m.health(r) == ShardHealth::Healthy)
    };
    let Some(survivor) = survivor else {
        // No surviving replica to stream from. If this replica's own
        // worker is still alive (quarantined, not crashed) fall back to
        // the in-place self-audit; a fresh respawn without a survivor to
        // verify against could silently drop acknowledged writes, so a
        // crashed last replica stays dead.
        match exec_on_slot(inner, group, slot, |store: &mut S| {
            for _ in 0..RECOVERY_ATTEMPTS {
                if store.recover().is_ok() {
                    return true;
                }
            }
            false
        }) {
            Ok(true) => {
                inner.slots[slot].state.recoveries.fetch_add(1, Ordering::SeqCst);
                if m.readmit(replica) {
                    tele.store.record_health_transition(
                        ShardHealth::Recovering.as_u8(),
                        ShardHealth::Healthy.as_u8(),
                    );
                }
                if let Some(np) = m.promote() {
                    let pslot = inner.slot_index(group, np);
                    inner.tele[pslot].store.failovers.inc();
                }
            }
            Ok(false) => fail(StoreError::ShardQuarantined { shard: group }),
            Err(e) => fail(e),
        }
        return;
    };
    let sslot = inner.slot_index(group, survivor);
    // The rejoiner always restarts from a fresh store (own enclave, own
    // heap): its previous untrusted state is condemned wholesale rather
    // than patched, and every byte it will serve arrives through the
    // verified export stream below.
    if let Err(e) = spawn_worker(inner, slot) {
        fail(e);
        return;
    }
    let mut streamed_bytes = 0u64;
    // Phase 1 (live): bulk-copy a consistent snapshot of the survivor's
    // verified contents while the group keeps serving writes.
    let pairs1 = match exec_on_slot(inner, group, sslot, |s: &mut S| content_root_of(s)) {
        Ok(Ok((pairs, _root))) => pairs,
        Ok(Err(e)) => {
            fail(e);
            return;
        }
        Err(e) => {
            fail(e);
            return;
        }
    };
    for chunk in pairs1.chunks(RESYNC_APPLY_CHUNK) {
        if inner.shutdown.load(Ordering::SeqCst) {
            fail(StoreError::ShardUnavailable { shard: group });
            return;
        }
        streamed_bytes += chunk.iter().map(|(k, v)| (k.len() + v.len()) as u64).sum::<u64>();
        let owned: Vec<(Vec<u8>, Vec<u8>)> = chunk.to_vec();
        let applied = exec_on_slot(inner, group, slot, move |s: &mut S| {
            let refs: Vec<(&[u8], &[u8])> =
                owned.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
            s.put_batch(&refs).into_iter().find_map(Result::err)
        });
        match applied {
            Ok(None) => {}
            Ok(Some(e)) => {
                fail(e);
                return;
            }
            Err(e) => {
                fail(e);
                return;
            }
        }
    }
    // Phase 2 (fenced delta): freeze writes, cycle the write lock so
    // every pre-fence write is in the survivor's queue, then export
    // again — the exec below queues *behind* those writes, making the
    // export a true barrier snapshot.
    ctl.fence.store(true, Ordering::SeqCst);
    drop(ctl.write_lock.lock().unwrap_or_else(|p| p.into_inner()));
    let verdict =
        resync_delta_and_verify(inner, group, replica, sslot, slot, pairs1, &mut streamed_bytes);
    match verdict {
        Ok(()) => {
            ctl.resyncs.fetch_add(1, Ordering::SeqCst);
            inner.slots[slot].state.recoveries.fetch_add(1, Ordering::SeqCst);
            tele.store.resyncs.inc();
            tele.store.resync_bytes.observe(streamed_bytes);
            // Re-admit while the fence still holds writes out: once the
            // fence drops, any writer that sees the replica healthy will
            // also reach its (now fully caught-up) queue.
            if m.readmit(replica) {
                tele.store.record_health_transition(
                    ShardHealth::Recovering.as_u8(),
                    ShardHealth::Healthy.as_u8(),
                );
            }
            if let Some(np) = m.promote() {
                let pslot = inner.slot_index(group, np);
                inner.tele[pslot].store.failovers.inc();
            }
        }
        Err(e) => fail(e),
    }
    ctl.fence.store(false, Ordering::SeqCst);
}

/// The fenced tail of a re-sync: export the survivor's barrier
/// snapshot, apply the delta to the rejoiner, then compare content
/// roots — each side's root computed inside its own enclave from its
/// own MAC-verified reads.
fn resync_delta_and_verify<S: KvStore + Send + 'static>(
    inner: &Arc<Inner<S>>,
    group: usize,
    _replica: usize,
    survivor_slot: usize,
    rejoiner_slot: usize,
    pairs1: Vec<(Vec<u8>, Vec<u8>)>,
    streamed_bytes: &mut u64,
) -> Result<(), StoreError> {
    let (pairs2, root2) =
        exec_on_slot(inner, group, survivor_slot, |s: &mut S| content_root_of(s))??;
    let mut have: HashMap<Vec<u8>, Vec<u8>> = pairs1.into_iter().collect();
    let mut upserts: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    for (k, v) in &pairs2 {
        if have.remove(k).as_deref() != Some(v.as_slice()) {
            upserts.push((k.clone(), v.clone()));
        }
    }
    let deletes: Vec<Vec<u8>> = have.into_keys().collect();
    for chunk in upserts.chunks(RESYNC_APPLY_CHUNK) {
        *streamed_bytes += chunk.iter().map(|(k, v)| (k.len() + v.len()) as u64).sum::<u64>();
        let owned = chunk.to_vec();
        exec_on_slot(inner, group, rejoiner_slot, move |s: &mut S| {
            let refs: Vec<(&[u8], &[u8])> =
                owned.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
            s.put_batch(&refs).into_iter().find_map(Result::err)
        })?
        .map_or(Ok(()), Err)?;
    }
    if !deletes.is_empty() {
        *streamed_bytes += deletes.iter().map(|k| k.len() as u64).sum::<u64>();
        exec_on_slot(inner, group, rejoiner_slot, move |s: &mut S| {
            deletes.into_iter().find_map(|k| s.delete(&k).err())
        })?
        .map_or(Ok(()), Err)?;
    }
    // Chaos hook: a replica that silently diverged mid-sync must be
    // caught by the root comparison, never re-admitted.
    let inject = {
        let guard = inner.resync_fault.read().unwrap_or_else(|p| p.into_inner());
        guard.as_ref().is_some_and(|hook| hook(group))
    };
    if inject {
        exec_on_slot(inner, group, rejoiner_slot, |s: &mut S| {
            let _ = s.put(b"\xffaria-divergence-injected", b"\xff");
        })?;
    }
    let my_root = exec_on_slot(inner, group, rejoiner_slot, |s: &mut S| {
        content_root_of(s).map(|(_, root)| root)
    })??;
    if my_root != root2 {
        return Err(StoreError::ReplicaDiverged { shard: group });
    }
    Ok(())
}

fn worker_loop<S: KvStore>(mut store: S, rx: Receiver<Request<S>>, ctx: WorkerCtx) {
    store.attach_telemetry(Arc::clone(&ctx.tele));
    store.refresh_gauges();
    ctx.state.last_len.store(store.len(), Ordering::SeqCst);
    while let Ok(first) = rx.recv() {
        // Drain whatever else queued up while we were busy; under load
        // this turns independent client requests into one wakeup.
        let mut batch = vec![first];
        while batch.len() < WORKER_DRAIN_LIMIT {
            match rx.try_recv() {
                Ok(req) => batch.push(req),
                Err(_) => break,
            }
        }
        // Group commit: every Ops reply in this drained batch is held
        // back until one covering `flush` has made the whole window
        // durable — an acknowledgement is never issued for a write a
        // crash could still lose. Stores without a durability log
        // flush as a no-op and nothing changes for them.
        let mut held: Vec<(Sender<Vec<BatchReply>>, Vec<BatchReply>)> = Vec::new();
        for req in batch {
            match req {
                Request::Ops { ops, spans, reply } => {
                    let n = ops.len() as u64;
                    let started = Instant::now();
                    ctx.tele.store.batch_size.observe(n);
                    // Trace stamps and attribution baselines only when a
                    // sampled request rode along (rare); the un-sampled
                    // hot path sees one `is_empty` branch.
                    let trace_base = if spans.is_empty() {
                        None
                    } else {
                        for s in &spans {
                            s.stamp(trace_stage::DEQUEUE);
                            s.stamp(trace_stage::EXEC_START);
                        }
                        let t = &ctx.tele;
                        Some((
                            t.cache.verify_depth.sum(),
                            t.store.cold_read_latency.count(),
                            t.cache.hits.get(),
                        ))
                    };
                    let replies = apply_ops_validated(&mut store, ops, &ctx);
                    if let Some((verify0, cold0, hot0)) = trace_base {
                        let t = &ctx.tele;
                        let verify = t.cache.verify_depth.sum().saturating_sub(verify0);
                        let cold = t.store.cold_read_latency.count().saturating_sub(cold0);
                        let hot = t.cache.hits.get().saturating_sub(hot0);
                        for s in &spans {
                            s.stamp(trace_stage::EXEC_END);
                            // Batch-level deltas: every sampled span in
                            // the batch shares the coalesced run's cost.
                            s.add_attribution(verify, cold, hot);
                        }
                    }
                    // Publish the new size before the reply so a client
                    // that saw its ack also sees the updated estimate.
                    ctx.state.last_len.store(store.len(), Ordering::SeqCst);
                    // Retire before replying: admission sees the queue
                    // shrink no later than the caller sees its ack.
                    let per_op = (started.elapsed().as_nanos() as u64) / n.max(1);
                    let prev = ctx.state.ewma_op_ns.load(Ordering::Relaxed);
                    let next = if prev == 0 { per_op } else { prev - prev / 8 + per_op / 8 };
                    ctx.state.ewma_op_ns.store(next, Ordering::Relaxed);
                    // Saturating: ops queued to a dead predecessor were
                    // reset on respawn, so this worker must not drive
                    // the counter through zero.
                    let _ = ctx.state.inflight_ops.fetch_update(
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                        |v| Some(v.saturating_sub(n)),
                    );
                    ctx.state.batches_retired.fetch_add(1, Ordering::SeqCst);
                    held.push((reply, replies));
                }
                Request::Exec(f) => {
                    // Exec closures can do anything (recovery, attack
                    // injection), so re-publish the size afterwards.
                    f(&mut store);
                    ctx.state.last_len.store(store.len(), Ordering::SeqCst);
                }
            }
        }
        if !held.is_empty() {
            if let Err(e) = store.flush() {
                // The covering fsync failed: nothing in this window is
                // provably durable, so no write in it may be
                // acknowledged. Reads stand — they reflect in-memory
                // state that is correct regardless of durability.
                for (_, replies) in &mut held {
                    for r in replies.iter_mut() {
                        match r {
                            BatchReply::Put(res) if res.is_ok() => *res = Err(e.clone()),
                            BatchReply::Delete(res) if res.is_ok() => *res = Err(e.clone()),
                            _ => {}
                        }
                    }
                }
            }
            for (reply, replies) in held {
                // The client may have given up (dropped the receiver);
                // the work is still applied.
                let _ = reply.send(replies);
            }
        }
        store.refresh_gauges();
    }
}

/// [`apply_ops`] behind the execution-time routing check: an op whose
/// slot this worker's group no longer owns is refused with a typed
/// [`StoreError::WrongShard`] (the op was routed before an epoch flip
/// landed — applying it here could read or mutate state the new owner
/// is now authoritative for), and a *write* to a slot frozen by an
/// in-flight migration delta is refused retryably. Both refusals are
/// decided on this worker's own thread, so they are totally ordered
/// with the migration driver's barrier Execs on the same queue — the
/// property the zero-acked-write-loss argument rests on (DESIGN.md §18).
fn apply_ops_validated<S: KvStore>(
    store: &mut S,
    ops: Vec<BatchOp>,
    ctx: &WorkerCtx,
) -> Vec<BatchReply> {
    let mut verdicts: Vec<Option<BatchReply>> = Vec::with_capacity(ops.len());
    let mut kept: Vec<BatchOp> = Vec::with_capacity(ops.len());
    let mut refused = false;
    for op in ops {
        let slot = ctx.routing.slot_of(op.key());
        let owner = ctx.routing.owner(slot);
        if owner != ctx.group {
            refused = true;
            verdicts.push(Some(OpKind::of(&op).with_err(StoreError::WrongShard {
                shard: ctx.group,
                hint: owner,
                epoch: ctx.routing.epoch(),
            })));
        } else if op.is_write() && ctx.routing.is_frozen(slot) {
            // Migration delta barrier: the write is refused, never
            // applied, never acknowledged — the client retries once the
            // slot lands on its new owner.
            refused = true;
            verdicts.push(Some(
                OpKind::of(&op).with_err(StoreError::ShardQuarantined { shard: ctx.group }),
            ));
        } else {
            verdicts.push(None);
            kept.push(op);
        }
    }
    if !refused {
        return apply_ops(store, kept, ctx);
    }
    let mut applied = apply_ops(store, kept, ctx).into_iter();
    verdicts
        .into_iter()
        .map(|v| v.unwrap_or_else(|| applied.next().expect("one reply per kept op")))
        .collect()
}

/// Pre-segment readings of the per-shard activity counters. The slow-op
/// tracer attributes a run's time to stages by differencing these
/// around the run — no per-stage clocks on the hot path.
struct SegmentProbe {
    start: Instant,
    index_probes: u64,
    counter_fetches: u64,
    verify_sum: u64,
    admit_evict: u64,
    crypt_bytes: u64,
}

impl SegmentProbe {
    fn begin<S: KvStore>(store: &S, ctx: &WorkerCtx) -> Option<SegmentProbe> {
        if !aria_telemetry::enabled() {
            return None;
        }
        let t = &ctx.tele;
        Some(SegmentProbe {
            start: Instant::now(),
            index_probes: t.store.index_probes.get(),
            counter_fetches: t.cache.hits.get() + t.cache.misses.get(),
            verify_sum: t.cache.verify_depth.sum(),
            admit_evict: t.cache.inserts.get() + t.cache.evictions.get(),
            crypt_bytes: store.enclave().bytes_crypted(),
        })
    }

    /// Close the segment: record per-op latency for the run and, if the
    /// amortized per-op time crossed the tracer threshold, a structured
    /// slow-op span built from the counter deltas.
    fn finish<S: KvStore>(
        self,
        store: &S,
        ctx: &WorkerCtx,
        kind: TeleOpKind,
        first_key: &[u8],
        n: u64,
    ) {
        let elapsed = self.start.elapsed().as_nanos() as u64;
        let per_op = elapsed / n.max(1);
        let t = &ctx.tele;
        match kind {
            TeleOpKind::Get => t.store.get_latency.observe_n(per_op, n),
            TeleOpKind::Put => t.store.put_latency.observe_n(per_op, n),
            TeleOpKind::Delete => t.store.delete_latency.observe_n(per_op, n),
            TeleOpKind::Other => {}
        }
        if per_op < ctx.slow_ops.threshold_nanos() {
            return;
        }
        ctx.slow_ops.record(SlowOp {
            seq: 0, // assigned by the tracer
            shard: ctx.shard,
            kind,
            key_hash: splitmix64(fnv1a(first_key)),
            batch: n.min(u32::MAX as u64) as u32,
            total_nanos: elapsed,
            index_probes: t.store.index_probes.get().saturating_sub(self.index_probes),
            counter_fetches: (t.cache.hits.get() + t.cache.misses.get())
                .saturating_sub(self.counter_fetches),
            verify_depth: t.cache.verify_depth.sum().saturating_sub(self.verify_sum),
            cache_admit_evict: (t.cache.inserts.get() + t.cache.evictions.get())
                .saturating_sub(self.admit_evict),
            crypt_bytes: store.enclave().bytes_crypted().saturating_sub(self.crypt_bytes),
        });
    }
}

/// Apply a batch, feeding maximal same-kind runs to the batched trait
/// methods so stores that amortize per-request costs get to.
fn apply_ops<S: KvStore>(store: &mut S, ops: Vec<BatchOp>, ctx: &WorkerCtx) -> Vec<BatchReply> {
    let mut out = Vec::with_capacity(ops.len());
    let mut i = 0;
    while i < ops.len() {
        let probe = SegmentProbe::begin(store, ctx);
        let (kind, j) = match &ops[i] {
            BatchOp::Get(_) => {
                let mut j = i;
                while j < ops.len() && matches!(ops[j], BatchOp::Get(_)) {
                    j += 1;
                }
                let keys: Vec<&[u8]> = ops[i..j].iter().map(BatchOp::key).collect();
                out.extend(store.multi_get(&keys).into_iter().map(BatchReply::Get));
                (TeleOpKind::Get, j)
            }
            BatchOp::Put(..) => {
                let mut j = i;
                while j < ops.len() && matches!(ops[j], BatchOp::Put(..)) {
                    j += 1;
                }
                let pairs: Vec<(&[u8], &[u8])> = ops[i..j]
                    .iter()
                    .map(|op| match op {
                        BatchOp::Put(k, v) => (k.as_slice(), v.as_slice()),
                        _ => unreachable!("run contains only puts"),
                    })
                    .collect();
                out.extend(store.put_batch(&pairs).into_iter().map(BatchReply::Put));
                (TeleOpKind::Put, j)
            }
            BatchOp::Delete(_) => {
                let mut j = i;
                while j < ops.len() && matches!(ops[j], BatchOp::Delete(_)) {
                    j += 1;
                }
                for op in &ops[i..j] {
                    out.push(BatchReply::Delete(store.delete(op.key())));
                }
                (TeleOpKind::Delete, j)
            }
        };
        if let Some(probe) = probe {
            probe.finish(store, ctx, kind, ops[i].key(), (j - i) as u64);
        }
        i = j;
    }
    out
}

pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Finalizing mixer (splitmix64): decorrelates shard routing from the
/// in-shard bucket hash, which is the raw FNV digest modulo a power of
/// two. Public because it is also a convenient, dependency-free PRNG
/// step (chain it over its own output) for jitter and test seeding.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AriaHash, StoreConfig};
    use aria_sim::Enclave;

    fn small_sharded(shards: usize) -> ShardedStore<AriaHash> {
        ShardedStore::with_shards(shards, |_| {
            AriaHash::new(StoreConfig::for_keys(4_096), Arc::new(Enclave::with_default_epc()))
        })
        .unwrap()
    }

    fn replicated(groups: usize, replicas: usize) -> ShardedStore<AriaHash> {
        ShardedStore::with_replicas(groups, replicas, DEFAULT_QUEUE_DEPTH, |_| {
            AriaHash::new(StoreConfig::for_keys(4_096), Arc::new(Enclave::with_default_epc()))
        })
        .unwrap()
    }

    #[test]
    fn sharded_store_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedStore<AriaHash>>();
    }

    #[test]
    fn basic_ops_round_trip() {
        let store = small_sharded(4);
        assert!(store.is_empty());
        store.put(b"alpha", b"1").unwrap();
        store.put(b"beta", b"2").unwrap();
        assert_eq!(store.get(b"alpha").unwrap().unwrap(), b"1");
        assert_eq!(store.get(b"missing").unwrap(), None);
        assert_eq!(store.len(), 2);
        assert!(store.delete(b"alpha").unwrap());
        assert!(!store.delete(b"alpha").unwrap());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn drop_mid_maintenance_joins_tickers() {
        use crate::tiered::{TieredOptions, TieredStore};
        let dir = std::env::temp_dir().join(format!("aria-sharded-maint-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir2 = dir.clone();
        let store = ShardedStore::with_shards(2, move |slot| {
            let hot =
                AriaHash::new(StoreConfig::for_keys(4_096), Arc::new(Enclave::with_default_epc()))?;
            let opts = TieredOptions::new(dir2.join(format!("shard-{slot}")))
                .segment_bytes(4_096)
                .hot_budget_bytes(2 << 10)
                .checkpoint_every(64)
                .compact_min_dead_ratio(0.2);
            TieredStore::open(hot, &[0x42; 16], opts)
        })
        .unwrap();
        store.start_maintenance(Duration::from_millis(1));
        // Churn hard enough that migration, compaction and checkpoints
        // are all in flight when the store drops.
        for round in 0..10u8 {
            for i in 0..64u32 {
                store.put(format!("k{i}").as_bytes(), &[round; 128]).unwrap();
            }
        }
        std::thread::sleep(Duration::from_millis(20));
        // Drop must join the tickers mid-pass without hanging or
        // panicking; the harness timeout is the regression detector.
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_batch_preserves_input_order() {
        let store = small_sharded(4);
        let mut ops = Vec::new();
        for i in 0..64u32 {
            ops.push(BatchOp::Put(format!("key{i}").into_bytes(), i.to_le_bytes().to_vec()));
        }
        for reply in store.run_batch(ops) {
            assert!(matches!(reply, BatchReply::Put(Ok(()))));
        }
        let gets: Vec<BatchOp> =
            (0..64u32).map(|i| BatchOp::Get(format!("key{i}").into_bytes())).collect();
        for (i, reply) in store.run_batch(gets).into_iter().enumerate() {
            match reply {
                BatchReply::Get(Ok(Some(v))) => assert_eq!(v, (i as u32).to_le_bytes()),
                other => panic!("op {i}: unexpected reply {other:?}"),
            }
        }
    }

    #[test]
    fn run_sharded_matches_run_batch() {
        let store = small_sharded(4);
        // Pre-group the ops exactly as the reactor would, submit via
        // the pre-grouped path, and check shape + contents.
        let mut per_group: Vec<Vec<BatchOp>> = (0..4).map(|_| Vec::new()).collect();
        let mut group_of: Vec<usize> = Vec::new();
        for i in 0..48u32 {
            let key = format!("rs{i}").into_bytes();
            let g = store.shard_of(&key);
            group_of.push(g);
            per_group[g].push(BatchOp::Put(key, i.to_le_bytes().to_vec()));
        }
        let replies = store.run_sharded(per_group.clone());
        assert_eq!(replies.len(), 4);
        for (g, group_replies) in replies.iter().enumerate() {
            assert_eq!(group_replies.len(), per_group[g].len(), "group {g} reply shape");
            assert!(group_replies.iter().all(|r| matches!(r, BatchReply::Put(Ok(())))));
        }
        // Every key is readable back through the ordinary path.
        for i in 0..48u32 {
            let key = format!("rs{i}").into_bytes();
            assert_eq!(store.get(&key).unwrap().unwrap(), i.to_le_bytes());
        }
        // Reads through run_sharded see the same data, and empty groups
        // answer with empty vectors.
        let mut gets: Vec<Vec<BatchOp>> = (0..4).map(|_| Vec::new()).collect();
        let key0 = b"rs0".to_vec();
        gets[group_of[0]].push(BatchOp::Get(key0));
        let got = store.run_sharded(gets);
        for (g, group_replies) in got.iter().enumerate() {
            if g == group_of[0] {
                assert_eq!(
                    group_replies,
                    &vec![BatchReply::Get(Ok(Some(0u32.to_le_bytes().to_vec())))]
                );
            } else {
                assert!(group_replies.is_empty(), "group {g} had no ops");
            }
        }
    }

    #[test]
    fn mixed_batch_matches_sequential_semantics() {
        let store = small_sharded(3);
        let ops = vec![
            BatchOp::Put(b"a".to_vec(), b"1".to_vec()),
            BatchOp::Put(b"b".to_vec(), b"2".to_vec()),
            BatchOp::Get(b"a".to_vec()),
            BatchOp::Delete(b"b".to_vec()),
            BatchOp::Get(b"b".to_vec()),
        ];
        let replies = store.run_batch(ops);
        assert!(matches!(replies[0], BatchReply::Put(Ok(()))));
        assert!(matches!(replies[1], BatchReply::Put(Ok(()))));
        // a and b may land on different shards, so only same-shard
        // ordering is guaranteed; a's get follows a's put on a's shard.
        assert_eq!(replies[2], BatchReply::Get(Ok(Some(b"1".to_vec()))));
        assert_eq!(replies[3], BatchReply::Delete(Ok(true)));
        assert_eq!(replies[4], BatchReply::Get(Ok(None)));
    }

    #[test]
    fn partitioning_is_stable_and_spread() {
        let store = small_sharded(4);
        let mut used = [0u32; 4];
        for i in 0..256u32 {
            let key = format!("user:{i}");
            let first = store.shard_of(key.as_bytes());
            assert_eq!(first, store.shard_of(key.as_bytes()));
            used[first] += 1;
        }
        // All shards get meaningful traffic from a uniform key set.
        for (shard, &count) in used.iter().enumerate() {
            assert!(count > 16, "shard {shard} got only {count}/256 keys");
        }
    }

    #[test]
    fn construction_failure_propagates() {
        let result = ShardedStore::<AriaHash>::with_shards(4, |shard| {
            if shard == 2 {
                Err(StoreError::CountersExhausted)
            } else {
                AriaHash::new(StoreConfig::for_keys(1_024), Arc::new(Enclave::with_default_epc()))
            }
        });
        assert_eq!(result.err(), Some(StoreError::CountersExhausted));
    }

    #[test]
    fn with_shard_reaches_store_specific_api() {
        let store = small_sharded(2);
        store.put(b"probe", b"x").unwrap();
        let shard = store.shard_of(b"probe");
        let len = store.with_shard(shard, |s| s.len());
        assert_eq!(len, 1);
        let other = store.with_shard(1 - shard, |s| s.len());
        assert_eq!(other, 0);
    }

    #[test]
    fn dead_worker_yields_typed_error_not_hang() {
        let store = small_sharded(4);
        store.put(b"seed", b"v").unwrap();
        let dead = store.shard_of(b"seed");
        // Kill one worker; its queue closes once the panic unwinds.
        assert!(store.exec_detached(dead, |_| panic!("injected worker crash")));
        // Wait for the channel to actually disconnect (bounded).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            match store.get(b"seed") {
                Err(StoreError::ShardUnavailable { shard }) => {
                    assert_eq!(shard, dead);
                    break;
                }
                _ if std::time::Instant::now() < deadline => std::thread::yield_now(),
                other => panic!("worker never died: {other:?}"),
            }
        }
        assert_eq!(store.put(b"seed", b"w"), Err(StoreError::ShardUnavailable { shard: dead }));
        assert_eq!(store.delete(b"seed"), Err(StoreError::ShardUnavailable { shard: dead }));
        // A batch spanning live and dead shards: dead shard's ops carry
        // the typed error, live shards still answer.
        let ops: Vec<BatchOp> =
            (0..64u32).map(|i| BatchOp::Put(format!("k{i}").into_bytes(), vec![1])).collect();
        let keys: Vec<Vec<u8>> = (0..64u32).map(|i| format!("k{i}").into_bytes()).collect();
        let replies = store.run_batch(ops);
        let mut dead_ops = 0;
        let mut live_ops = 0;
        for (key, reply) in keys.iter().zip(replies) {
            if store.shard_of(key) == dead {
                assert_eq!(
                    reply,
                    BatchReply::Put(Err(StoreError::ShardUnavailable { shard: dead }))
                );
                dead_ops += 1;
            } else {
                assert_eq!(reply, BatchReply::Put(Ok(())));
                live_ops += 1;
            }
        }
        assert!(dead_ops > 0 && live_ops > 0, "want both shard fates exercised");
    }

    #[test]
    fn quarantine_gating_refuses_ops_without_touching_worker() {
        let store = small_sharded(2);
        store.put(b"k", b"v").unwrap();
        let shard = store.shard_of(b"k");
        store.force_health(shard, ShardHealth::Quarantined);
        assert_eq!(store.get(b"k"), Err(StoreError::ShardQuarantined { shard }));
        store.force_health(shard, ShardHealth::Recovering);
        assert_eq!(store.put(b"k", b"w"), Err(StoreError::ShardQuarantined { shard }));
        store.force_health(shard, ShardHealth::Dead);
        assert_eq!(store.delete(b"k"), Err(StoreError::ShardUnavailable { shard }));
        // Re-admission restores service — the worker itself never died.
        store.force_health(shard, ShardHealth::Healthy);
        assert_eq!(store.get(b"k").unwrap().unwrap(), b"v");
    }

    #[test]
    fn violation_quarantines_shard_then_recovery_readmits_it() {
        let store = small_sharded(2);
        for i in 0..128u32 {
            store.put(format!("key{i}").as_bytes(), b"payload").unwrap();
        }
        let victim_key = b"key7".to_vec();
        let victim = store.shard_of(&victim_key);
        let sibling_key = (0..128u32)
            .map(|i| format!("key{i}").into_bytes())
            .find(|k| store.shard_of(k) != victim)
            .expect("some key lives on the other shard");

        // Tamper with the sealed value bytes in untrusted memory.
        let k = victim_key.clone();
        assert!(store.with_shard(victim, move |s| s.attack_tamper_value(&k)));

        // The read detects the attack (never acks wrong bytes) and
        // triggers quarantine + auto-recovery.
        let err = store.get(&victim_key).unwrap_err();
        assert!(err.is_quarantine_trigger(), "got {err:?}");

        // Recovery runs on the victim's worker; wait for re-admission.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let snap = store.healths()[victim];
            if snap.health == ShardHealth::Healthy && snap.recoveries >= 1 {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "shard never re-admitted: {snap:?}");
            // The sibling shard keeps serving throughout.
            assert_eq!(store.get(&sibling_key).unwrap().unwrap(), b"payload");
            std::thread::yield_now();
        }
        let snap = store.healths()[victim];
        assert!(snap.violations >= 1);
        assert_eq!(snap.recoveries, 1);

        // The tampered entry was destroyed: its bucket now fails closed,
        // and that scar must NOT re-quarantine the shard.
        assert_eq!(
            store.get(&victim_key),
            Err(StoreError::Integrity(crate::Violation::DataDestroyed))
        );
        assert_eq!(store.healths()[victim].health, ShardHealth::Healthy);

        // Untouched keys on the recovered shard still verify and serve.
        let survivor = (0..128u32)
            .map(|i| format!("key{i}").into_bytes())
            .find(|k| store.shard_of(k) == victim && *k != victim_key)
            .expect("victim shard holds more keys");
        assert_eq!(store.get(&survivor).unwrap().unwrap(), b"payload");
        // And the shard accepts new writes again.
        store.put(b"fresh-after-recovery", b"x").unwrap();
    }

    #[test]
    fn dead_worker_is_reflected_in_health() {
        let store = small_sharded(2);
        store.put(b"seed", b"v").unwrap();
        let dead = store.shard_of(b"seed");
        assert!(store.exec_detached(dead, |_| panic!("injected worker crash")));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while store.get(b"seed") != Err(StoreError::ShardUnavailable { shard: dead }) {
            assert!(std::time::Instant::now() < deadline, "worker never died");
            std::thread::yield_now();
        }
        assert_eq!(store.healths()[dead].health, ShardHealth::Dead);
        assert_eq!(store.healths()[1 - dead].health, ShardHealth::Healthy);
        // Monitoring paths skip the dead worker instead of panicking.
        let _ = store.len();
        assert_eq!(store.cache_stats()[dead], None);
        assert_eq!(store.snapshots().len(), 1);
    }

    #[test]
    fn drop_joins_workers_with_queued_ops() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let store = small_sharded(2);
        let applied = Arc::new(AtomicU64::new(0));
        // Stall the worker, then queue work behind the stall; dropping
        // the store must still drain and join, losing nothing.
        assert!(
            store.exec_detached(0, |_| std::thread::sleep(std::time::Duration::from_millis(100)))
        );
        for _ in 0..32 {
            let applied = Arc::clone(&applied);
            assert!(store.exec_detached(0, move |_| {
                applied.fetch_add(1, Ordering::SeqCst);
            }));
        }
        drop(store);
        assert_eq!(applied.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let store = small_sharded(4);
        for i in 0..100u32 {
            store.put(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        let stats = store.stats();
        assert_eq!(stats.enclaves, 4);
        assert!(stats.totals.cycles > 0);
        assert!(stats.max_cycles <= stats.totals.cycles);
        let cache = store.aggregate_cache_stats().expect("AriaHash runs a Secure Cache");
        assert!(cache.accesses() > 0);
    }

    // --- replication -----------------------------------------------------------

    #[test]
    fn replicated_round_trip_and_backup_applies_writes() {
        let store = replicated(2, 2);
        for i in 0..64u32 {
            store.put(format!("key{i}").as_bytes(), &i.to_le_bytes()).unwrap();
        }
        for i in 0..64u32 {
            assert_eq!(store.get(format!("key{i}").as_bytes()).unwrap().unwrap(), i.to_le_bytes());
        }
        assert!(store.delete(b"key0").unwrap());
        // The backups applied every write synchronously: per-group
        // primary and backup lengths match (lag 0).
        for snap in store.replica_healths() {
            assert_eq!(snap.health, ShardHealth::Healthy);
            assert_eq!(snap.lag, 0, "replica {snap:?} lags");
        }
        assert_eq!(store.len(), 63);
    }

    fn wait_group_stats<F>(store: &ShardedStore<AriaHash>, what: &str, ok: F)
    where
        F: Fn(&[GroupStats]) -> bool,
    {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        loop {
            let stats = store.group_stats();
            if ok(&stats) {
                return;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "timed out waiting for {what}: {stats:?}"
            );
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }

    #[test]
    fn primary_kill_fails_over_and_resyncs() {
        let store = replicated(2, 2);
        for i in 0..128u32 {
            store.put(format!("key{i}").as_bytes(), b"durable").unwrap();
        }
        for g in 0..2 {
            let p = store.group_stats()[g].primary;
            assert!(store.exec_detached_replica(g, p, |_| panic!("injected primary kill")));
        }
        // Every acknowledged write survives the failover: reads promote
        // the backup on demand and must find all 128 keys.
        for i in 0..128u32 {
            let key = format!("key{i}");
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            loop {
                match store.get(key.as_bytes()) {
                    Ok(Some(v)) => {
                        assert_eq!(v, b"durable");
                        break;
                    }
                    Ok(None) => panic!("acked write {key} lost after failover"),
                    Err(_) if std::time::Instant::now() < deadline => std::thread::yield_now(),
                    Err(e) => panic!("group never failed over for {key}: {e:?}"),
                }
            }
        }
        // The killed replicas re-sync from the survivor and re-admit
        // with matching content roots.
        wait_group_stats(&store, "failover + re-sync", |stats| {
            stats.iter().all(|g| {
                g.failovers >= 1
                    && g.resyncs >= 1
                    && g.replicas.iter().all(|r| r.health == ShardHealth::Healthy)
            })
        });
        // Post-re-admission the group serves writes on both replicas.
        store.put(b"after-readmit", b"y").unwrap();
        assert_eq!(store.get(b"after-readmit").unwrap().unwrap(), b"y");
        for snap in store.replica_healths() {
            assert_eq!(snap.lag, 0, "re-admitted replica lags: {snap:?}");
        }
    }

    #[test]
    fn diverged_replica_is_never_readmitted() {
        let store = replicated(1, 2);
        store.set_resync_fault_hook(|_| true);
        for i in 0..64u32 {
            store.put(format!("key{i}").as_bytes(), b"v").unwrap();
        }
        let p = store.group_stats()[0].primary;
        assert!(store.exec_detached_replica(0, p, |_| panic!("injected primary kill")));
        // Keep reading: the first op after the worker unwinds detects
        // the death, fails over, and kicks the (sabotaged) re-sync.
        wait_group_stats(&store, "divergence verdict", |stats| {
            let _ = store.get(b"key1");
            stats[0].last_resync_error == Some(StoreError::ReplicaDiverged { shard: 0 })
        });
        let stats = &store.group_stats()[0];
        assert_eq!(stats.resyncs, 0, "diverged replica must not count as re-synced");
        let diverged = &stats.replicas[p];
        assert_eq!(diverged.health, ShardHealth::Dead, "diverged replica must stay dead");
        // The survivor keeps the group serving.
        assert_eq!(store.get(b"key1").unwrap().unwrap(), b"v");
    }

    #[test]
    fn drop_mid_resync_under_load_joins_cleanly() {
        for round in 0..3 {
            let store = replicated(2, 2);
            for i in 0..256u32 {
                store.put(format!("key{round}-{i}").as_bytes(), b"load").unwrap();
            }
            let p = store.group_stats()[0].primary;
            assert!(store.exec_detached_replica(0, p, |_| panic!("injected primary kill")));
            // Keep the store busy so Drop races an in-flight re-sync.
            for i in 0..64u32 {
                let _ = store.put(format!("busy{round}-{i}").as_bytes(), b"x");
            }
            // Dropping here must join the re-sync thread (not leave it
            // touching freed channels) and never deadlock.
            drop(store);
        }
    }

    #[test]
    fn replication_off_keeps_single_slot_per_group() {
        let store = small_sharded(4);
        assert_eq!(store.replicas(), 1);
        assert_eq!(store.telemetry().len(), 4);
        let snaps = store.replica_healths();
        assert_eq!(snaps.len(), 4);
        assert!(snaps.iter().all(|s| s.role == ReplicaRole::Primary));
    }

    // --- overload control -------------------------------------------------------

    #[test]
    fn admission_refuses_over_budget_and_hints_retry() {
        let store = small_sharded(1);
        // No budget configured: everything is admitted.
        store.put(b"k", b"v").unwrap();
        assert_eq!(store.shed_ops_total(), 0);
        store.set_queue_delay_budget(Some(Duration::from_millis(1)));
        assert_eq!(store.queue_delay_budget(), Some(Duration::from_millis(1)));
        // Fake a backlog on the only slot: 1000 in-flight ops at 1 ms
        // EWMA each is a 1 s queue-delay estimate, far over budget.
        let st = &store.inner.slots[0].state;
        st.inflight_ops.store(1_000, Ordering::SeqCst);
        st.ewma_op_ns.store(1_000_000, Ordering::SeqCst);
        assert_eq!(store.queue_delay_estimates(), vec![1_000_000_000]);
        match store.put(b"k2", b"v") {
            Err(StoreError::Overloaded { shard, retry_after_ms }) => {
                assert_eq!(shard, 0);
                // (est - budget) / 1e6 = 999 ms, inside the clamp.
                assert_eq!(retry_after_ms, 999);
            }
            other => panic!("want Overloaded, got {other:?}"),
        }
        assert_eq!(store.shed_ops_total(), 1, "the refused op is charged to the shed counter");
        // A refusal is not an acknowledgement: nothing was enqueued, so
        // the key must not exist once the backlog clears.
        st.inflight_ops.store(0, Ordering::SeqCst);
        assert_eq!(store.get(b"k2").unwrap(), None);
        store.put(b"k2", b"v2").unwrap();
        assert_eq!(store.get(b"k2").unwrap().unwrap(), b"v2");
        // Disarming re-opens admission unconditionally.
        store.set_queue_delay_budget(None);
        assert_eq!(store.queue_delay_budget(), None);
        st.inflight_ops.store(1_000, Ordering::SeqCst);
        store.put(b"k3", b"v3").unwrap();
        st.inflight_ops.store(0, Ordering::SeqCst);
    }

    #[test]
    fn watchdog_quarantines_stalled_shard_then_recovery_readmits() {
        let store = Arc::new(small_sharded(1));
        store.set_watchdog_window(Some(Duration::from_millis(40)));
        store.start_maintenance(Duration::from_millis(5));
        // Wedge the worker well past the window...
        assert!(store.exec_detached(0, |_st| thread::sleep(Duration::from_millis(400))));
        // ...while a client op queues behind the stall, so the shard is
        // "accepting work but retiring nothing" — the watchdog's case.
        let s2 = Arc::clone(&store);
        let blocked = thread::spawn(move || s2.put(b"stalled", b"v"));
        let deadline = Instant::now() + Duration::from_secs(5);
        while store.health_of(0) == ShardHealth::Healthy {
            assert!(Instant::now() < deadline, "watchdog never quarantined the stalled shard");
            thread::sleep(Duration::from_millis(5));
        }
        // Once the stall clears, queued recovery verifies the store and
        // re-admits the shard.
        let deadline = Instant::now() + Duration::from_secs(10);
        while store.health_of(0) != ShardHealth::Healthy {
            assert!(Instant::now() < deadline, "stalled shard was never re-admitted");
            thread::sleep(Duration::from_millis(10));
        }
        // The queued op completed (either applied or typed-refused) —
        // it must not hang — and new work flows again.
        let _ = blocked.join().expect("blocked writer must not panic");
        store.put(b"after", b"v").unwrap();
        assert_eq!(store.get(b"after").unwrap().unwrap(), b"v");
        let watchdog_fires: u64 =
            store.telemetry().iter().map(|t| t.store.watchdog_quarantines.get()).sum();
        assert!(watchdog_fires >= 1, "quarantine must be attributed to the watchdog");
    }

    #[test]
    fn healthy_load_is_never_shed_under_a_sane_budget() {
        let store = small_sharded(2);
        store.set_queue_delay_budget(Some(Duration::from_secs(2)));
        for i in 0..512u32 {
            store.put(format!("ok{i}").as_bytes(), b"v").unwrap();
        }
        assert_eq!(store.shed_ops_total(), 0, "a generous budget must not shed a light load");
    }

    // --- GroupHealthMachine property tests --------------------------------------

    mod machine_props {
        use super::*;
        use proptest::prelude::*;

        /// The events a driver can throw at the machine.
        #[derive(Debug, Clone, Copy)]
        enum Event {
            Quarantine(usize),
            ClaimRecovery(usize),
            Readmit(usize),
            FailRecovery(usize),
            MarkDead(usize),
            Promote,
        }

        fn event_strategy(replicas: usize) -> impl Strategy<Value = Event> {
            let r = 0..replicas;
            prop_oneof![
                r.clone().prop_map(Event::Quarantine),
                r.clone().prop_map(Event::ClaimRecovery),
                r.clone().prop_map(Event::Readmit),
                r.clone().prop_map(Event::FailRecovery),
                r.prop_map(Event::MarkDead),
                Just(Event::Promote),
            ]
        }

        /// Valid edges of the health machine (module docs).
        fn valid_edge(from: ShardHealth, to: ShardHealth) -> bool {
            use ShardHealth::*;
            matches!(
                (from, to),
                (Healthy, Quarantined)
                    | (Quarantined, Recovering)
                    | (Dead, Recovering)
                    | (Recovering, Healthy)
                    | (Recovering, Dead)
                    | (Healthy, Dead)
                    | (Quarantined, Dead)
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Arbitrary interleavings of fault/recover/promote events
            /// never produce an invalid transition, the primary index is
            /// always in range, and promotion only lands on a healthy
            /// replica — i.e. there is exactly one primary per group and
            /// it is never a replica known-bad at promotion time.
            #[test]
            fn machine_never_reaches_invalid_state(
                replicas in 1usize..=4,
                events in proptest::collection::vec(event_strategy(4), 0..64),
            ) {
                let m = GroupHealthMachine::new(replicas);
                let mut states: Vec<ShardHealth> =
                    (0..replicas).map(|r| m.health(r)).collect();
                for ev in events {
                    let before_primary = m.primary();
                    prop_assert!(before_primary < replicas);
                    match ev {
                        Event::Quarantine(r) if r < replicas => { m.quarantine(r); }
                        Event::ClaimRecovery(r) if r < replicas => { m.claim_recovery(r); }
                        Event::Readmit(r) if r < replicas => { m.readmit(r); }
                        Event::FailRecovery(r) if r < replicas => { m.fail_recovery(r); }
                        Event::MarkDead(r) if r < replicas => {
                            let was = m.health(r);
                            let prev = m.mark_dead(r);
                            // `Recovering` belongs to its recovery
                            // claimant: external death reports must not
                            // touch it (only `fail_recovery` may).
                            if was == ShardHealth::Recovering {
                                prop_assert_eq!(prev, None);
                                prop_assert_eq!(m.health(r), ShardHealth::Recovering);
                            }
                        }
                        Event::Promote => {
                            if let Some(np) = m.promote() {
                                // Promotion must land on a replica that
                                // was healthy when promoted.
                                prop_assert_eq!(m.role_of(np), ReplicaRole::Primary);
                            }
                        }
                        _ => {}
                    }
                    // Every observed state change walks a valid edge.
                    for (r, state) in states.iter_mut().enumerate() {
                        let now = m.health(r);
                        if now != *state {
                            prop_assert!(
                                valid_edge(*state, now),
                                "invalid transition {:?} -> {:?} on replica {}",
                                *state, now, r
                            );
                            *state = now;
                        }
                    }
                    // Exactly one primary: the index is single-valued and
                    // in range at all times.
                    prop_assert!(m.primary() < replicas);
                }
            }

            /// Recovery claims are single-flight: from any state, at most
            /// one of N concurrent claims wins.
            #[test]
            fn recovery_claim_is_single_flight(
                start in (0u8..4).prop_map(ShardHealth::from_u8),
                claimants in 2usize..=8,
            ) {
                let m = Arc::new(GroupHealthMachine::new(1));
                m.force(0, start);
                let wins: usize = std::thread::scope(|s| {
                    let handles: Vec<_> = (0..claimants)
                        .map(|_| {
                            let m = Arc::clone(&m);
                            s.spawn(move || m.claim_recovery(0).is_some() as usize)
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).sum()
                });
                let claimable =
                    matches!(start, ShardHealth::Quarantined | ShardHealth::Dead);
                prop_assert_eq!(wins, usize::from(claimable));
            }
        }
    }
}
