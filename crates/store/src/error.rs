//! Store error types.

use aria_mem::HeapError;

/// Why an integrity check failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A Merkle-tree node failed verification (counter tamper/replay).
    MerkleMismatch {
        /// Level of the failing node.
        level: u32,
        /// Index of the failing node.
        index: u64,
    },
    /// A KV entry's MAC did not match (value tamper, replay, or a
    /// redirected index connection via the additional field).
    EntryMacMismatch,
    /// A freed/used counter state contradiction in the redirection layer
    /// (counter-reuse attack, §V-C).
    CounterReuse {
        /// The counter involved.
        counter: u64,
    },
    /// In-enclave entry/deletion metadata contradicts the untrusted
    /// structure (unauthorized deletion, §V-C).
    UnauthorizedDeletion,
    /// Untrusted allocator metadata inconsistent with the EPC bitmap.
    AllocatorMetadata,
    /// An untrusted pointer (index connection, entry link) referenced
    /// memory outside any live allocation — pointer corruption.
    CorruptPointer,
    /// The key's data was destroyed by a past attack: a recovery pass
    /// condemned the untrusted region it lived in, so the store can no
    /// longer distinguish "never written" from "deleted by the attacker".
    /// Reads fail closed instead of answering "not found".
    DataDestroyed,
}

impl Violation {
    /// 1-based class code of this violation, matching the telemetry
    /// class table (`aria_telemetry::VIOLATION_NAMES`) and the wire
    /// error codes.
    pub fn class(&self) -> u16 {
        match self {
            Violation::MerkleMismatch { .. } => 1,
            Violation::EntryMacMismatch => 2,
            Violation::CounterReuse { .. } => 3,
            Violation::UnauthorizedDeletion => 4,
            Violation::AllocatorMetadata => 5,
            Violation::CorruptPointer => 6,
            Violation::DataDestroyed => 7,
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::MerkleMismatch { level, index } => {
                write!(f, "Merkle node (level {level}, index {index}) failed verification")
            }
            Violation::EntryMacMismatch => write!(f, "entry MAC mismatch"),
            Violation::CounterReuse { counter } => {
                write!(f, "counter {counter} reuse detected")
            }
            Violation::UnauthorizedDeletion => write!(f, "unauthorized deletion detected"),
            Violation::AllocatorMetadata => write!(f, "allocator metadata inconsistent"),
            Violation::CorruptPointer => write!(f, "corrupt untrusted pointer"),
            Violation::DataDestroyed => {
                write!(f, "data destroyed by a detected attack (fail-closed read)")
            }
        }
    }
}

/// Why a verified restart refused to serve ([`StoreError::RecoveryDiverged`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryFailure {
    /// Replaying the log up to the checkpoint's sequence number produced
    /// a content root that does not match the checkpointed root: the
    /// on-disk state does not reproduce what the enclave last attested.
    RootMismatch,
    /// The checkpoint's epoch is behind the minimum the caller carries
    /// (or the checkpoint is missing while one is expected): the host is
    /// replaying stale-but-internally-consistent state — a rollback
    /// attack.
    Rollback {
        /// Epoch found on disk (0 when the checkpoint is missing).
        checkpoint_epoch: u64,
        /// Minimum epoch the caller expected.
        min_epoch: u64,
    },
    /// The checkpoint file fails its CRC or MAC.
    CheckpointCorrupt,
    /// A sealed log metadata file (the `LOGID` key-derivation nonce or
    /// the `SEQNO` reservation) is missing, malformed, or fails its
    /// MAC. These are written before the state they protect, so a
    /// crash cannot explain it.
    MetaCorrupt {
        /// Which file failed (`"LOGID"` or `"SEQNO"`).
        file: &'static str,
    },
    /// A log record is structurally broken in a way a crash cannot
    /// explain (bad CRC mid-file, impossible framing).
    LogCorrupt {
        /// Segment holding the broken record.
        segment: u64,
        /// Byte offset of the broken record.
        offset: u64,
    },
    /// A log record is CRC-consistent but fails its MAC: deliberate
    /// on-disk tampering.
    LogTampered {
        /// Segment holding the tampered record.
        segment: u64,
        /// Byte offset of the tampered record.
        offset: u64,
    },
}

impl std::fmt::Display for RecoveryFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryFailure::RootMismatch => {
                write!(f, "replayed content root does not match the checkpointed root")
            }
            RecoveryFailure::Rollback { checkpoint_epoch, min_epoch } => write!(
                f,
                "checkpoint epoch {checkpoint_epoch} is behind expected minimum {min_epoch} (rollback)"
            ),
            RecoveryFailure::CheckpointCorrupt => write!(f, "checkpoint corrupt or tampered"),
            RecoveryFailure::MetaCorrupt { file } => {
                write!(f, "log metadata file {file} missing, corrupt or tampered")
            }
            RecoveryFailure::LogCorrupt { segment, offset } => {
                write!(f, "log segment {segment} corrupt at offset {offset}")
            }
            RecoveryFailure::LogTampered { segment, offset } => {
                write!(f, "log segment {segment} tampered at offset {offset}")
            }
        }
    }
}

/// Errors returned by store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An attack (or corruption) was detected; the operation is refused.
    Integrity(Violation),
    /// The enclave could not reserve required EPC.
    EpcExhausted,
    /// The counter area is full and cannot expand.
    CountersExhausted,
    /// Untrusted heap failure.
    Heap(HeapError),
    /// Key longer than the fixed on-wire limit.
    KeyTooLong {
        /// Offending length.
        len: usize,
    },
    /// Value longer than the fixed on-wire limit.
    ValueTooLong {
        /// Offending length.
        len: usize,
    },
    /// A [`crate::sharded::ShardedStore`] worker is gone (its thread
    /// panicked or was torn down); operations routed to it cannot be
    /// served. Other shards remain fully available.
    ShardUnavailable {
        /// The unreachable shard.
        shard: usize,
    },
    /// A [`crate::sharded::ShardedStore`] shard detected an integrity
    /// violation and is quarantined (or recovering); operations routed
    /// to it are refused until recovery re-admits it. Other shards keep
    /// serving.
    ShardQuarantined {
        /// The quarantined shard.
        shard: usize,
    },
    /// Anti-entropy re-sync ended with the rejoining replica's content
    /// root differing from the survivor's: the replica is divergent
    /// (or was tampered with mid-sync) and must not be re-admitted.
    ReplicaDiverged {
        /// The shard group whose re-sync failed.
        shard: usize,
    },
    /// The store type cannot stream its verified contents
    /// ([`crate::KvStore::export_chunk`]), so it cannot act as a
    /// re-sync survivor or rejoiner.
    ExportUnsupported,
    /// A verified restart could not prove the on-disk log + checkpoint
    /// reproduce the state the enclave last attested; the store refuses
    /// to serve rather than serve silently wrong or rolled-back data.
    RecoveryDiverged {
        /// What diverged.
        reason: RecoveryFailure,
    },
    /// A durability-log filesystem operation failed (plain I/O, not an
    /// integrity verdict).
    Log {
        /// The operation that failed (`"append"`, `"sync"`, ...).
        op: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// A [`crate::sharded::ShardedStore`] shard's estimated queue delay
    /// exceeds its admission budget; the op was refused *before* being
    /// enqueued (nothing was applied, nothing acknowledged). Transient:
    /// back off for roughly `retry_after_ms` and retry.
    Overloaded {
        /// The overloaded shard.
        shard: usize,
        /// Suggested backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The key's routing slot is no longer owned by the shard group this
    /// op reached: a reshard migration committed between routing and
    /// execution (or the client claimed a stale routing epoch). Nothing
    /// was applied, nothing acknowledged — refresh routing and retry
    /// against `hint`.
    WrongShard {
        /// The group that refused the op.
        shard: usize,
        /// The group that owns the slot at `epoch`.
        hint: usize,
        /// The routing epoch the refusal was issued under.
        epoch: u64,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Integrity(v) => write!(f, "integrity violation detected: {v}"),
            StoreError::EpcExhausted => write!(f, "EPC exhausted"),
            StoreError::CountersExhausted => write!(f, "counter area exhausted"),
            StoreError::Heap(e) => write!(f, "untrusted heap error: {e}"),
            StoreError::KeyTooLong { len } => write!(f, "key too long: {len} bytes"),
            StoreError::ValueTooLong { len } => write!(f, "value too long: {len} bytes"),
            StoreError::ShardUnavailable { shard } => {
                write!(f, "shard {shard} unavailable (worker gone)")
            }
            StoreError::ShardQuarantined { shard } => {
                write!(f, "shard {shard} quarantined after an integrity violation")
            }
            StoreError::ReplicaDiverged { shard } => {
                write!(f, "shard {shard} replica diverged: re-sync content roots do not match")
            }
            StoreError::ExportUnsupported => {
                write!(f, "store cannot stream verified contents for re-sync")
            }
            StoreError::RecoveryDiverged { reason } => {
                write!(f, "verified recovery refused: {reason}")
            }
            StoreError::Log { op, detail } => write!(f, "durability log {op} failed: {detail}"),
            StoreError::Overloaded { shard, retry_after_ms } => {
                write!(f, "shard {shard} overloaded; retry after ~{retry_after_ms} ms")
            }
            StoreError::WrongShard { shard, hint, epoch } => {
                write!(f, "shard {shard} no longer owns this key (epoch {epoch}, now shard {hint})")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<HeapError> for StoreError {
    fn from(e: HeapError) -> Self {
        match e {
            HeapError::MetadataAttack { .. } => StoreError::Integrity(Violation::AllocatorMetadata),
            // Pointers live in untrusted memory; a pointer that escapes
            // every live allocation is corruption, and the enclave must
            // treat following it as a detected attack, not an I/O error.
            HeapError::InvalidPointer { .. } => StoreError::Integrity(Violation::CorruptPointer),
            other => StoreError::Heap(other),
        }
    }
}

impl From<aria_cache::IntegrityViolation> for StoreError {
    fn from(e: aria_cache::IntegrityViolation) -> Self {
        StoreError::Integrity(Violation::MerkleMismatch {
            level: e.node.level,
            index: e.node.index,
        })
    }
}

impl StoreError {
    /// Whether this error denotes a detected attack.
    pub fn is_integrity_violation(&self) -> bool {
        matches!(self, StoreError::Integrity(_))
    }

    /// Whether this error should quarantine the shard that produced it.
    ///
    /// All fresh integrity violations do — except
    /// [`Violation::DataDestroyed`], which reports the *lasting scar* of
    /// an attack a previous recovery already contained (re-quarantining
    /// for it would loop forever, since the data is gone for good).
    pub fn is_quarantine_trigger(&self) -> bool {
        match self {
            StoreError::Integrity(v) => !matches!(v, Violation::DataDestroyed),
            _ => false,
        }
    }
}
