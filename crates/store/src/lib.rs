//! Aria: a secure in-memory key-value store for untrusted hosts
//! (reproduction of Yang et al., ICDE 2021).
//!
//! Encrypted KV pairs and the index live in untrusted memory; per-pair
//! encryption counters are protected by a Merkle tree whose nodes are
//! cached at fine granularity inside the (simulated) enclave by the
//! Secure Cache. The crate provides:
//!
//! * [`AriaHash`] — the hash-table-indexed store (Aria-H),
//! * [`AriaTree`] — the B-tree-indexed store (Aria-T),
//! * [`AriaBPlusTree`] — the B+-tree extension the paper defers to
//!   future work (Aria-T+): chained leaves + separately encrypted
//!   routing keys,
//! * [`BaselineStore`] — the everything-in-enclave baseline,
//! * the `Aria w/o Cache` scheme via
//!   [`config::Scheme::AriaWithoutCache`] on either index,
//! * attack-injection APIs mirroring §V-C's threat analysis,
//! * memory accounting for the paper's §VI-D4 analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aria_hash;
pub mod baseline;
pub mod bplus;
pub mod btree;
pub mod config;
pub mod core;
pub mod counter;
pub mod entry;
pub mod error;
pub mod reshard;
pub mod resync;
pub mod sharded;
pub mod tiered;

use std::sync::Arc;

use aria_sim::Enclave;

pub use aria_hash::AriaHash;
pub use baseline::BaselineStore;
pub use bplus::AriaBPlusTree;
pub use btree::AriaTree;
pub use config::{ConfigError, Scheme, StoreConfig, StoreConfigBuilder};
pub use counter::{CounterBackend, CounterStore};
pub use error::{RecoveryFailure, StoreError, Violation};
pub use reshard::{
    ReshardFault, ReshardMode, ReshardState, ReshardStatus, RoutingTable, NUM_ROUTING_SLOTS,
};
pub use resync::{
    content_root, content_root_from_digests, content_root_of, pair_digest_keyed, ContentRoot,
};
pub use sharded::{
    BatchOp, BatchReply, GroupHealthMachine, GroupStats, ReplicaHealthSnapshot, ReplicaRole,
    ShardHealth, ShardHealthSnapshot, ShardedStore,
};
pub use tiered::{TierStats, TieredOptions, TieredStore};

/// What a [`KvStore::recover`] pass found and repaired. All counts are
/// zero for stores whose untrusted state checked out (or that have none).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Merkle leaf nodes condemned by the root-anchored audit.
    pub merkle_nodes_condemned: u64,
    /// Encryption counters reinitialized with fresh values.
    pub counters_reinitialized: u64,
    /// Sealed entries destroyed (unlinked and reclaimed) because their
    /// MAC no longer verified after the counter repair.
    pub entries_destroyed: u64,
    /// Sealed entries that re-verified intact during the sweep.
    pub entries_verified: u64,
    /// Index buckets poisoned: misses there now fail closed with
    /// [`Violation::DataDestroyed`] instead of answering "absent".
    pub buckets_poisoned: u64,
}

/// What one [`KvStore::maintain`] pass did. All counts are zero for
/// stores with no background upkeep (the default implementation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// Entries migrated from the hot region to the cold tier.
    pub migrated: u64,
    /// Log segments compacted (live records rewritten, file removed).
    pub segments_compacted: u64,
    /// Live records rewritten by compaction.
    pub records_rewritten: u64,
    /// Whether a checkpoint was persisted during this pass.
    pub checkpointed: bool,
}

impl MaintenanceReport {
    /// Whether the pass changed anything at all.
    pub fn did_work(&self) -> bool {
        self.migrated != 0 || self.segments_compacted != 0 || self.checkpointed
    }
}

impl RecoveryReport {
    /// Whether the pass found any damage at all.
    pub fn found_damage(&self) -> bool {
        self.merkle_nodes_condemned != 0
            || self.counters_reinitialized != 0
            || self.entries_destroyed != 0
            || self.buckets_poisoned != 0
    }

    /// Merge another report into this one (multi-tree stores).
    pub fn absorb(&mut self, other: RecoveryReport) {
        self.merkle_nodes_condemned += other.merkle_nodes_condemned;
        self.counters_reinitialized += other.counters_reinitialized;
        self.entries_destroyed += other.entries_destroyed;
        self.entries_verified += other.entries_verified;
        self.buckets_poisoned += other.buckets_poisoned;
    }
}

/// Secure Cache statistics, as reported through [`KvStore::cache_stats`]
/// by schemes that run one (aggregated across the counter area's trees).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Counter lookups served from the EPC-resident cache.
    pub hits: u64,
    /// Counter lookups that had to verify untrusted nodes.
    pub misses: u64,
    /// Nodes swapped out of the cache (evictions).
    pub swaps: u64,
    /// Whether the cache is still swapping (stop-swap not yet engaged).
    pub swapping: bool,
}

impl CacheStats {
    /// Lifetime hit ratio (`0.0` when the cache was never consulted).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total counter lookups.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }
}

/// Common store interface used by examples, tests and the bench harness.
pub trait KvStore {
    /// Insert or update a key.
    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), StoreError>;
    /// Fetch a key's value (verified and decrypted). `Ok(None)` means the
    /// key is genuinely absent; detected attacks surface as
    /// [`StoreError::Integrity`].
    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError>;
    /// Remove a key; returns whether it existed.
    fn delete(&mut self, key: &[u8]) -> Result<bool, StoreError>;
    /// Live key count.
    fn len(&self) -> u64;
    /// Whether the store is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// The enclave this store charges costs to.
    fn enclave(&self) -> &Arc<Enclave>;
    /// Secure Cache statistics, for schemes that run one. The default
    /// (`None`) is for schemes with no software-managed cache.
    fn cache_stats(&self) -> Option<CacheStats> {
        None
    }
    /// Fetch several keys in one request. The default issues one `get`
    /// per key; indexes that can amortize per-request work across a
    /// batch (one ECALL, shared Merkle paths) override it.
    fn multi_get(&mut self, keys: &[&[u8]]) -> Vec<Result<Option<Vec<u8>>, StoreError>> {
        keys.iter().map(|key| self.get(key)).collect()
    }
    /// Insert or update several pairs in one request. The default issues
    /// one `put` per pair; see [`KvStore::multi_get`].
    fn put_batch(&mut self, pairs: &[(&[u8], &[u8])]) -> Vec<Result<(), StoreError>> {
        pairs.iter().map(|(key, value)| self.put(key, value)).collect()
    }
    /// Audit and repair the store's untrusted state after a detected
    /// integrity violation, re-anchoring everything to enclave-resident
    /// ground truth (Merkle roots, EPC bitmaps, cached nodes).
    ///
    /// `Ok(report)` means the store is again safe to serve: every
    /// surviving datum re-verified, every condemned datum was destroyed
    /// and its index location poisoned (fail-closed). `Err` means the
    /// damage could not be contained and the store must stay offline.
    /// The default is for stores with no untrusted state to repair.
    fn recover(&mut self) -> Result<RecoveryReport, StoreError> {
        Ok(RecoveryReport::default())
    }
    /// Hook this store's layers (heap, Secure Cache, Merkle trees) into a
    /// set of telemetry recorders. The default ignores the handles —
    /// stores without instrumentation simply stay dark.
    fn attach_telemetry(&mut self, tele: Arc<aria_telemetry::ShardTelemetry>) {
        let _ = tele;
    }
    /// Refresh point-in-time telemetry gauges (live keys, counter-area
    /// occupancy, heap bytes). Called by batch workers between batches;
    /// must stay cheap. The default is a no-op.
    fn refresh_gauges(&self) {}
    /// Stream up to `max` verified `(key, value)` pairs starting at an
    /// opaque `cursor` (`0` = from the beginning). Returns the pairs and
    /// `Some(next_cursor)` while more remain, `None` once the store is
    /// exhausted. Every pair MUST come from a MAC-verified, decrypted
    /// read inside the enclave — this is the feed for anti-entropy
    /// re-sync, and an unverified export would let a tampered survivor
    /// poison its rejoining peer. The cursor is only valid while the
    /// store is not mutated between calls. The default refuses
    /// ([`StoreError::ExportUnsupported`]) for stores that cannot
    /// enumerate their contents.
    #[allow(unused_variables)]
    #[allow(clippy::type_complexity)]
    fn export_chunk(
        &mut self,
        cursor: u64,
        max: usize,
    ) -> Result<(Vec<(Vec<u8>, Vec<u8>)>, Option<u64>), StoreError> {
        Err(StoreError::ExportUnsupported)
    }
    /// Run one bounded slice of background upkeep: tier migration,
    /// log compaction, checkpointing. Called periodically by the
    /// sharded layer's maintenance ticker on the shard's own worker
    /// thread (so it is exclusive with regular operations); must do a
    /// *bounded* amount of work per call to keep tail latency sane.
    /// The default is a no-op for stores with nothing to maintain.
    fn maintain(&mut self) -> Result<MaintenanceReport, StoreError> {
        Ok(MaintenanceReport::default())
    }
    /// Make every write applied so far durable (the covering fsync of a
    /// group-commit window). Shard workers call this once per drained
    /// batch *before* sending any of the batch's replies, so an
    /// acknowledgement is never issued for a write that could still be
    /// lost to a crash. The default is a no-op for stores with no
    /// durability log (their writes are memory-only by design).
    fn flush(&mut self) -> Result<(), StoreError> {
        Ok(())
    }
}

/// Memory-consumption breakdown (paper §VI-D4).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryBreakdown {
    /// Untrusted bytes of counters + Merkle inner nodes.
    pub merkle_untrusted: usize,
    /// Untrusted bytes reserved for sealed entries and index nodes.
    pub heap_chunks: usize,
    /// Live sealed bytes within those chunks.
    pub heap_live: usize,
    /// EPC bytes of allocator bitmaps.
    pub epc_alloc_bitmaps: usize,
    /// EPC bytes of the Secure Cache reservation.
    pub epc_cache: usize,
    /// Total EPC in use.
    pub epc_total: usize,
    /// Untrusted free-list bytes.
    pub freelist: usize,
}

impl AriaHash {
    /// Compute the memory breakdown for §VI-D4.
    pub fn memory_breakdown(&self) -> MemoryBreakdown {
        let heap = self.core().heap.stats();
        let merkle = self.core().counters.as_cached().map(|c| c.merkle_bytes()).unwrap_or(0);
        let cache = self
            .core()
            .counters
            .as_cached()
            .map(|c| (0..c.trees()).map(|i| c.cache(i).capacity_bytes()).sum())
            .unwrap_or(0);
        MemoryBreakdown {
            merkle_untrusted: merkle,
            heap_chunks: heap.chunk_bytes,
            heap_live: heap.live_bytes,
            epc_alloc_bitmaps: heap.epc_bitmap_bytes,
            epc_cache: cache,
            epc_total: self.enclave().epc_used(),
            freelist: heap.freelist_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aria_cache::CacheConfig;
    use aria_sim::CostModel;

    fn enclave() -> Arc<Enclave> {
        Arc::new(Enclave::new(CostModel::default(), 512 << 20))
    }

    fn hash_store(keys: u64) -> AriaHash {
        let mut cfg = StoreConfig::for_keys(keys);
        cfg.cache = CacheConfig::with_capacity(8 << 20);
        AriaHash::new(cfg, enclave()).unwrap()
    }

    fn tree_store(keys: u64) -> AriaTree {
        let mut cfg = StoreConfig::for_keys(keys);
        cfg.cache = CacheConfig::with_capacity(8 << 20);
        cfg.btree_order = 7;
        AriaTree::new(cfg, enclave()).unwrap()
    }

    fn k(i: u64) -> Vec<u8> {
        aria(i).to_vec()
    }

    fn aria(i: u64) -> [u8; 16] {
        let mut key = [0u8; 16];
        key[..8].copy_from_slice(&i.to_be_bytes());
        key[8..].copy_from_slice(&i.wrapping_mul(0x9e37).to_le_bytes());
        key
    }

    // --- hash store ------------------------------------------------------

    #[test]
    fn hash_put_get_roundtrip() {
        let mut s = hash_store(1000);
        for i in 0..200u64 {
            s.put(&k(i), format!("value-{i}").as_bytes()).unwrap();
        }
        assert_eq!(s.len(), 200);
        for i in 0..200u64 {
            assert_eq!(s.get(&k(i)).unwrap().unwrap(), format!("value-{i}").as_bytes());
        }
        assert_eq!(s.get(&k(9999)).unwrap(), None);
    }

    #[test]
    fn hash_update_same_and_different_size() {
        let mut s = hash_store(100);
        s.put(&k(1), b"aaaa").unwrap();
        s.put(&k(1), b"bbbb").unwrap(); // same size: in place
        assert_eq!(s.get(&k(1)).unwrap().unwrap(), b"bbbb");
        s.put(&k(1), b"a-much-longer-value-that-relocates").unwrap();
        assert_eq!(
            s.get(&k(1)).unwrap().unwrap().as_slice(),
            b"a-much-longer-value-that-relocates"
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn hash_update_relocation_preserves_chain() {
        // Force collisions: tiny bucket count.
        let mut cfg = StoreConfig::for_keys(100);
        cfg.buckets = 2;
        cfg.cache = CacheConfig::with_capacity(4 << 20);
        let mut s = AriaHash::new(cfg, enclave()).unwrap();
        for i in 0..20u64 {
            s.put(&k(i), b"0123456789").unwrap();
        }
        // Relocate an entry in the middle of a chain.
        s.put(&k(5), b"a-significantly-longer-replacement-value").unwrap();
        for i in 0..20u64 {
            assert!(s.get(&k(i)).unwrap().is_some(), "key {i} lost");
        }
    }

    #[test]
    fn hash_delete() {
        let mut s = hash_store(100);
        for i in 0..50u64 {
            s.put(&k(i), b"v").unwrap();
        }
        assert!(s.delete(&k(25)).unwrap());
        assert!(!s.delete(&k(25)).unwrap());
        assert_eq!(s.get(&k(25)).unwrap(), None);
        assert_eq!(s.len(), 49);
        // Neighbours unaffected.
        for i in 0..50u64 {
            if i != 25 {
                assert!(s.get(&k(i)).unwrap().is_some(), "key {i}");
            }
        }
    }

    #[test]
    fn hash_delete_middle_of_chain_reseals_successor() {
        let mut cfg = StoreConfig::for_keys(100);
        cfg.buckets = 1; // everything in one chain
        cfg.cache = CacheConfig::with_capacity(4 << 20);
        let mut s = AriaHash::new(cfg, enclave()).unwrap();
        for i in 0..10u64 {
            s.put(&k(i), b"value").unwrap();
        }
        assert!(s.delete(&k(4)).unwrap());
        for i in 0..10u64 {
            if i != 4 {
                assert_eq!(s.get(&k(i)).unwrap().unwrap(), b"value", "key {i}");
            }
        }
        assert!(s.delete(&k(0)).unwrap()); // head deletion
        assert!(s.delete(&k(9)).unwrap()); // tail deletion
        assert_eq!(s.len(), 7);
    }

    #[test]
    fn hash_empty_value_and_binary_keys() {
        let mut s = hash_store(100);
        s.put(b"\x00\x01\xff", b"").unwrap();
        assert_eq!(s.get(b"\x00\x01\xff").unwrap().unwrap(), b"");
    }

    #[test]
    fn hash_key_too_long_rejected() {
        let mut s = hash_store(10);
        let long = vec![0u8; 4096];
        assert!(matches!(s.put(&long, b"v"), Err(StoreError::KeyTooLong { .. })));
    }

    // --- attacks on the hash store ----------------------------------------

    #[test]
    fn attack_value_tamper_detected() {
        let mut s = hash_store(100);
        s.put(&k(7), b"sensitive-value").unwrap();
        assert!(s.attack_tamper_value(&k(7)));
        let err = s.get(&k(7)).unwrap_err();
        assert!(err.is_integrity_violation());
    }

    #[test]
    fn attack_replay_detected() {
        let mut s = hash_store(100);
        s.put(&k(7), b"version-1-value").unwrap();
        let snapshot = s.attack_snapshot(&k(7)).unwrap();
        s.put(&k(7), b"version-2-value").unwrap();
        assert!(s.attack_replay(&snapshot));
        let err = s.get(&k(7)).unwrap_err();
        assert!(err.is_integrity_violation(), "replay returned stale data undetected");
    }

    #[test]
    fn attack_pointer_swap_detected() {
        let mut s = hash_store(10_000);
        // Find two keys in different buckets.
        s.put(&k(1), b"value-one").unwrap();
        s.put(&k(2), b"value-two").unwrap();
        s.attack_swap_bucket_pointers(&k(1), &k(2));
        // Reading either key now reaches an entry via the wrong pointer
        // cell: its AdField-bound MAC fails.
        let r1 = s.get(&k(1));
        let r2 = s.get(&k(2));
        let detected = matches!(&r1, Err(e) if e.is_integrity_violation())
            || matches!(&r2, Err(e) if e.is_integrity_violation());
        assert!(detected, "pointer swap undetected: {r1:?} {r2:?}");
    }

    #[test]
    fn attack_unauthorized_delete_detected() {
        let mut s = hash_store(100);
        s.put(&k(3), b"to-be-hidden").unwrap();
        assert!(s.attack_unauthorized_delete(&k(3)));
        let err = s.get(&k(3)).unwrap_err();
        assert_eq!(err, StoreError::Integrity(Violation::UnauthorizedDeletion));
    }

    #[test]
    fn attack_counter_replay_detected() {
        // Replay entry bytes AND the untrusted counter leaf: the Merkle
        // chain catches the stale leaf.
        let mut s = hash_store(100);
        s.put(&k(9), b"original-longer").unwrap();
        let snapshot = s.attack_snapshot(&k(9)).unwrap();
        // Snapshot the counter leaf bytes too.
        let header = entry::parse_header(&snapshot.1).unwrap();
        let redptr = header.redptr;
        let (leaf, _) = {
            let area = s.core().counters.as_cached().unwrap();
            area.cache(0).tree().locate_counter(redptr)
        };
        let old_leaf = {
            let area = s.core().counters.as_cached().unwrap();
            area.cache(0).tree().node(leaf).to_vec()
        };
        s.put(&k(9), b"updated-longer!").unwrap();
        // Flush so the fresh counter reaches untrusted memory and the
        // cache no longer shields the leaf.
        s.core_mut().counters.as_cached_mut().unwrap().flush();
        assert!(s.attack_replay(&snapshot));
        let area = s.core_mut().counters.as_cached_mut().unwrap();
        area.cache_mut(0).tree_mut_raw().write_node(leaf, &old_leaf);
        let err = s.get(&k(9)).unwrap_err();
        assert!(err.is_integrity_violation(), "counter replay undetected");
    }

    // --- Aria w/o Cache scheme ---------------------------------------------

    #[test]
    fn without_cache_scheme_works() {
        let mut cfg = StoreConfig::for_keys(1000);
        cfg.scheme = Scheme::AriaWithoutCache;
        let mut s = AriaHash::new(cfg, enclave()).unwrap();
        for i in 0..100u64 {
            s.put(&k(i), b"wo-cache").unwrap();
        }
        for i in 0..100u64 {
            assert_eq!(s.get(&k(i)).unwrap().unwrap(), b"wo-cache");
        }
        // Tamper detection still works (MACs in untrusted memory, counters
        // in the EPC).
        assert!(s.attack_tamper_value(&k(5)));
        assert!(s.get(&k(5)).unwrap_err().is_integrity_violation());
    }

    // --- B-tree store ---------------------------------------------------------

    #[test]
    fn tree_put_get_roundtrip() {
        let mut s = tree_store(2000);
        for i in 0..500u64 {
            s.put(&k(i), format!("tval-{i}").as_bytes()).unwrap();
        }
        assert_eq!(s.len(), 500);
        for i in 0..500u64 {
            assert_eq!(s.get(&k(i)).unwrap().unwrap(), format!("tval-{i}").as_bytes(), "key {i}");
        }
        assert_eq!(s.get(&k(9999)).unwrap(), None);
        assert!(s.height() >= 2, "tree should have split");
    }

    #[test]
    fn tree_keys_stay_ordered() {
        let mut s = tree_store(1000);
        // Insert in a scrambled order.
        for i in 0..300u64 {
            let id = (i * 7919) % 300;
            s.put(&k(id), b"v").unwrap();
        }
        let keys = s.keys_in_order().unwrap();
        assert_eq!(keys.len(), 300);
        for w in keys.windows(2) {
            assert!(w[0] < w[1], "order violated");
        }
    }

    #[test]
    fn tree_range_scan() {
        let mut s = tree_store(2000);
        for i in 0..400u64 {
            s.put(&k(i), format!("rv-{i}").as_bytes()).unwrap();
        }
        // Inclusive-lo, exclusive-hi.
        let got = s.range(&k(100), &k(110)).unwrap();
        assert_eq!(got.len(), 10);
        for (offset, (key, value)) in got.iter().enumerate() {
            assert_eq!(key, &k(100 + offset as u64));
            assert_eq!(value, format!("rv-{}", 100 + offset).as_bytes());
        }
        // Full range and empty ranges.
        assert_eq!(s.range(&k(0), &k(400)).unwrap().len(), 400);
        assert_eq!(s.range(&k(50), &k(50)).unwrap().len(), 0);
        assert_eq!(s.range(&k(500), &k(600)).unwrap().len(), 0);
        // Boundaries that don't fall on existing keys.
        let mut hi = k(20);
        hi[15] ^= 0xff; // just past k(20) in byte order
        let got = s.range(&k(18), &hi).unwrap();
        assert!(got.len() >= 2 && got.len() <= 3);
    }

    #[test]
    fn tree_range_matches_in_order_oracle() {
        let mut s = tree_store(1000);
        for i in 0..200u64 {
            s.put(&k((i * 37) % 200), b"v").unwrap();
        }
        let all = s.keys_in_order().unwrap();
        let ranged: Vec<Vec<u8>> =
            s.range(&k(0), &k(200)).unwrap().into_iter().map(|(key, _)| key).collect();
        assert_eq!(all, ranged);
    }

    #[test]
    fn tree_update_existing() {
        let mut s = tree_store(500);
        for i in 0..100u64 {
            s.put(&k(i), b"first").unwrap();
        }
        for i in 0..100u64 {
            s.put(&k(i), b"second-longer-value").unwrap();
        }
        assert_eq!(s.len(), 100);
        for i in 0..100u64 {
            assert_eq!(s.get(&k(i)).unwrap().unwrap(), b"second-longer-value");
        }
    }

    #[test]
    fn tree_delete_various_positions() {
        let mut s = tree_store(1000);
        for i in 0..200u64 {
            s.put(&k(i), b"value").unwrap();
        }
        // Delete every third key (hits leaves, inner nodes, borrows and
        // merges).
        for i in (0..200u64).step_by(3) {
            assert!(s.delete(&k(i)).unwrap(), "delete {i}");
        }
        for i in 0..200u64 {
            let expect = i % 3 != 0;
            assert_eq!(s.get(&k(i)).unwrap().is_some(), expect, "key {i}");
        }
        let keys = s.keys_in_order().unwrap();
        assert_eq!(keys.len() as u64, s.len());
        for w in keys.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn tree_delete_everything() {
        let mut s = tree_store(500);
        for i in 0..120u64 {
            s.put(&k(i), b"value").unwrap();
        }
        for i in 0..120u64 {
            assert!(s.delete(&k(i)).unwrap(), "delete {i}");
        }
        assert_eq!(s.len(), 0);
        assert_eq!(s.height(), 0);
        assert_eq!(s.get(&k(0)).unwrap(), None);
        // Reinsert after emptying.
        s.put(&k(1), b"again").unwrap();
        assert_eq!(s.get(&k(1)).unwrap().unwrap(), b"again");
    }

    #[test]
    fn tree_attack_child_pointer_swap_detected() {
        let mut s = tree_store(4000);
        for i in 0..1500u64 {
            s.put(&k(i), b"v").unwrap();
        }
        assert!(s.height() >= 3, "need two levels of inner nodes");
        assert!(s.attack_swap_child_pointers());
        // Scan a spread of keys: at least one path crosses the swapped
        // pointers and must fail verification.
        let mut detected = false;
        for i in 0..1500u64 {
            match s.get(&k(i)) {
                Err(e) if e.is_integrity_violation() => {
                    detected = true;
                    break;
                }
                _ => {}
            }
        }
        assert!(detected, "child pointer swap went undetected");
    }

    #[test]
    fn tree_attack_truncate_root_detected() {
        let mut s = tree_store(1000);
        for i in 0..100u64 {
            s.put(&k(i), b"v").unwrap();
        }
        assert!(s.attack_truncate_root());
        let mut detected = false;
        for i in 0..100u64 {
            match s.get(&k(i)) {
                Err(e) if e.is_integrity_violation() => {
                    detected = true;
                    break;
                }
                Ok(None) => {
                    // A silent miss with wrong depth must have been
                    // flagged instead.
                }
                _ => {}
            }
        }
        assert!(detected, "root truncation went undetected");
    }

    // --- B+-tree extension (Aria-T+) ------------------------------------------

    fn bplus_store(keys: u64) -> AriaBPlusTree {
        let mut cfg = StoreConfig::for_keys(keys);
        cfg.cache = CacheConfig::with_capacity(8 << 20);
        cfg.btree_order = 7;
        AriaBPlusTree::new(cfg, enclave()).unwrap()
    }

    #[test]
    fn bplus_put_get_roundtrip() {
        let mut s = bplus_store(2000);
        for i in 0..500u64 {
            s.put(&k(i), format!("bp-{i}").as_bytes()).unwrap();
        }
        assert_eq!(s.len(), 500);
        for i in 0..500u64 {
            assert_eq!(s.get(&k(i)).unwrap().unwrap(), format!("bp-{i}").as_bytes(), "key {i}");
        }
        assert_eq!(s.get(&k(9999)).unwrap(), None);
        assert!(s.height() >= 2);
    }

    #[test]
    fn bplus_scrambled_inserts_stay_ordered() {
        let mut s = bplus_store(1000);
        for i in 0..300u64 {
            s.put(&k((i * 7919) % 300), b"v").unwrap();
        }
        let keys = s.keys_in_order().unwrap();
        assert_eq!(keys.len(), 300);
        for w in keys.windows(2) {
            assert!(w[0] < w[1], "B+ order violated");
        }
    }

    #[test]
    fn bplus_update_existing() {
        let mut s = bplus_store(500);
        for i in 0..100u64 {
            s.put(&k(i), b"first").unwrap();
        }
        for i in 0..100u64 {
            s.put(&k(i), b"second-longer-value").unwrap();
        }
        assert_eq!(s.len(), 100);
        for i in 0..100u64 {
            assert_eq!(s.get(&k(i)).unwrap().unwrap(), b"second-longer-value");
        }
    }

    #[test]
    fn bplus_delete_various_positions() {
        let mut s = bplus_store(1000);
        for i in 0..200u64 {
            s.put(&k(i), b"value").unwrap();
        }
        for i in (0..200u64).step_by(3) {
            assert!(s.delete(&k(i)).unwrap(), "delete {i}");
        }
        for i in 0..200u64 {
            let expect = i % 3 != 0;
            assert_eq!(s.get(&k(i)).unwrap().is_some(), expect, "key {i}");
        }
        let keys = s.keys_in_order().unwrap();
        assert_eq!(keys.len() as u64, s.len());
    }

    #[test]
    fn bplus_delete_everything_and_reuse() {
        let mut s = bplus_store(500);
        for i in 0..120u64 {
            s.put(&k(i), b"value").unwrap();
        }
        for i in 0..120u64 {
            assert!(s.delete(&k(i)).unwrap(), "delete {i}");
        }
        assert_eq!(s.len(), 0);
        assert_eq!(s.height(), 0);
        s.put(&k(1), b"again").unwrap();
        assert_eq!(s.get(&k(1)).unwrap().unwrap(), b"again");
    }

    #[test]
    fn bplus_range_scan_streams_leaves() {
        let mut s = bplus_store(2000);
        for i in 0..400u64 {
            s.put(&k(i), format!("rv-{i}").as_bytes()).unwrap();
        }
        let got = s.range(&k(100), &k(150)).unwrap();
        assert_eq!(got.len(), 50);
        for (offset, (key, value)) in got.iter().enumerate() {
            assert_eq!(key, &k(100 + offset as u64));
            assert_eq!(value, format!("rv-{}", 100 + offset).as_bytes());
        }
        assert_eq!(s.range(&k(0), &k(400)).unwrap().len(), 400);
        assert_eq!(s.range(&k(50), &k(50)).unwrap().len(), 0);
    }

    #[test]
    fn bplus_range_survives_churn() {
        let mut s = bplus_store(1000);
        for i in 0..300u64 {
            s.put(&k(i), b"v1").unwrap();
        }
        for i in (0..300u64).step_by(2) {
            s.delete(&k(i)).unwrap();
        }
        for i in (0..300u64).step_by(5) {
            s.put(&k(i), b"v2").unwrap();
        }
        let got = s.range(&k(0), &k(300)).unwrap();
        let expect: Vec<u64> = (0..300).filter(|i| i % 2 == 1 || i % 5 == 0).collect();
        assert_eq!(got.len(), expect.len());
        for ((key, _), id) in got.iter().zip(expect.iter()) {
            assert_eq!(key, &k(*id));
        }
    }

    #[test]
    fn bplus_attack_child_pointer_swap_detected() {
        let mut s = bplus_store(4000);
        for i in 0..1500u64 {
            s.put(&k(i), b"v").unwrap();
        }
        assert!(s.height() >= 3);
        assert!(s.attack_swap_child_pointers());
        let mut detected = false;
        for i in 0..1500u64 {
            if matches!(s.get(&k(i)), Err(e) if e.is_integrity_violation()) {
                detected = true;
                break;
            }
        }
        assert!(detected, "B+ child pointer swap undetected");
    }

    #[test]
    fn bplus_point_lookup_cheaper_than_btree() {
        // The extension's headline: routing decrypts short separator keys
        // instead of full entries, so lookups cost fewer cycles at the
        // same order — especially with larger values.
        let cost_of = |bplus: bool| {
            let enclave = enclave();
            let mut cfg = StoreConfig::for_keys(4000);
            cfg.cache = CacheConfig::with_capacity(8 << 20);
            cfg.btree_order = 7;
            let mut s: Box<dyn KvStore> = if bplus {
                Box::new(AriaBPlusTree::new(cfg, Arc::clone(&enclave)).unwrap())
            } else {
                Box::new(AriaTree::new(cfg, Arc::clone(&enclave)).unwrap())
            };
            for i in 0..2000u64 {
                s.put(&k(i), &[7u8; 256]).unwrap();
            }
            let c0 = enclave.cycles();
            for i in 0..500u64 {
                s.get(&k(i * 3 % 2000)).unwrap();
            }
            (enclave.cycles() - c0) / 500
        };
        let btree = cost_of(false);
        let bplus = cost_of(true);
        assert!(bplus < btree, "B+ lookups ({bplus} cyc) should beat B-tree lookups ({btree} cyc)");
    }

    // --- cross-cutting --------------------------------------------------------

    #[test]
    fn memory_breakdown_reports_components() {
        let mut s = hash_store(10_000);
        for i in 0..1000u64 {
            s.put(&k(i), &[7u8; 64]).unwrap();
        }
        let m = s.memory_breakdown();
        assert!(m.merkle_untrusted > 10_000 * 16, "counters + inner nodes");
        assert!(m.heap_live > 0);
        assert!(m.epc_cache > 0);
        assert!(m.epc_total >= m.epc_cache);
    }

    #[test]
    fn cycles_accumulate_per_operation() {
        let mut s = hash_store(1000);
        s.put(&k(0), b"value").unwrap();
        let c0 = s.enclave().cycles();
        s.get(&k(0)).unwrap();
        let get_cost = s.enclave().cycles() - c0;
        assert!(get_cost > 1000, "a Get should cost >1k cycles, got {get_cost}");
        assert!(get_cost < 1_000_000, "a hot Get should not cost {get_cost}");
    }

    #[test]
    fn counter_expansion_under_load() {
        let mut cfg = StoreConfig::for_keys(64);
        cfg.counter_capacity = 64;
        cfg.cache = CacheConfig::with_capacity(1 << 20);
        cfg.expansion_cache_bytes = 1 << 20;
        let mut s = AriaHash::new(cfg, enclave()).unwrap();
        for i in 0..200u64 {
            s.put(&k(i), b"grow").unwrap();
        }
        for i in 0..200u64 {
            assert!(s.get(&k(i)).unwrap().is_some());
        }
        assert!(s.core().counters.as_cached().unwrap().trees() > 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use aria_cache::CacheConfig;
    use aria_sim::CostModel;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[derive(Debug, Clone)]
    enum Op {
        Put(u8, Vec<u8>),
        Get(u8),
        Delete(u8),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            4 => (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..64))
                .prop_map(|(k, v)| Op::Put(k, v)),
            3 => any::<u8>().prop_map(Op::Get),
            2 => any::<u8>().prop_map(Op::Delete),
        ]
    }

    fn key_of(id: u8) -> Vec<u8> {
        format!("prop-key-{id:03}").into_bytes()
    }

    fn run_model<S: KvStore>(store: &mut S, ops: Vec<Op>) -> Result<(), TestCaseError> {
        let mut model: HashMap<u8, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                Op::Put(id, v) => {
                    store.put(&key_of(id), &v).unwrap();
                    model.insert(id, v);
                }
                Op::Get(id) => {
                    let got = store.get(&key_of(id)).unwrap();
                    prop_assert_eq!(got.as_ref(), model.get(&id), "get {}", id);
                }
                Op::Delete(id) => {
                    let existed = store.delete(&key_of(id)).unwrap();
                    prop_assert_eq!(existed, model.remove(&id).is_some(), "delete {}", id);
                }
            }
            prop_assert_eq!(store.len(), model.len() as u64);
        }
        for (id, v) in &model {
            let got = store.get(&key_of(*id)).unwrap();
            prop_assert_eq!(got.as_ref(), Some(v));
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn hash_store_linearizes(ops in proptest::collection::vec(op_strategy(), 1..120)) {
            let enclave = Arc::new(Enclave::new(CostModel::default(), 512 << 20));
            let mut cfg = StoreConfig::for_keys(512);
            cfg.cache = CacheConfig::with_capacity(2 << 20);
            cfg.buckets = 16; // force chains
            let mut s = AriaHash::new(cfg, enclave).unwrap();
            run_model(&mut s, ops)?;
        }

        #[test]
        fn tree_store_linearizes(ops in proptest::collection::vec(op_strategy(), 1..120)) {
            let enclave = Arc::new(Enclave::new(CostModel::default(), 512 << 20));
            let mut cfg = StoreConfig::for_keys(512);
            cfg.cache = CacheConfig::with_capacity(2 << 20);
            cfg.btree_order = 5; // force splits and merges
            let mut s = AriaTree::new(cfg, enclave).unwrap();
            run_model(&mut s, ops)?;
        }

        #[test]
        fn tree_stays_ordered_under_churn(ops in proptest::collection::vec(op_strategy(), 1..100)) {
            let enclave = Arc::new(Enclave::new(CostModel::default(), 512 << 20));
            let mut cfg = StoreConfig::for_keys(512);
            cfg.cache = CacheConfig::with_capacity(2 << 20);
            cfg.btree_order = 5;
            let mut s = AriaTree::new(cfg, enclave).unwrap();
            for op in ops {
                match op {
                    Op::Put(id, v) => { s.put(&key_of(id), &v).unwrap(); }
                    Op::Get(id) => { s.get(&key_of(id)).unwrap(); }
                    Op::Delete(id) => { s.delete(&key_of(id)).unwrap(); }
                }
            }
            let keys = s.keys_in_order().unwrap();
            prop_assert_eq!(keys.len() as u64, s.len());
            for w in keys.windows(2) {
                prop_assert!(w[0] < w[1], "B-tree order violated");
            }
        }

        #[test]
        fn bplus_store_linearizes(ops in proptest::collection::vec(op_strategy(), 1..120)) {
            let enclave = Arc::new(Enclave::new(CostModel::default(), 512 << 20));
            let mut cfg = StoreConfig::for_keys(512);
            cfg.cache = CacheConfig::with_capacity(2 << 20);
            cfg.btree_order = 5; // force splits and merges
            let mut s = AriaBPlusTree::new(cfg, enclave).unwrap();
            run_model(&mut s, ops)?;
        }

        #[test]
        fn bplus_stays_ordered_under_churn(ops in proptest::collection::vec(op_strategy(), 1..100)) {
            let enclave = Arc::new(Enclave::new(CostModel::default(), 512 << 20));
            let mut cfg = StoreConfig::for_keys(512);
            cfg.cache = CacheConfig::with_capacity(2 << 20);
            cfg.btree_order = 5;
            let mut s = AriaBPlusTree::new(cfg, enclave).unwrap();
            for op in ops {
                match op {
                    Op::Put(id, v) => { s.put(&key_of(id), &v).unwrap(); }
                    Op::Get(id) => { s.get(&key_of(id)).unwrap(); }
                    Op::Delete(id) => { s.delete(&key_of(id)).unwrap(); }
                }
            }
            let keys = s.keys_in_order().unwrap();
            prop_assert_eq!(keys.len() as u64, s.len());
            for w in keys.windows(2) {
                prop_assert!(w[0] < w[1], "B+-tree order violated");
            }
        }

        #[test]
        fn without_cache_store_linearizes(ops in proptest::collection::vec(op_strategy(), 1..80)) {
            let enclave = Arc::new(Enclave::new(CostModel::default(), 512 << 20));
            let mut cfg = StoreConfig::for_keys(512);
            cfg.scheme = Scheme::AriaWithoutCache;
            cfg.buckets = 16;
            let mut s = AriaHash::new(cfg, enclave).unwrap();
            run_model(&mut s, ops)?;
        }

        #[test]
        fn baseline_store_linearizes(ops in proptest::collection::vec(op_strategy(), 1..80)) {
            let enclave = Arc::new(Enclave::new(CostModel::default(), 64 << 20));
            let mut s = BaselineStore::new(enclave, 1 << 20);
            run_model(&mut s, ops)?;
        }
    }
}
