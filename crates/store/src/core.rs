//! Shared plumbing for the Aria store variants: enclave handle, cipher
//! suite, untrusted heap, counter backend, and charged entry seal/open
//! helpers used by both index schemes.

use std::sync::Arc;

use aria_cache::CacheConfig;
use aria_crypto::{CipherSuite, RealSuite};
use aria_mem::{UPtr, UserHeap};
use aria_sim::Enclave;

use crate::config::{Scheme, StoreConfig};
use crate::counter::{CounterArea, CounterBackend, CounterStore, EpcCounters};
use crate::entry::{self, EntryHeader};
use crate::error::{StoreError, Violation};

/// Components shared by [`crate::AriaHash`] and [`crate::AriaTree`].
pub struct StoreCore {
    /// The (simulated) enclave all costs are charged to.
    pub enclave: Arc<Enclave>,
    /// Cipher suite for sealing entries.
    pub suite: Arc<dyn CipherSuite>,
    /// Untrusted heap holding sealed entries (and tree nodes).
    pub heap: UserHeap,
    /// Counter backend (Secure Cache or EPC array).
    pub counters: CounterBackend,
    /// Live keys.
    pub len: u64,
    /// The configuration the store was built with.
    pub config: StoreConfig,
}

impl StoreCore {
    /// Assemble the core from a config, charging EPC reservations to
    /// `enclave`. Pass a custom suite to use [`aria_crypto::FastSuite`]
    /// in large harness sweeps.
    pub fn new(
        cfg: StoreConfig,
        enclave: Arc<Enclave>,
        suite: Option<Arc<dyn CipherSuite>>,
    ) -> Result<Self, StoreError> {
        let suite: Arc<dyn CipherSuite> =
            suite.unwrap_or_else(|| Arc::new(RealSuite::from_master(&cfg.master_key)));
        let heap = UserHeap::new(Arc::clone(&enclave), cfg.alloc);
        let counters = match cfg.scheme {
            Scheme::Aria => CounterBackend::Cached(CounterArea::new(
                cfg.counter_capacity,
                cfg.arity,
                CacheConfig { ..cfg.cache.clone() },
                Arc::clone(&suite),
                Arc::clone(&enclave),
                cfg.expansion_cache_bytes,
                cfg.seed,
            )?),
            Scheme::AriaWithoutCache => CounterBackend::Epc(EpcCounters::new(
                cfg.counter_capacity,
                Arc::clone(&enclave),
                cfg.seed,
            )),
        };
        Ok(StoreCore { enclave, suite, heap, counters, len: 0, config: cfg })
    }

    fn check_lengths(key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        if key.len() > entry::MAX_KEY_LEN {
            return Err(StoreError::KeyTooLong { len: key.len() });
        }
        if value.len() > entry::MAX_VALUE_LEN {
            return Err(StoreError::ValueTooLong { len: value.len() });
        }
        Ok(())
    }

    fn mac_input_len(klen: usize, vlen: usize) -> usize {
        // redptr(8) + hint(4) + lens(4) + ciphertext + counter(16) + ad(8)
        16 + klen + vlen + 24
    }

    /// Seal a fresh entry into a new untrusted block; returns the block.
    #[allow(clippy::too_many_arguments)] // mirrors the sealed-entry fields
    pub fn seal_new(
        &mut self,
        next: UPtr,
        redptr: u64,
        key: &[u8],
        value: &[u8],
        counter: &[u8; 16],
        ad_field: u64,
    ) -> Result<UPtr, StoreError> {
        Self::check_lengths(key, value)?;
        self.enclave.charge_crypt(key.len() + value.len());
        self.enclave.charge_mac(Self::mac_input_len(key.len(), value.len()));
        let sealed =
            entry::seal_entry(self.suite.as_ref(), next, redptr, key, value, counter, ad_field);
        let ptr = self.heap.alloc(sealed.len())?;
        self.heap.write(ptr, &sealed)?;
        Ok(ptr)
    }

    /// Re-seal an existing block in place (same sealed length).
    #[allow(clippy::too_many_arguments)] // mirrors the sealed-entry fields
    pub fn seal_in_place(
        &mut self,
        ptr: UPtr,
        next: UPtr,
        redptr: u64,
        key: &[u8],
        value: &[u8],
        counter: &[u8; 16],
        ad_field: u64,
    ) -> Result<(), StoreError> {
        Self::check_lengths(key, value)?;
        self.enclave.charge_crypt(key.len() + value.len());
        self.enclave.charge_mac(Self::mac_input_len(key.len(), value.len()));
        let sealed =
            entry::seal_entry(self.suite.as_ref(), next, redptr, key, value, counter, ad_field);
        self.heap.write(ptr, &sealed)?;
        Ok(())
    }

    /// Read an entry's header (one small untrusted access).
    pub fn read_header(&self, ptr: UPtr) -> Result<EntryHeader, StoreError> {
        let bytes = self.heap.read(ptr, entry::HEADER_LEN)?;
        entry::parse_header(bytes).ok_or(StoreError::Integrity(Violation::EntryMacMismatch))
    }

    /// Read the full sealed bytes for a header.
    pub fn read_sealed(&self, ptr: UPtr, header: &EntryHeader) -> Result<Vec<u8>, StoreError> {
        Ok(self.heap.read(ptr, header.total_len())?.to_vec())
    }

    /// Verify + decrypt a sealed entry; charges MAC and decrypt costs.
    /// Fetches the trusted counter through the counter backend.
    pub fn open_checked(
        &mut self,
        sealed: &[u8],
        header: &EntryHeader,
        ad_field: u64,
    ) -> Result<(Vec<u8>, Vec<u8>), StoreError> {
        let counter = self.counters.get(header.redptr)?;
        // The sealed bytes are copied into the enclave before they can be
        // MAC-checked and decrypted (same copy-in ShieldStore pays for
        // its bucket candidate).
        self.enclave.access_epc(sealed.len());
        self.enclave.charge_mac(Self::mac_input_len(header.klen, header.vlen));
        self.enclave.charge_crypt(header.klen + header.vlen);
        entry::open_entry(self.suite.as_ref(), sealed, &counter, ad_field)
            .ok_or(StoreError::Integrity(Violation::EntryMacMismatch))
    }

    /// Recompute an entry's MAC for a new incoming-pointer cell (AdField),
    /// writing the refreshed sealed bytes back.
    pub fn reseal_ad_field(
        &mut self,
        ptr: UPtr,
        header: &EntryHeader,
        new_ad: u64,
    ) -> Result<(), StoreError> {
        let counter = self.counters.get(header.redptr)?;
        let mut sealed = self.read_sealed(ptr, header)?;
        self.enclave.charge_mac(Self::mac_input_len(header.klen, header.vlen));
        entry::reseal_ad_field(self.suite.as_ref(), &mut sealed, &counter, new_ad);
        self.heap.write(ptr, &sealed)?;
        Ok(())
    }

    /// Retire a counter: bump it first so any stale sealed bytes keyed to
    /// the old value can never verify again, then release the id.
    pub fn retire_counter(&mut self, redptr: u64) -> Result<(), StoreError> {
        self.counters.bump(redptr)?;
        self.counters.free(redptr)
    }
}

/// 64-bit FNV-1a over arbitrary bytes (bucket hashing).
pub fn hash_key(key: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}
