//! The redirection layer and counter-area management (paper §V-C).
//!
//! Every KV pair owns one 16-byte encryption counter, named by a counter
//! id (the entry's *RedPtr*). Free ids are recycled through a circular
//! buffer in **untrusted** memory, while a per-counter occupation bitmap
//! lives in the **EPC**: when a fetched id's bitmap bit is already set,
//! the untrusted free list must have been tampered with and an attack is
//! asserted.
//!
//! Two backends implement the counter store, mirroring the paper's
//! schemes:
//!
//! * [`CounterArea`] — full Aria: counters live under a Merkle tree with
//!   a [`SecureCache`] in front (one tree per expansion unit; a new tree
//!   is built when the area is exhausted, §V-A).
//! * [`EpcCounters`] — "Aria w/o Cache": all counters live inside the
//!   enclave in a flat array subject to hardware secure paging.

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

use aria_cache::{CacheConfig, SecureCache};
use aria_crypto::CipherSuite;
use aria_merkle::{MerkleTree, NodeId};
use aria_sim::{Enclave, PagedRegionId};
use aria_telemetry::{CacheTelemetry, MerkleTelemetry};

use crate::error::{StoreError, Violation};
use crate::RecoveryReport;

/// Bytes per counter.
pub const COUNTER_LEN: usize = 16;

/// Common behaviour of counter backends.
pub trait CounterStore {
    /// Acquire a free counter id.
    fn fetch(&mut self) -> Result<u64, StoreError>;
    /// Release a counter id (the caller must have bumped it first so any
    /// sealed bytes referencing the old value are invalidated).
    fn free(&mut self, id: u64) -> Result<(), StoreError>;
    /// Trusted read of a counter value.
    fn get(&mut self, id: u64) -> Result<[u8; COUNTER_LEN], StoreError>;
    /// Increment a counter, returning the new value.
    fn bump(&mut self, id: u64) -> Result<[u8; COUNTER_LEN], StoreError>;
    /// Counters currently allocated.
    fn live(&self) -> u64;
    /// Total counter slots provisioned (grows with area expansion).
    fn capacity(&self) -> u64;
}

/// Shared bitmap + free-ring logic.
struct IdAllocator {
    /// Occupation bitmap (conceptually in the EPC).
    bitmap: Vec<u64>,
    /// Circular buffer of freed ids (conceptually in untrusted memory).
    free_ring: VecDeque<u64>,
    next_fresh: u64,
    capacity: u64,
    live: u64,
}

impl IdAllocator {
    fn new(capacity: u64) -> Self {
        IdAllocator {
            bitmap: vec![0u64; (capacity as usize).div_ceil(64)],
            free_ring: VecDeque::new(),
            next_fresh: 0,
            capacity,
            live: 0,
        }
    }

    fn bitmap_bytes(capacity: u64) -> usize {
        (capacity as usize).div_ceil(64) * 8
    }

    fn bit(&self, id: u64) -> bool {
        (self.bitmap[(id / 64) as usize] >> (id % 64)) & 1 == 1
    }

    fn set_bit(&mut self, id: u64, v: bool) {
        if v {
            self.bitmap[(id / 64) as usize] |= 1 << (id % 64);
        } else {
            self.bitmap[(id / 64) as usize] &= !(1 << (id % 64));
        }
    }

    fn grow(&mut self, new_capacity: u64) {
        self.bitmap.resize((new_capacity as usize).div_ceil(64), 0);
        self.capacity = new_capacity;
    }

    /// Take an id from the ring or the fresh watermark. Returns
    /// `Err(Some(violation))` on attack, `Err(None)` when exhausted.
    fn take(&mut self, enclave: &Enclave) -> Result<u64, Option<Violation>> {
        if let Some(id) = self.free_ring.pop_front() {
            enclave.access_untrusted(8);
            enclave.access_epc(8);
            if self.bit(id) {
                return Err(Some(Violation::CounterReuse { counter: id }));
            }
            self.set_bit(id, true);
            self.live += 1;
            return Ok(id);
        }
        if self.next_fresh >= self.capacity {
            return Err(None);
        }
        let id = self.next_fresh;
        self.next_fresh += 1;
        enclave.access_epc(8);
        self.set_bit(id, true);
        self.live += 1;
        Ok(id)
    }

    fn release(&mut self, id: u64, enclave: &Enclave) -> Result<(), Violation> {
        enclave.access_epc(8);
        if id >= self.capacity || !self.bit(id) {
            return Err(Violation::CounterReuse { counter: id });
        }
        self.set_bit(id, false);
        self.live -= 1;
        self.free_ring.push_back(id);
        enclave.access_untrusted(8);
        Ok(())
    }

    /// Rebuild the untrusted free ring from the EPC bitmap. The ring may
    /// have been tampered with (entries dropped, duplicated, or forged);
    /// the bitmap is the ground truth, so after this every id below the
    /// fresh watermark whose bit is clear is free exactly once.
    fn rebuild_ring(&mut self, enclave: &Enclave) {
        self.free_ring.clear();
        for id in 0..self.next_fresh {
            enclave.access_epc(8);
            if !self.bit(id) {
                self.free_ring.push_back(id);
                enclave.access_untrusted(8);
            }
        }
    }
}

/// Full-Aria counter backend: Merkle-tree-protected counters behind the
/// Secure Cache, with expansion by whole trees.
pub struct CounterArea {
    caches: Vec<SecureCache>,
    per_tree: u64,
    ids: IdAllocator,
    enclave: Arc<Enclave>,
    suite: Arc<dyn CipherSuite>,
    arity: usize,
    expansion_cache_bytes: usize,
    seed: u64,
    /// Bumped on every recovery pass so reinitialized counters can never
    /// collide with any value ever handed out before the attack.
    recovery_epoch: u64,
    /// Telemetry handles re-attached to every cache built by expansion.
    tele: Option<(Arc<CacheTelemetry>, Arc<MerkleTelemetry>)>,
}

impl CounterArea {
    /// Build the initial tree + cache.
    pub fn new(
        capacity: u64,
        arity: usize,
        cache_cfg: CacheConfig,
        suite: Arc<dyn CipherSuite>,
        enclave: Arc<Enclave>,
        expansion_cache_bytes: usize,
        seed: u64,
    ) -> Result<Self, StoreError> {
        let tree = MerkleTree::new(capacity, arity, Arc::clone(&suite), seed);
        let cache =
            SecureCache::new(tree, Arc::clone(&enclave), cache_cfg).map_err(|e| match e {
                aria_cache::CacheError::EpcExhausted { .. } => StoreError::EpcExhausted,
                aria_cache::CacheError::CapacityTooSmall { .. } => StoreError::EpcExhausted,
            })?;
        enclave
            .epc_alloc(IdAllocator::bitmap_bytes(capacity))
            .map_err(|_| StoreError::EpcExhausted)?;
        Ok(CounterArea {
            caches: vec![cache],
            per_tree: capacity,
            ids: IdAllocator::new(capacity),
            enclave,
            suite,
            arity,
            expansion_cache_bytes,
            seed,
            recovery_epoch: 0,
            tele: None,
        })
    }

    /// Attach telemetry recorders to every Secure Cache (existing and,
    /// via [`CounterArea::expand`], future ones).
    pub fn set_telemetry(&mut self, cache: Arc<CacheTelemetry>, merkle: Arc<MerkleTelemetry>) {
        for c in &mut self.caches {
            c.set_telemetry(Arc::clone(&cache), Arc::clone(&merkle));
        }
        self.tele = Some((cache, merkle));
    }

    fn locate(&self, id: u64) -> (usize, u64) {
        ((id / self.per_tree) as usize, id % self.per_tree)
    }

    /// A counter id arriving from untrusted memory (an entry's RedPtr) is
    /// attacker-controlled until the entry MAC is checked — and the MAC
    /// check *needs* the counter. Ids outside the allocated area are
    /// therefore rejected as integrity violations up front.
    fn check_id(&self, id: u64) -> Result<(), StoreError> {
        if id >= self.per_tree * self.caches.len() as u64 {
            return Err(StoreError::Integrity(Violation::CounterReuse { counter: id }));
        }
        Ok(())
    }

    /// Build a fresh tree when the area is exhausted (§V-A: the paper
    /// reserves the next tree from a background thread; the simulator is
    /// single-threaded, so expansion happens synchronously at the same
    /// cost).
    fn expand(&mut self) -> Result<(), StoreError> {
        let tree_idx = self.caches.len() as u64;
        let tree = MerkleTree::new(
            self.per_tree,
            self.arity,
            Arc::clone(&self.suite),
            self.seed ^ (tree_idx.wrapping_mul(0x9e37_79b9)),
        );
        let cfg =
            CacheConfig { capacity_bytes: self.expansion_cache_bytes, ..CacheConfig::default() };
        let mut cache = SecureCache::new(tree, Arc::clone(&self.enclave), cfg)
            .map_err(|_| StoreError::EpcExhausted)?;
        if let Some((ct, mt)) = &self.tele {
            cache.set_telemetry(Arc::clone(ct), Arc::clone(mt));
        }
        self.enclave
            .epc_alloc(IdAllocator::bitmap_bytes(self.per_tree))
            .map_err(|_| StoreError::EpcExhausted)?;
        self.caches.push(cache);
        self.ids.grow(self.per_tree * (tree_idx + 1));
        Ok(())
    }

    /// Aggregate cache statistics across trees.
    pub fn cache_stats(&self) -> aria_cache::CacheStats {
        let mut total = aria_cache::CacheStats::default();
        for c in &self.caches {
            let s = c.stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.inserts += s.inserts;
            total.evictions += s.evictions;
            total.writebacks += s.writebacks;
            total.clean_discards += s.clean_discards;
            total.verify_levels += s.verify_levels;
            total.propagations += s.propagations;
        }
        total
    }

    /// Untrusted bytes of all Merkle trees (counters + inner nodes).
    pub fn merkle_bytes(&self) -> usize {
        self.caches.iter().map(|c| c.tree().total_bytes()).sum()
    }

    /// Per-level untrusted bytes of the first tree (§VI-D4 analysis).
    pub fn level_bytes(&self) -> Vec<usize> {
        self.caches[0].tree().level_bytes()
    }

    /// Whether swapping is still active on the first tree.
    pub fn swapping(&self) -> bool {
        self.caches[0].swapping()
    }

    /// Flush all Secure Caches (tests / shutdown).
    pub fn flush(&mut self) {
        for c in &mut self.caches {
            c.flush();
        }
    }

    /// Number of trees (1 + expansions).
    pub fn trees(&self) -> usize {
        self.caches.len()
    }

    /// Audit and repair every counter tree against enclave ground truth.
    ///
    /// Per tree: drain the Secure Cache's EPC-resident nodes into
    /// untrusted memory (they are ground truth), run the root-anchored
    /// [`MerkleTree::audit_leaves`] pass, reinitialize every counter in
    /// a condemned leaf with a globally fresh value (so no sealed entry
    /// referencing an old counter can ever verify again), rebuild the
    /// tree bottom-up, and re-pin the cache. Finally the untrusted free
    /// ring is rebuilt from the EPC bitmap. Counter ids are never lost:
    /// condemned ids stay allocated until their owning entries are
    /// excised by the index-level sweep.
    pub fn recover(&mut self) -> RecoveryReport {
        self.recovery_epoch += 1;
        let mut report = RecoveryReport::default();
        for (tree_idx, cache) in self.caches.iter_mut().enumerate() {
            let base = tree_idx as u64 * self.per_tree;
            let trusted: HashSet<NodeId> = cache.recovery_drain().into_iter().collect();
            let condemned = cache.tree().audit_leaves(&trusted);
            report.merkle_nodes_condemned += condemned.len() as u64;
            for leaf in &condemned {
                for slot in cache.tree().counters_in_leaf(*leaf) {
                    let value = fresh_counter(self.seed, self.recovery_epoch, base + slot);
                    self.enclave.access_untrusted(COUNTER_LEN);
                    cache.tree_mut_raw().write_counter_raw(slot, &value);
                    report.counters_reinitialized += 1;
                }
            }
            // Recompute every inner node + the enclave root from the
            // repaired leaves (the audit guarantees surviving leaves are
            // genuine, so the rebuilt root anchors only genuine data).
            let total = cache.tree().total_bytes();
            self.enclave.access_untrusted(total);
            self.enclave.charge_mac(total);
            cache.tree_mut_raw().rebuild();
            cache.recovery_repin();
        }
        self.ids.rebuild_ring(&self.enclave);
        report
    }

    /// Attacker access to a tree's untrusted state.
    pub fn cache_mut(&mut self, tree: usize) -> &mut SecureCache {
        &mut self.caches[tree]
    }

    /// Shared access for diagnostics.
    pub fn cache(&self, tree: usize) -> &SecureCache {
        &self.caches[tree]
    }
}

impl CounterStore for CounterArea {
    fn fetch(&mut self) -> Result<u64, StoreError> {
        match self.ids.take(&self.enclave) {
            Ok(id) => Ok(id),
            Err(Some(v)) => Err(StoreError::Integrity(v)),
            Err(None) => {
                self.expand()?;
                self.ids.take(&self.enclave).map_err(|_| StoreError::CountersExhausted)
            }
        }
    }

    fn free(&mut self, id: u64) -> Result<(), StoreError> {
        self.ids.release(id, &self.enclave).map_err(StoreError::Integrity)
    }

    fn get(&mut self, id: u64) -> Result<[u8; COUNTER_LEN], StoreError> {
        self.check_id(id)?;
        let (tree, slot) = self.locate(id);
        Ok(self.caches[tree].get_counter(slot)?)
    }

    fn bump(&mut self, id: u64) -> Result<[u8; COUNTER_LEN], StoreError> {
        self.check_id(id)?;
        let (tree, slot) = self.locate(id);
        Ok(self.caches[tree].bump_counter(slot)?)
    }

    fn live(&self) -> u64 {
        self.ids.live
    }

    fn capacity(&self) -> u64 {
        self.ids.capacity
    }
}

/// A counter value for `id` that is distinct from every value produced at
/// initialization or by any earlier recovery epoch (epoch 0 is reserved
/// for initialization; recovery epochs start at 1 and are folded into
/// both halves of the value).
fn fresh_counter(seed: u64, epoch: u64, id: u64) -> [u8; COUNTER_LEN] {
    let mut x = seed ^ epoch.rotate_left(17) ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    let mut v = [0u8; COUNTER_LEN];
    v[..8].copy_from_slice(&x.to_le_bytes());
    v[8..].copy_from_slice(&(id ^ epoch.rotate_left(48)).to_le_bytes());
    v
}

/// "Aria w/o Cache" backend: a flat counter array inside the enclave,
/// subject to hardware secure paging once it outgrows the EPC.
pub struct EpcCounters {
    values: Vec<[u8; COUNTER_LEN]>,
    region: PagedRegionId,
    ids: IdAllocator,
    enclave: Arc<Enclave>,
}

impl EpcCounters {
    /// Allocate the in-enclave counter array.
    pub fn new(capacity: u64, enclave: Arc<Enclave>, seed: u64) -> Self {
        let region = enclave.declare_paged_region(capacity as usize * COUNTER_LEN);
        let mut values = Vec::with_capacity(capacity as usize);
        for i in 0..capacity {
            let mut v = [0u8; COUNTER_LEN];
            let mut x = seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            v[..8].copy_from_slice(&x.to_le_bytes());
            v[8..].copy_from_slice(&i.to_le_bytes());
            values.push(v);
        }
        EpcCounters { values, region, ids: IdAllocator::new(capacity), enclave }
    }

    #[inline]
    fn touch(&self, id: u64) {
        self.enclave.touch_paged(self.region, id as usize * COUNTER_LEN, COUNTER_LEN);
    }

    /// Recovery for the in-enclave backend: the counters themselves are
    /// EPC-resident (nothing to audit), but the free ring is untrusted
    /// and is rebuilt from the bitmap.
    pub fn recover(&mut self) -> RecoveryReport {
        self.ids.rebuild_ring(&self.enclave);
        RecoveryReport::default()
    }
}

impl CounterStore for EpcCounters {
    fn fetch(&mut self) -> Result<u64, StoreError> {
        match self.ids.take(&self.enclave) {
            Ok(id) => Ok(id),
            Err(Some(v)) => Err(StoreError::Integrity(v)),
            Err(None) => {
                // Grow the in-enclave array (and its paged region).
                let old = self.values.len() as u64;
                let new_cap = old * 2;
                for i in old..new_cap {
                    let mut v = [0u8; COUNTER_LEN];
                    v[..8].copy_from_slice(&i.wrapping_mul(0x2545_f491_4f6c_dd1d).to_le_bytes());
                    v[8..].copy_from_slice(&i.to_le_bytes());
                    self.values.push(v);
                }
                self.enclave.grow_paged(self.region, new_cap as usize * COUNTER_LEN);
                self.ids.grow(new_cap);
                self.ids.take(&self.enclave).map_err(|_| StoreError::CountersExhausted)
            }
        }
    }

    fn free(&mut self, id: u64) -> Result<(), StoreError> {
        self.ids.release(id, &self.enclave).map_err(StoreError::Integrity)
    }

    fn get(&mut self, id: u64) -> Result<[u8; COUNTER_LEN], StoreError> {
        // Reject attacker-controlled out-of-range ids (see CounterArea).
        if id as usize >= self.values.len() {
            return Err(StoreError::Integrity(Violation::CounterReuse { counter: id }));
        }
        self.touch(id);
        Ok(self.values[id as usize])
    }

    fn bump(&mut self, id: u64) -> Result<[u8; COUNTER_LEN], StoreError> {
        if id as usize >= self.values.len() {
            return Err(StoreError::Integrity(Violation::CounterReuse { counter: id }));
        }
        self.touch(id);
        let v = &mut self.values[id as usize];
        aria_crypto::increment_counter(v);
        Ok(*v)
    }

    fn live(&self) -> u64 {
        self.ids.live
    }

    fn capacity(&self) -> u64 {
        self.ids.capacity
    }
}

/// Enum dispatch over the two backends (avoids generics in the store and
/// keeps bench code monomorphic).
pub enum CounterBackend {
    /// Secure-Cache-managed Merkle-tree counters (full Aria).
    Cached(CounterArea),
    /// Hardware-paged in-enclave array (Aria w/o Cache).
    Epc(EpcCounters),
}

impl CounterStore for CounterBackend {
    fn fetch(&mut self) -> Result<u64, StoreError> {
        match self {
            CounterBackend::Cached(c) => c.fetch(),
            CounterBackend::Epc(c) => c.fetch(),
        }
    }

    fn free(&mut self, id: u64) -> Result<(), StoreError> {
        match self {
            CounterBackend::Cached(c) => c.free(id),
            CounterBackend::Epc(c) => c.free(id),
        }
    }

    fn get(&mut self, id: u64) -> Result<[u8; COUNTER_LEN], StoreError> {
        match self {
            CounterBackend::Cached(c) => c.get(id),
            CounterBackend::Epc(c) => c.get(id),
        }
    }

    fn bump(&mut self, id: u64) -> Result<[u8; COUNTER_LEN], StoreError> {
        match self {
            CounterBackend::Cached(c) => c.bump(id),
            CounterBackend::Epc(c) => c.bump(id),
        }
    }

    fn live(&self) -> u64 {
        match self {
            CounterBackend::Cached(c) => c.live(),
            CounterBackend::Epc(c) => c.live(),
        }
    }

    fn capacity(&self) -> u64 {
        match self {
            CounterBackend::Cached(c) => c.capacity(),
            CounterBackend::Epc(c) => c.capacity(),
        }
    }
}

impl CounterBackend {
    /// Audit and repair whichever backend is in use (see
    /// [`CounterArea::recover`] / [`EpcCounters::recover`]).
    pub fn recover(&mut self) -> RecoveryReport {
        match self {
            CounterBackend::Cached(c) => c.recover(),
            CounterBackend::Epc(c) => c.recover(),
        }
    }

    /// The `CounterArea` if this is the cached backend.
    pub fn as_cached(&self) -> Option<&CounterArea> {
        match self {
            CounterBackend::Cached(c) => Some(c),
            CounterBackend::Epc(_) => None,
        }
    }

    /// Mutable variant of [`CounterBackend::as_cached`].
    pub fn as_cached_mut(&mut self) -> Option<&mut CounterArea> {
        match self {
            CounterBackend::Cached(c) => Some(c),
            CounterBackend::Epc(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aria_crypto::RealSuite;
    use aria_sim::CostModel;

    fn area(capacity: u64) -> CounterArea {
        let enclave = Arc::new(Enclave::new(CostModel::default(), 256 << 20));
        let suite: Arc<dyn CipherSuite> = Arc::new(RealSuite::from_master(&[2u8; 16]));
        CounterArea::new(
            capacity,
            8,
            CacheConfig::with_capacity(1 << 20),
            suite,
            enclave,
            1 << 20,
            9,
        )
        .unwrap()
    }

    #[test]
    fn fetch_returns_distinct_ids() {
        let mut a = area(100);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            assert!(seen.insert(a.fetch().unwrap()));
        }
        assert_eq!(a.live(), 100);
    }

    #[test]
    fn free_then_fetch_recycles() {
        let mut a = area(100);
        let id = a.fetch().unwrap();
        a.free(id).unwrap();
        assert_eq!(a.fetch().unwrap(), id);
    }

    #[test]
    fn double_free_detected() {
        let mut a = area(100);
        let id = a.fetch().unwrap();
        a.free(id).unwrap();
        assert!(matches!(a.free(id), Err(StoreError::Integrity(Violation::CounterReuse { .. }))));
    }

    #[test]
    fn exhaustion_triggers_expansion() {
        let mut a = area(64);
        for _ in 0..64 {
            a.fetch().unwrap();
        }
        assert_eq!(a.trees(), 1);
        let id = a.fetch().unwrap();
        assert_eq!(a.trees(), 2);
        assert_eq!(id, 64);
        // Counters in the second tree work.
        let v = a.get(id).unwrap();
        let b = a.bump(id).unwrap();
        assert_ne!(v, b);
    }

    #[test]
    fn bump_changes_value_monotonically() {
        let mut a = area(16);
        let id = a.fetch().unwrap();
        let v0 = a.get(id).unwrap();
        let v1 = a.bump(id).unwrap();
        let v2 = a.bump(id).unwrap();
        assert_ne!(v0, v1);
        assert_ne!(v1, v2);
        assert_eq!(a.get(id).unwrap(), v2);
    }

    #[test]
    fn recover_reinitializes_only_condemned_counters() {
        let mut a = area(256);
        let ids: Vec<u64> = (0..32).map(|_| a.fetch().unwrap()).collect();
        let survivor = a.get(ids[0]).unwrap();
        // Make the untrusted tree globally consistent, then corrupt the
        // leaf holding a *different* counter.
        a.cache_mut(0).flush();
        let (victim_leaf, _) = a.cache(0).tree().locate_counter(ids[20]);
        a.cache_mut(0).tree_mut_raw().node_mut_raw(victim_leaf)[0] ^= 0xff;
        assert!(a.get(ids[20]).is_err(), "corruption must be detected before recovery");

        let old_victim_region: Vec<[u8; 16]> = a
            .cache(0)
            .tree()
            .counters_in_leaf(victim_leaf)
            .map(|slot| a.cache(0).tree().counter_bytes(slot))
            .collect();
        let report = a.recover();
        assert_eq!(report.merkle_nodes_condemned, 1);
        assert_eq!(report.counters_reinitialized, 8);
        // The survivor's counter is untouched; the victims are fresh.
        assert_eq!(a.get(ids[0]).unwrap(), survivor);
        for (i, slot) in a.cache(0).tree().counters_in_leaf(victim_leaf).enumerate() {
            let new = a.cache(0).tree().counter_bytes(slot);
            assert_ne!(new, old_victim_region[i], "slot {slot} kept a condemned value");
        }
        // And everything verifies again.
        assert!(a.get(ids[20]).is_ok());
    }

    #[test]
    fn recover_rebuilds_tampered_free_ring() {
        let mut a = area(128);
        let ids: Vec<u64> = (0..10).map(|_| a.fetch().unwrap()).collect();
        for &id in &ids[..5] {
            a.free(id).unwrap();
        }
        // Attacker empties the (untrusted) free ring; without recovery the
        // freed ids would leak and fresh ids be burned instead.
        a.ids.free_ring.clear();
        a.recover();
        let mut recycled: Vec<u64> = (0..5).map(|_| a.fetch().unwrap()).collect();
        recycled.sort_unstable();
        assert_eq!(recycled, ids[..5].to_vec());
    }

    #[test]
    fn recover_keeps_cached_dirty_counters() {
        let mut a = area(256);
        let id = a.fetch().unwrap();
        let bumped = a.bump(id).unwrap(); // dirty in the EPC cache only
                                          // Attacker scribbles the untrusted copy of that leaf.
        let (leaf, _) = a.cache(0).tree().locate_counter(id);
        a.cache_mut(0).tree_mut_raw().node_mut_raw(leaf)[1] ^= 0x55;
        let report = a.recover();
        // The EPC-cached copy was ground truth: nothing condemned, the
        // bumped value survives.
        assert_eq!(report.merkle_nodes_condemned, 0);
        assert_eq!(a.get(id).unwrap(), bumped);
    }

    #[test]
    fn epc_backend_basics() {
        let enclave = Arc::new(Enclave::new(CostModel::default(), 16 << 20));
        let mut c = EpcCounters::new(1000, enclave, 5);
        let id = c.fetch().unwrap();
        let v0 = c.get(id).unwrap();
        let v1 = c.bump(id).unwrap();
        assert_ne!(v0, v1);
        c.free(id).unwrap();
        assert_eq!(c.fetch().unwrap(), id);
    }

    #[test]
    fn epc_backend_pages_when_larger_than_epc() {
        // 1 MB EPC, 4 MB of counters: accesses must fault.
        let enclave = Arc::new(Enclave::new(CostModel::default(), 1 << 20));
        let mut c = EpcCounters::new(262_144, Arc::clone(&enclave), 5);
        for i in 0..262_144u64 {
            if i % 64 == 0 {
                c.get(i % 262_144).unwrap_or_default();
            }
        }
        assert!(enclave.total_page_faults() > 0);
    }

    #[test]
    fn epc_backend_grows_on_exhaustion() {
        let enclave = Arc::new(Enclave::new(CostModel::default(), 16 << 20));
        let mut c = EpcCounters::new(4, enclave, 5);
        let ids: Vec<u64> = (0..10).map(|_| c.fetch().unwrap()).collect();
        assert_eq!(ids.len(), 10);
        assert_eq!(c.live(), 10);
    }
}
