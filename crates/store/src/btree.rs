//! Aria-T: the B-tree-indexed Aria store (paper §V-C).
//!
//! A classic B-tree (entries in every node, minimum degree `t`, max
//! `2t-1` entries per node) whose nodes live in untrusted memory. Node
//! blocks hold only pointers — every *entry* is a sealed KV block exactly
//! as in Aria-H — so choosing a branch requires fetching the entry's
//! counter through the Secure Cache, verifying its MAC and decrypting the
//! key. That per-comparison decryption is why the paper measures B-tree
//! throughput roughly an order of magnitude below the hash index.
//!
//! Index-connection protection: each entry's MAC AdField binds it to the
//! *parent pointer* of its containing node (`AD_ROOT_TAG` for entries in
//! the root, whose incoming pointer lives in the EPC). Swapping two child
//! pointers that live in different parent nodes therefore breaks the MACs
//! of every entry in both moved nodes. A swap of two siblings *within*
//! one parent is not caught by MACs alone (the paper's per-node binding
//! has the same node-granularity limit); it corrupts ordering and
//! surfaces as a failed lookup, which the in-enclave depth metadata then
//! flags: on any miss the descent depth must equal the trusted tree
//! height recorded in the enclave (§V-C's unauthorized-deletion check).

use aria_mem::UPtr;
use aria_sim::Enclave;
use std::sync::Arc;

use crate::config::StoreConfig;
use crate::core::StoreCore;
use crate::counter::CounterStore;
use crate::entry::{self, EntryHeader};
use crate::error::{StoreError, Violation};
use crate::{CacheStats, KvStore, RecoveryReport};

/// A decrypted `(key, value)` pair returned by range scans.
pub type KvPair = (Vec<u8>, Vec<u8>);

/// AdField for entries living in the root node (the root pointer is kept
/// in the EPC, so this anchor is trusted).
const AD_ROOT_TAG: u64 = (1 << 63) | (1 << 62);

fn ad_of_parent(parent: Option<UPtr>) -> u64 {
    match parent {
        None => AD_ROOT_TAG,
        Some(p) => {
            let v = u64::from_le_bytes(p.to_bytes());
            debug_assert_eq!(v & AD_ROOT_TAG, 0);
            v
        }
    }
}

/// In-enclave working copy of one untrusted node block.
#[derive(Debug, Clone)]
struct Node {
    leaf: bool,
    /// Sealed-entry pointers, sorted by plaintext key.
    entries: Vec<UPtr>,
    /// Child pointers (entries.len() + 1 of them when inner).
    children: Vec<UPtr>,
}

impl Node {
    fn new_leaf() -> Self {
        Node { leaf: true, entries: Vec::new(), children: Vec::new() }
    }

    fn serialized_len(order: usize) -> usize {
        8 + order * 8 + (order + 1) * 8
    }

    fn to_bytes(&self, order: usize) -> Vec<u8> {
        debug_assert!(self.entries.len() <= order);
        let mut out = vec![0u8; Self::serialized_len(order)];
        out[0] = self.leaf as u8;
        out[1..3].copy_from_slice(&(self.entries.len() as u16).to_le_bytes());
        let mut off = 8;
        for e in &self.entries {
            out[off..off + 8].copy_from_slice(&e.to_bytes());
            off += 8;
        }
        let mut off = 8 + order * 8;
        for c in &self.children {
            out[off..off + 8].copy_from_slice(&c.to_bytes());
            off += 8;
        }
        out
    }

    fn from_bytes(bytes: &[u8], order: usize) -> Option<Node> {
        if bytes.len() < Self::serialized_len(order) {
            return None;
        }
        let leaf = bytes[0] != 0;
        let count = u16::from_le_bytes(bytes[1..3].try_into().unwrap()) as usize;
        if count > order {
            return None;
        }
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let off = 8 + i * 8;
            entries.push(UPtr::from_bytes(&bytes[off..off + 8].try_into().unwrap()));
        }
        let mut children = Vec::new();
        if !leaf {
            for i in 0..=count {
                let off = 8 + order * 8 + i * 8;
                children.push(UPtr::from_bytes(&bytes[off..off + 8].try_into().unwrap()));
            }
        }
        Some(Node { leaf, entries, children })
    }
}

/// The B-tree-indexed Aria store.
pub struct AriaTree {
    core: StoreCore,
    /// Root node pointer — the index entrance, kept in the EPC.
    root: UPtr,
    /// Trusted tree height (root-to-leaf node count); deletion-attack
    /// detection metadata (§V-C).
    height: u32,
    /// Maximum entries per node (`2t - 1`; odd).
    order: usize,
}

impl AriaTree {
    /// Build a store charging costs and EPC to `enclave`.
    pub fn new(cfg: StoreConfig, enclave: Arc<Enclave>) -> Result<Self, StoreError> {
        Self::with_suite(cfg, enclave, None)
    }

    /// Like [`AriaTree::new`] with an explicit cipher suite.
    pub fn with_suite(
        cfg: StoreConfig,
        enclave: Arc<Enclave>,
        suite: Option<Arc<dyn aria_crypto::CipherSuite>>,
    ) -> Result<Self, StoreError> {
        let mut order = cfg.btree_order.max(3);
        if order.is_multiple_of(2) {
            order -= 1; // classic B-tree wants 2t-1
        }
        // Root pointer + height live in the EPC.
        enclave.epc_alloc(16).map_err(|_| StoreError::EpcExhausted)?;
        let core = StoreCore::new(cfg, enclave, suite)?;
        Ok(AriaTree { core, root: UPtr::NULL, height: 0, order })
    }

    fn min_entries(&self) -> usize {
        self.order / 2 // t - 1 for order = 2t - 1
    }

    // --- node IO -----------------------------------------------------------

    fn node_len(&self) -> usize {
        Node::serialized_len(self.order)
    }

    fn read_node(&self, ptr: UPtr) -> Result<Node, StoreError> {
        let bytes = self.core.heap.read(ptr, self.node_len())?;
        Node::from_bytes(bytes, self.order)
            .ok_or(StoreError::Integrity(Violation::EntryMacMismatch))
    }

    fn write_node(&mut self, ptr: UPtr, node: &Node) -> Result<(), StoreError> {
        let bytes = node.to_bytes(self.order);
        self.core.heap.write(ptr, &bytes)?;
        Ok(())
    }

    fn alloc_node(&mut self, node: &Node) -> Result<UPtr, StoreError> {
        let bytes = node.to_bytes(self.order);
        let ptr = self.core.heap.alloc(bytes.len())?;
        self.core.heap.write(ptr, &bytes)?;
        Ok(ptr)
    }

    // --- entry helpers -------------------------------------------------------

    /// Verify + decrypt the entry at `ptr` (contained in a node whose
    /// parent pointer is `ad`), returning `(key, value, header)`.
    fn open_entry(
        &mut self,
        ptr: UPtr,
        ad: u64,
    ) -> Result<(Vec<u8>, Vec<u8>, EntryHeader), StoreError> {
        let header = self.core.read_header(ptr)?;
        let sealed = self.core.read_sealed(ptr, &header)?;
        let (k, v) = self.core.open_checked(&sealed, &header, ad)?;
        Ok((k, v, header))
    }

    /// Re-bind an entry to a new containing-node parent (AdField change).
    fn rebind_entry(&mut self, ptr: UPtr, new_ad: u64) -> Result<(), StoreError> {
        let header = self.core.read_header(ptr)?;
        self.core.reseal_ad_field(ptr, &header, new_ad)
    }

    /// Re-bind every entry of `node` to `new_ad` (parent changed).
    fn rebind_node_entries(&mut self, node: &Node, new_ad: u64) -> Result<(), StoreError> {
        for &e in &node.entries {
            self.rebind_entry(e, new_ad)?;
        }
        Ok(())
    }

    /// Find the position of `key` in `node`: `Ok(i)` exact match at i,
    /// `Err(i)` descend into child i. Decrypts every scanned entry.
    fn position(
        &mut self,
        node: &Node,
        node_ad: u64,
        key: &[u8],
    ) -> Result<Result<usize, usize>, StoreError> {
        for (i, &eptr) in node.entries.iter().enumerate() {
            let (k, _v, _h) = self.open_entry(eptr, node_ad)?;
            match key.cmp(&k[..]) {
                std::cmp::Ordering::Equal => return Ok(Ok(i)),
                std::cmp::Ordering::Less => return Ok(Err(i)),
                std::cmp::Ordering::Greater => {}
            }
        }
        Ok(Err(node.entries.len()))
    }

    // --- insertion -----------------------------------------------------------

    /// Split the full child `ci` of the node at `parent_ptr`. The new
    /// right sibling shares the parent, so moved entries keep their
    /// binding; only the promoted median moves into the parent.
    fn split_child(
        &mut self,
        parent_ptr: UPtr,
        parent: &mut Node,
        parent_ad: u64,
        ci: usize,
    ) -> Result<(), StoreError> {
        let child_ptr = parent.children[ci];
        let mut child = self.read_node(child_ptr)?;
        let mid = self.order / 2;
        let right = Node {
            leaf: child.leaf,
            entries: child.entries.split_off(mid + 1),
            children: if child.leaf { Vec::new() } else { child.children.split_off(mid + 1) },
        };
        let median = child.entries.pop().expect("full node has a median");
        let right_ptr = self.alloc_node(&right)?;
        self.write_node(child_ptr, &child)?;
        // Children moved to the new right sibling have a new parent: their
        // entries' AdField binding must follow.
        if !right.leaf {
            for &gc in &right.children {
                let g = self.read_node(gc)?;
                self.rebind_node_entries(&g, ad_of_parent(Some(right_ptr)))?;
            }
        }
        parent.entries.insert(ci, median);
        parent.children.insert(ci + 1, right_ptr);
        self.write_node(parent_ptr, parent)?;
        // The median entry now lives in the parent: rebind it.
        self.rebind_entry(median, parent_ad)?;
        Ok(())
    }

    /// Recursive insert into a node guaranteed non-full.
    fn insert_nonfull(
        &mut self,
        node_ptr: UPtr,
        parent: Option<UPtr>,
        key: &[u8],
        value: &[u8],
    ) -> Result<bool, StoreError> {
        let mut node = self.read_node(node_ptr)?;
        let node_ad = ad_of_parent(parent);
        match self.position(&node, node_ad, key)? {
            Ok(i) => {
                // Key exists: bump counter, re-seal (possibly relocating).
                let old_ptr = node.entries[i];
                let header = self.core.read_header(old_ptr)?;
                let counter = self.core.counters.bump(header.redptr)?;
                let new_len = entry::sealed_len(key.len(), value.len());
                if aria_mem::UserHeap::same_block_class(new_len, header.total_len()) {
                    self.core.seal_in_place(
                        old_ptr,
                        UPtr::NULL,
                        header.redptr,
                        key,
                        value,
                        &counter,
                        node_ad,
                    )?;
                } else {
                    let new_ptr = self.core.seal_new(
                        UPtr::NULL,
                        header.redptr,
                        key,
                        value,
                        &counter,
                        node_ad,
                    )?;
                    node.entries[i] = new_ptr;
                    self.write_node(node_ptr, &node)?;
                    self.core.heap.free(old_ptr)?;
                }
                Ok(false)
            }
            Err(i) if node.leaf => {
                let redptr = self.core.counters.fetch()?;
                let counter = self.core.counters.bump(redptr)?;
                let eptr = self.core.seal_new(UPtr::NULL, redptr, key, value, &counter, node_ad)?;
                node.entries.insert(i, eptr);
                self.write_node(node_ptr, &node)?;
                Ok(true)
            }
            Err(mut i) => {
                let child_ptr = node.children[i];
                let child = self.read_node(child_ptr)?;
                if child.entries.len() == self.order {
                    self.split_child(node_ptr, &mut node, node_ad, i)?;
                    // Re-compare against the promoted median.
                    let (mk, _v, _h) = self.open_entry(node.entries[i], node_ad)?;
                    match key.cmp(&mk[..]) {
                        std::cmp::Ordering::Equal => {
                            return self.insert_nonfull(node_ptr, parent, key, value);
                        }
                        std::cmp::Ordering::Greater => i += 1,
                        std::cmp::Ordering::Less => {}
                    }
                }
                self.insert_nonfull(node.children[i], Some(node_ptr), key, value)
            }
        }
    }

    // --- deletion --------------------------------------------------------------

    /// Ensure `parent.children[ci]` has more than the minimum number of
    /// entries, borrowing from a sibling or merging. Returns the possibly
    /// changed child index to descend into.
    fn fill_child(
        &mut self,
        parent_ptr: UPtr,
        parent: &mut Node,
        parent_ad: u64,
        ci: usize,
    ) -> Result<usize, StoreError> {
        let child_ad = ad_of_parent(Some(parent_ptr));
        let child_ptr = parent.children[ci];
        let mut child = self.read_node(child_ptr)?;
        if child.entries.len() > self.min_entries() {
            return Ok(ci);
        }
        // Try borrowing from the left sibling.
        if ci > 0 {
            let left_ptr = parent.children[ci - 1];
            let mut left = self.read_node(left_ptr)?;
            if left.entries.len() > self.min_entries() {
                // Rotate right: parent separator down, left's max up.
                let sep = parent.entries[ci - 1];
                let from_left = left.entries.pop().expect("non-empty");
                child.entries.insert(0, sep);
                if !child.leaf {
                    let moved_child = left.children.pop().expect("inner has children");
                    child.children.insert(0, moved_child);
                    // moved_child's entries rebind from left to child.
                    let moved = self.read_node(moved_child)?;
                    self.rebind_node_entries(&moved, ad_of_parent(Some(child_ptr)))?;
                }
                parent.entries[ci - 1] = from_left;
                self.write_node(left_ptr, &left)?;
                self.write_node(child_ptr, &child)?;
                self.write_node(parent_ptr, parent)?;
                self.rebind_entry(sep, child_ad)?;
                self.rebind_entry(from_left, parent_ad)?;
                return Ok(ci);
            }
        }
        // Try the right sibling.
        if ci + 1 < parent.children.len() {
            let right_ptr = parent.children[ci + 1];
            let mut right = self.read_node(right_ptr)?;
            if right.entries.len() > self.min_entries() {
                let sep = parent.entries[ci];
                let from_right = right.entries.remove(0);
                child.entries.push(sep);
                if !child.leaf {
                    let moved_child = right.children.remove(0);
                    child.children.push(moved_child);
                    let moved = self.read_node(moved_child)?;
                    self.rebind_node_entries(&moved, ad_of_parent(Some(child_ptr)))?;
                }
                parent.entries[ci] = from_right;
                self.write_node(right_ptr, &right)?;
                self.write_node(child_ptr, &child)?;
                self.write_node(parent_ptr, parent)?;
                self.rebind_entry(sep, child_ad)?;
                self.rebind_entry(from_right, parent_ad)?;
                return Ok(ci);
            }
        }
        // Merge with a sibling. Merge child with its right sibling when
        // possible, else with the left one.
        let li = if ci + 1 < parent.children.len() { ci } else { ci - 1 };
        self.merge_children(parent_ptr, parent, li)?;
        Ok(li)
    }

    /// Merge `parent.children[li]` and `parent.children[li + 1]` around
    /// the separator `parent.entries[li]` (which moves down into the
    /// merged node). The merged node keeps the left pointer.
    fn merge_children(
        &mut self,
        parent_ptr: UPtr,
        parent: &mut Node,
        li: usize,
    ) -> Result<(), StoreError> {
        let left_ptr = parent.children[li];
        let right_ptr = parent.children[li + 1];
        let mut left = self.read_node(left_ptr)?;
        let right = self.read_node(right_ptr)?;
        let sep = parent.entries.remove(li);
        parent.children.remove(li + 1);
        left.entries.push(sep);
        self.rebind_entry(sep, ad_of_parent(Some(parent_ptr)))?;
        // Right's entries move into `left`, whose parent is the same
        // `parent_ptr`, so their binding value is unchanged. Only right's
        // *children* get a new parent node (left), so their entries
        // rebind.
        left.entries.extend_from_slice(&right.entries);
        if !left.leaf {
            for &gc in &right.children {
                let g = self.read_node(gc)?;
                self.rebind_node_entries(&g, ad_of_parent(Some(left_ptr)))?;
            }
            left.children.extend_from_slice(&right.children);
        }
        self.write_node(left_ptr, &left)?;
        self.write_node(parent_ptr, parent)?;
        self.core.heap.free(right_ptr)?;
        Ok(())
    }

    /// Extract the maximum entry pointer from the subtree at `node_ptr`,
    /// maintaining B-tree invariants on the way down.
    fn extract_max(&mut self, node_ptr: UPtr, parent: Option<UPtr>) -> Result<UPtr, StoreError> {
        let mut node = self.read_node(node_ptr)?;
        if node.leaf {
            let e = node.entries.pop().expect("invariant: non-empty");
            self.write_node(node_ptr, &node)?;
            return Ok(e);
        }
        let last = node.children.len() - 1;
        let node_ad = ad_of_parent(parent);
        let ci = self.fill_child(node_ptr, &mut node, node_ad, last)?;
        self.extract_max(node.children[ci], Some(node_ptr))
    }

    /// Extract the minimum entry pointer from the subtree.
    fn extract_min(&mut self, node_ptr: UPtr, parent: Option<UPtr>) -> Result<UPtr, StoreError> {
        let mut node = self.read_node(node_ptr)?;
        if node.leaf {
            let e = node.entries.remove(0);
            self.write_node(node_ptr, &node)?;
            return Ok(e);
        }
        let node_ad = ad_of_parent(parent);
        let ci = self.fill_child(node_ptr, &mut node, node_ad, 0)?;
        self.extract_min(node.children[ci], Some(node_ptr))
    }

    /// Recursive delete; node is guaranteed to have > min entries (or be
    /// the root).
    fn delete_from(
        &mut self,
        node_ptr: UPtr,
        parent: Option<UPtr>,
        key: &[u8],
    ) -> Result<bool, StoreError> {
        let mut node = self.read_node(node_ptr)?;
        let node_ad = ad_of_parent(parent);
        match self.position(&node, node_ad, key)? {
            Ok(i) => {
                let victim = node.entries[i];
                let header = self.core.read_header(victim)?;
                if node.leaf {
                    node.entries.remove(i);
                    self.write_node(node_ptr, &node)?;
                } else {
                    // Replace with predecessor or successor, preferring
                    // the side that can afford to lose an entry.
                    let left_ptr = node.children[i];
                    let left = self.read_node(left_ptr)?;
                    let replacement = if left.entries.len() > self.min_entries() {
                        self.extract_max(left_ptr, Some(node_ptr))?
                    } else {
                        let right_ptr = node.children[i + 1];
                        let right = self.read_node(right_ptr)?;
                        if right.entries.len() > self.min_entries() {
                            self.extract_min(right_ptr, Some(node_ptr))?
                        } else {
                            // Both neighbours at minimum: merge THEM around
                            // the victim (CLRS case 3c) — a generic
                            // fill_child could borrow from a farther
                            // sibling and leave the victim stranded in
                            // this node — then recurse into the merge.
                            self.merge_children(node_ptr, &mut node, i)?;
                            return self.delete_from(node.children[i], Some(node_ptr), key);
                        }
                    };
                    // Re-read: extraction may have restructured the node.
                    node = self.read_node(node_ptr)?;
                    let pos = self
                        .find_entry_position(&node, victim)
                        .ok_or(StoreError::Integrity(Violation::EntryMacMismatch))?;
                    node.entries[pos] = replacement;
                    self.write_node(node_ptr, &node)?;
                    self.rebind_entry(replacement, node_ad)?;
                }
                self.finish_delete(&header)?;
                Ok(true)
            }
            Err(_) if node.leaf => Ok(false),
            Err(i) => {
                let ci = self.fill_child(node_ptr, &mut node, node_ad, i)?;
                // fill_child may have merged the separator down; re-search
                // from this node to stay correct.
                let node = self.read_node(node_ptr)?;
                let _ = ci;
                match self.position(&node, node_ad, key)? {
                    Ok(_) => self.delete_from(node_ptr, parent, key),
                    Err(j) => self.delete_from(node.children[j], Some(node_ptr), key),
                }
            }
        }
    }

    fn find_entry_position(&self, node: &Node, target: UPtr) -> Option<usize> {
        node.entries.iter().position(|&e| e == target)
    }

    fn finish_delete(&mut self, header: &EntryHeader) -> Result<(), StoreError> {
        self.core.retire_counter(header.redptr)?;
        self.core.len -= 1;
        Ok(())
    }

    /// Collapse an empty root after deletion.
    fn shrink_root(&mut self) -> Result<(), StoreError> {
        if self.root.is_null() {
            return Ok(());
        }
        let root = self.read_node(self.root)?;
        if root.entries.is_empty() {
            if root.leaf {
                self.core.heap.free(self.root)?;
                self.root = UPtr::NULL;
                self.height = 0;
            } else {
                let new_root = root.children[0];
                self.core.heap.free(self.root)?;
                self.root = new_root;
                self.height -= 1;
                // Entries of the new root are now bound to the EPC anchor.
                let node = self.read_node(new_root)?;
                self.rebind_node_entries(&node, AD_ROOT_TAG)?;
            }
        }
        Ok(())
    }

    /// The store's core (diagnostics).
    pub fn core(&self) -> &StoreCore {
        &self.core
    }

    /// Mutable core access.
    pub fn core_mut(&mut self) -> &mut StoreCore {
        &mut self.core
    }

    /// Trusted tree height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Range scan: all `(key, value)` pairs with `lo <= key < hi`, in
    /// key order — the query class the paper motivates tree indexes with.
    /// Every entry touched is verified and decrypted (cost-charged like
    /// any other access), including the boundary entries used to prune
    /// subtrees.
    pub fn range(&mut self, lo: &[u8], hi: &[u8]) -> Result<Vec<KvPair>, StoreError> {
        let mut out = Vec::new();
        if self.root.is_null() || lo >= hi {
            return Ok(out);
        }
        self.core.enclave.charge(self.core.enclave.cost().request_fixed);
        self.range_walk(self.root, None, lo, hi, &mut out)?;
        Ok(out)
    }

    fn range_walk(
        &mut self,
        node_ptr: UPtr,
        parent: Option<UPtr>,
        lo: &[u8],
        hi: &[u8],
        out: &mut Vec<KvPair>,
    ) -> Result<(), StoreError> {
        let node = self.read_node(node_ptr)?;
        let node_ad = ad_of_parent(parent);
        for i in 0..node.entries.len() {
            let (k, v, _h) = self.open_entry(node.entries[i], node_ad)?;
            // Descend left of entry i when the range can contain keys
            // smaller than k.
            if !node.leaf && lo < k.as_slice() {
                self.range_walk(node.children[i], Some(node_ptr), lo, hi, out)?;
            }
            if k.as_slice() >= hi {
                return Ok(());
            }
            if k.as_slice() >= lo {
                out.push((k, v));
            }
        }
        if !node.leaf {
            // The rightmost subtree holds keys greater than every entry.
            let last = *node.children.last().expect("inner node has children");
            self.range_walk(last, Some(node_ptr), lo, hi, out)?;
        }
        Ok(())
    }

    /// In-order key ids (verified decrypting walk) — range-scan support
    /// and test oracle.
    pub fn keys_in_order(&mut self) -> Result<Vec<Vec<u8>>, StoreError> {
        let mut out = Vec::new();
        if self.root.is_null() {
            return Ok(out);
        }
        self.collect_in_order(self.root, None, &mut out)?;
        Ok(out)
    }

    fn collect_in_order(
        &mut self,
        node_ptr: UPtr,
        parent: Option<UPtr>,
        out: &mut Vec<Vec<u8>>,
    ) -> Result<(), StoreError> {
        let node = self.read_node(node_ptr)?;
        let node_ad = ad_of_parent(parent);
        for i in 0..node.entries.len() {
            if !node.leaf {
                self.collect_in_order(node.children[i], Some(node_ptr), out)?;
            }
            let (k, _v, _h) = self.open_entry(node.entries[i], node_ad)?;
            out.push(k);
        }
        if !node.leaf {
            self.collect_in_order(*node.children.last().expect("inner"), Some(node_ptr), out)?;
        }
        Ok(())
    }

    // --- attack API -------------------------------------------------------------

    /// Swap the first child pointers of two distinct inner nodes, without
    /// any bookkeeping (connection attack across parents).
    pub fn attack_swap_child_pointers(&mut self) -> bool {
        // Find two distinct inner nodes via BFS over raw node bytes.
        let mut inner_nodes = Vec::new();
        let mut queue = vec![self.root];
        while let Some(ptr) = queue.pop() {
            if ptr.is_null() {
                continue;
            }
            let Ok(bytes) = self.core.heap.read(ptr, self.node_len()) else { continue };
            let Some(node) = Node::from_bytes(bytes, self.order) else { continue };
            if !node.leaf {
                inner_nodes.push((ptr, node.clone()));
                queue.extend(node.children.iter().copied());
            }
        }
        if inner_nodes.len() < 2 {
            return false;
        }
        let (p1, mut n1) = inner_nodes[0].clone();
        let (p2, mut n2) = inner_nodes[1].clone();
        std::mem::swap(&mut n1.children[0], &mut n2.children[0]);
        let b1 = n1.to_bytes(self.order);
        let b2 = n2.to_bytes(self.order);
        let ok1 = self.core.heap.raw_mut(p1, b1.len()).map(|d| d.copy_from_slice(&b1)).is_ok();
        let ok2 = self.core.heap.raw_mut(p2, b2.len()).map(|d| d.copy_from_slice(&b2)).is_ok();
        ok1 && ok2
    }

    /// Clear the root's first entry + child without updating trusted
    /// metadata (unauthorized deletion).
    pub fn attack_truncate_root(&mut self) -> bool {
        if self.root.is_null() {
            return false;
        }
        let Ok(bytes) = self.core.heap.read(self.root, self.node_len()) else { return false };
        let Some(mut node) = Node::from_bytes(bytes, self.order) else { return false };
        if node.entries.is_empty() {
            return false;
        }
        node.entries.clear();
        if !node.leaf {
            let keep = node.children[0];
            node.children = vec![keep];
        }
        let b = node.to_bytes(self.order);
        self.core.heap.raw_mut(self.root, b.len()).map(|d| d.copy_from_slice(&b)).is_ok()
    }
}

impl KvStore for AriaTree {
    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.core.enclave.charge(self.core.enclave.cost().request_fixed);
        if self.root.is_null() {
            let redptr = self.core.counters.fetch()?;
            let counter = self.core.counters.bump(redptr)?;
            let eptr = self.core.seal_new(UPtr::NULL, redptr, key, value, &counter, AD_ROOT_TAG)?;
            let mut node = Node::new_leaf();
            node.entries.push(eptr);
            self.root = self.alloc_node(&node)?;
            self.height = 1;
            self.core.len = 1;
            return Ok(());
        }
        let root = self.read_node(self.root)?;
        if root.entries.len() == self.order {
            // Split the root: the old root's entries get a real parent.
            let old_root_ptr = self.root;
            let mut new_root =
                Node { leaf: false, entries: Vec::new(), children: vec![old_root_ptr] };
            let new_root_ptr = self.alloc_node(&new_root)?;
            // Old root entries rebind from the EPC anchor to the new root.
            self.rebind_node_entries(&root, ad_of_parent(Some(new_root_ptr)))?;
            self.split_child(new_root_ptr, &mut new_root, AD_ROOT_TAG, 0)?;
            self.root = new_root_ptr;
            self.height += 1;
        }
        let inserted = self.insert_nonfull(self.root, None, key, value)?;
        if inserted {
            self.core.len += 1;
        }
        Ok(())
    }

    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        self.core.enclave.charge(self.core.enclave.cost().request_fixed);
        if self.root.is_null() {
            return Ok(None);
        }
        let mut ptr = self.root;
        let mut parent = None;
        let mut depth = 0u32;
        loop {
            depth += 1;
            let node = self.read_node(ptr)?;
            // A persisted B-tree node always holds at least one entry
            // (empty roots are collapsed on delete); an empty node means
            // an attacker truncated it in untrusted memory.
            if node.entries.is_empty() {
                return Err(StoreError::Integrity(Violation::UnauthorizedDeletion));
            }
            let node_ad = ad_of_parent(parent);
            match self.position(&node, node_ad, key)? {
                Ok(i) => {
                    let (_k, v, _h) = self.open_entry(node.entries[i], node_ad)?;
                    return Ok(Some(v));
                }
                Err(i) => {
                    if node.leaf {
                        // Miss: the walked depth must match the trusted
                        // height or a node was unlinked by an attacker.
                        self.core.enclave.access_epc(4);
                        if depth != self.height {
                            return Err(StoreError::Integrity(Violation::UnauthorizedDeletion));
                        }
                        return Ok(None);
                    }
                    parent = Some(ptr);
                    ptr = node.children[i];
                }
            }
        }
    }

    fn delete(&mut self, key: &[u8]) -> Result<bool, StoreError> {
        self.core.enclave.charge(self.core.enclave.cost().request_fixed);
        if self.root.is_null() {
            return Ok(false);
        }
        let deleted = self.delete_from(self.root, None, key)?;
        self.shrink_root()?;
        Ok(deleted)
    }

    fn len(&self) -> u64 {
        self.core.len
    }

    fn enclave(&self) -> &Arc<Enclave> {
        &self.core.enclave
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        self.core.counters.as_cached().map(|c| {
            let s = c.cache_stats();
            CacheStats {
                hits: s.hits,
                misses: s.misses,
                swaps: s.evictions,
                swapping: c.swapping(),
            }
        })
    }

    /// Verify-and-re-admit recovery (tree variant).
    ///
    /// The B-tree has no per-bucket granularity to quarantine damage
    /// into, so recovery is *verify-only*: rebuild the counter layer and
    /// allocator free lists, then walk the whole index decrypting every
    /// entry. Any surviving corruption surfaces as `Err`, which the
    /// caller must treat as "this shard cannot be re-admitted".
    fn recover(&mut self) -> Result<RecoveryReport, StoreError> {
        let was_active = self.core.heap.faults_active();
        self.core.heap.suspend_faults(true);
        let mut report = self.core.counters.recover();
        self.core.heap.rebuild_freelists();
        let verified = self.keys_in_order().map(|keys| keys.len() as u64);
        self.core.heap.suspend_faults(!was_active);
        report.entries_verified = verified?;
        Ok(report)
    }
}
