//! Baseline scheme (paper §III / Figure 2): the entire KV store — index
//! and data — lives *inside* the enclave with no manual refactoring.
//!
//! SGX protects everything transparently, so there is no explicit crypto
//! and no MAC work; the cost is architectural: every access is
//! MEE-protected EPC traffic, and once the store outgrows the EPC the
//! hardware secure-paging mechanism thrashes (the sharp knee the paper
//! shows at ~24 MB keyspace).
//!
//! Contents are held in ordinary trusted collections; memory *touches*
//! are modelled against a paged region sized to the store's footprint,
//! with per-key offsets assigned at insertion (an entry's pages stay
//! stable, as with a real in-enclave allocator).

use std::collections::HashMap;
use std::sync::Arc;

use aria_sim::{Enclave, PagedRegionId};

use crate::error::StoreError;
use crate::KvStore;

/// Rough per-entry bookkeeping overhead inside the enclave (hash-map
/// bucket, allocator header).
const ENTRY_OVERHEAD: usize = 48;

struct Slot {
    value: Vec<u8>,
    /// Byte offset of this entry inside the paged region.
    offset: usize,
    /// Footprint reserved at `offset`.
    reserved: usize,
}

/// The all-in-enclave baseline store.
pub struct BaselineStore {
    enclave: Arc<Enclave>,
    map: HashMap<Vec<u8>, Slot>,
    region: PagedRegionId,
    /// Next free offset in the paged region.
    watermark: usize,
    region_bytes: usize,
}

impl BaselineStore {
    /// Create the store; `expected_bytes` sizes the initial paged region
    /// (it grows on demand).
    pub fn new(enclave: Arc<Enclave>, expected_bytes: usize) -> Self {
        let region_bytes = expected_bytes.max(1 << 20);
        let region = enclave.declare_paged_region(region_bytes);
        BaselineStore { enclave, map: HashMap::new(), region, watermark: 0, region_bytes }
    }

    fn reserve(&mut self, bytes: usize) -> usize {
        let offset = self.watermark;
        self.watermark += bytes;
        if self.watermark > self.region_bytes {
            self.region_bytes = (self.watermark * 2).max(self.region_bytes);
            self.enclave.grow_paged(self.region, self.region_bytes);
        }
        offset
    }

    /// Touch the index path for a key: a couple of dependent EPC accesses
    /// scattered over the region (hash-table probe behaviour).
    fn touch_index(&self, key: &[u8]) {
        let h = crate::core::hash_key(key) as usize;
        let span = self.region_bytes.max(1);
        self.enclave.touch_paged(self.region, h % span, 64);
    }

    fn touch_entry(&self, slot: &Slot) {
        self.enclave.touch_paged(self.region, slot.offset, slot.reserved.max(1));
    }

    /// Bytes currently reserved in the enclave region.
    pub fn footprint(&self) -> usize {
        self.watermark
    }
}

impl KvStore for BaselineStore {
    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.enclave.charge(self.enclave.cost().request_fixed);
        self.touch_index(key);
        let needed = key.len() + value.len() + ENTRY_OVERHEAD;
        if let Some(slot) = self.map.get(key) {
            if slot.reserved >= key.len() + value.len() + ENTRY_OVERHEAD {
                let (offset, reserved) = (slot.offset, slot.reserved);
                let slot = Slot { value: value.to_vec(), offset, reserved };
                self.touch_entry(&slot);
                self.map.insert(key.to_vec(), slot);
                return Ok(());
            }
        }
        let offset = self.reserve(needed);
        let slot = Slot { value: value.to_vec(), offset, reserved: needed };
        self.touch_entry(&slot);
        self.map.insert(key.to_vec(), slot);
        Ok(())
    }

    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        self.enclave.charge(self.enclave.cost().request_fixed);
        self.touch_index(key);
        match self.map.get(key) {
            Some(slot) => {
                self.touch_entry(slot);
                Ok(Some(slot.value.clone()))
            }
            None => Ok(None),
        }
    }

    fn delete(&mut self, key: &[u8]) -> Result<bool, StoreError> {
        self.enclave.charge(self.enclave.cost().request_fixed);
        self.touch_index(key);
        Ok(self.map.remove(key).is_some())
    }

    fn len(&self) -> u64 {
        self.map.len() as u64
    }

    fn enclave(&self) -> &Arc<Enclave> {
        &self.enclave
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aria_sim::CostModel;

    #[test]
    fn basic_crud() {
        let enclave = Arc::new(Enclave::new(CostModel::default(), 64 << 20));
        let mut s = BaselineStore::new(enclave, 1 << 20);
        s.put(b"a", b"1").unwrap();
        s.put(b"b", b"2").unwrap();
        assert_eq!(s.get(b"a").unwrap().as_deref(), Some(b"1".as_slice()));
        s.put(b"a", b"111").unwrap();
        assert_eq!(s.get(b"a").unwrap().as_deref(), Some(b"111".as_slice()));
        assert!(s.delete(b"a").unwrap());
        assert_eq!(s.get(b"a").unwrap(), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn small_store_never_faults() {
        let enclave = Arc::new(Enclave::new(CostModel::default(), 64 << 20));
        let mut s = BaselineStore::new(Arc::clone(&enclave), 1 << 20);
        for i in 0..1000u64 {
            s.put(&i.to_be_bytes(), &[0u8; 16]).unwrap();
        }
        for i in 0..1000u64 {
            s.get(&i.to_be_bytes()).unwrap();
        }
        assert_eq!(enclave.total_page_faults(), 0);
    }

    #[test]
    fn oversized_store_thrashes() {
        // 2 MB EPC, ~8 MB of data.
        let enclave = Arc::new(Enclave::new(CostModel::default(), 2 << 20));
        let mut s = BaselineStore::new(Arc::clone(&enclave), 8 << 20);
        for i in 0..16_000u64 {
            s.put(&i.to_be_bytes(), &[0u8; 448]).unwrap();
        }
        let faults_after_load = enclave.total_page_faults();
        assert!(faults_after_load > 1000, "got {faults_after_load}");
    }
}
