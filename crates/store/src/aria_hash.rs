//! Aria-H: the hash-table-indexed Aria store (paper §V-C).
//!
//! A chained hash table lives in untrusted memory: a bucket array of
//! untrusted pointers, each heading a singly linked chain of sealed
//! entries. Chain traversal compares the 4-byte plaintext-key *hint*
//! first, so non-matching entries are skipped without decryption.
//!
//! Index-connection protection: every entry's MAC covers the identity of
//! the *pointer cell* that points at it (a bucket slot or a predecessor's
//! `next` field). Swapping any two pointers therefore breaks the MACs of
//! both pointed-to entries. Unauthorized deletion (an attacker clearing a
//! pointer) is caught by the per-bucket entry counters kept inside the
//! enclave: on any miss, the number of entries walked must equal the
//! trusted count.

use aria_mem::UPtr;
use aria_sim::Enclave;
use std::collections::HashMap;
use std::sync::Arc;

use crate::config::StoreConfig;
use crate::core::{hash_key, StoreCore};
use crate::counter::CounterStore;
use crate::entry::{self, EntryHeader};
use crate::error::{StoreError, Violation};
use crate::{CacheStats, KvStore, RecoveryReport};

/// Tag bit marking a bucket-slot AdField (vs an entry `next`-cell one).
const AD_BUCKET_TAG: u64 = 1 << 63;

/// A pointer cell: where an entry's incoming pointer lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cell {
    /// Bucket array slot.
    Bucket(usize),
    /// The `next` field of the entry stored at this block.
    Next(UPtr),
}

impl Cell {
    fn ad_field(self) -> u64 {
        match self {
            Cell::Bucket(i) => AD_BUCKET_TAG | i as u64,
            Cell::Next(ptr) => {
                let v = u64::from_le_bytes(ptr.to_bytes());
                debug_assert_eq!(v & AD_BUCKET_TAG, 0, "chunk id overflow into tag bit");
                v
            }
        }
    }
}

/// The hash-indexed Aria store.
pub struct AriaHash {
    core: StoreCore,
    /// Bucket heads (untrusted memory).
    buckets: Vec<UPtr>,
    /// Per-bucket entry counts (EPC; deletion-attack detection). One
    /// byte per bucket keeps the EPC footprint small; a count saturates
    /// at 255 (practically unreachable at sane load factors), after
    /// which the deletion check for that bucket is skipped.
    bucket_counts: Vec<u8>,
    /// Bitset of poisoned buckets (EPC). A recovery pass poisons a
    /// bucket when it destroyed or lost entries there: misses in a
    /// poisoned bucket fail closed with [`Violation::DataDestroyed`]
    /// because "absent" and "deleted by the attacker" are no longer
    /// distinguishable. Poisoning is permanent; hits and fresh puts
    /// work normally.
    poisoned: Vec<u64>,
    /// Telemetry recorders, if attached (see [`KvStore::attach_telemetry`]).
    tele: Option<Arc<aria_telemetry::ShardTelemetry>>,
}

impl AriaHash {
    /// Build a store charging costs and EPC to `enclave`.
    pub fn new(cfg: StoreConfig, enclave: Arc<Enclave>) -> Result<Self, StoreError> {
        Self::with_suite(cfg, enclave, None)
    }

    /// Like [`AriaHash::new`] with an explicit cipher suite.
    pub fn with_suite(
        cfg: StoreConfig,
        enclave: Arc<Enclave>,
        suite: Option<Arc<dyn aria_crypto::CipherSuite>>,
    ) -> Result<Self, StoreError> {
        let buckets = cfg.buckets;
        // Per-bucket trusted counts + the poisoned-bucket bitset live in
        // the EPC (1 byte + 1 bit per bucket).
        let poison_words = buckets.div_ceil(64);
        enclave.epc_alloc(buckets + poison_words * 8).map_err(|_| StoreError::EpcExhausted)?;
        let core = StoreCore::new(cfg, enclave, suite)?;
        Ok(AriaHash {
            core,
            buckets: vec![UPtr::NULL; buckets],
            bucket_counts: vec![0; buckets],
            poisoned: vec![0; poison_words],
            tele: None,
        })
    }

    fn bucket_of(&self, key: &[u8]) -> usize {
        (hash_key(key) % self.buckets.len() as u64) as usize
    }

    fn read_cell(&self, cell: Cell) -> Result<UPtr, StoreError> {
        if let Some(t) = &self.tele {
            t.store.index_probes.inc();
        }
        self.core.enclave.access_untrusted(8);
        match cell {
            Cell::Bucket(i) => Ok(self.buckets[i]),
            Cell::Next(ptr) => {
                let bytes = self.core.heap.read(ptr, 8)?;
                Ok(UPtr::from_bytes(&bytes.try_into().expect("8 bytes")))
            }
        }
    }

    fn write_cell(&mut self, cell: Cell, target: UPtr) -> Result<(), StoreError> {
        self.core.enclave.access_untrusted(8);
        match cell {
            Cell::Bucket(i) => {
                self.buckets[i] = target;
                Ok(())
            }
            Cell::Next(ptr) => Ok(self.core.heap.write(ptr, &target.to_bytes())?),
        }
    }

    /// Walk a bucket chain calling `visit(cell, ptr, header)` for each
    /// entry; stops early when `visit` returns `Some`.
    fn walk<T>(
        &mut self,
        bucket: usize,
        mut visit: impl FnMut(&mut Self, Cell, UPtr, &EntryHeader) -> Result<Option<T>, StoreError>,
    ) -> Result<(Option<T>, Cell, u32), StoreError> {
        let mut cell = Cell::Bucket(bucket);
        let mut walked = 0u32;
        loop {
            let ptr = self.read_cell(cell)?;
            if ptr.is_null() {
                return Ok((None, cell, walked));
            }
            let header = self.read_header(ptr)?;
            walked += 1;
            if let Some(found) = visit(self, cell, ptr, &header)? {
                return Ok((Some(found), cell, walked));
            }
            cell = Cell::Next(ptr);
        }
    }

    fn read_header(&self, ptr: UPtr) -> Result<EntryHeader, StoreError> {
        self.core.read_header(ptr)
    }

    /// Verify the trusted per-bucket count against a completed walk.
    fn check_count(&self, bucket: usize, walked: u32) -> Result<(), StoreError> {
        self.core.enclave.access_epc(1);
        let stored = self.bucket_counts[bucket];
        if stored == u8::MAX {
            return Ok(()); // saturated: cannot distinguish
        }
        if u32::from(stored) != walked {
            return Err(StoreError::Integrity(Violation::UnauthorizedDeletion));
        }
        Ok(())
    }

    /// Full-chain verification, used when a lookup misses: every entry in
    /// the bucket is MAC-checked against its incoming pointer cell, so a
    /// spliced or swapped chain cannot silently hide a key behind
    /// non-matching hints. (Hits never pay this; the paper's key hint
    /// keeps the hit path at one verification.)
    fn verify_chain_on_miss(&mut self, bucket: usize) -> Result<u32, StoreError> {
        let (_, _, walked) = self.walk(bucket, |this, cell, ptr, header| {
            let sealed = this.core.read_sealed(ptr, header)?;
            let counter = this.core.counters.get(header.redptr)?;
            this.core.enclave.charge_mac(16 + header.klen + header.vlen + 24);
            if !entry::verify_entry(this.core.suite.as_ref(), &sealed, &counter, cell.ad_field()) {
                return Err(StoreError::Integrity(Violation::EntryMacMismatch));
            }
            Ok(None::<()>)
        })?;
        Ok(walked)
    }

    fn bucket_poisoned(&self, bucket: usize) -> bool {
        self.core.enclave.access_epc(8);
        (self.poisoned[bucket / 64] >> (bucket % 64)) & 1 == 1
    }

    fn poison_bucket(&mut self, bucket: usize) {
        self.core.enclave.access_epc(8);
        self.poisoned[bucket / 64] |= 1 << (bucket % 64);
    }

    /// Number of buckets a recovery pass has poisoned (fail-closed).
    pub fn poisoned_buckets(&self) -> u64 {
        self.poisoned.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    // --- recovery -----------------------------------------------------------

    /// Verify the entry at `ptr` (incoming cell `cell`) end to end.
    /// `Err(Some(next))` condemns the entry but preserves the chain tail;
    /// `Err(None)` means not even the header parsed, so the tail is
    /// unreachable.
    fn verify_entry_at(&mut self, cell: Cell, ptr: UPtr) -> Result<EntryHeader, Option<UPtr>> {
        let Ok(header) = self.read_header(ptr) else { return Err(None) };
        let Ok(sealed) = self.core.read_sealed(ptr, &header) else { return Err(Some(header.next)) };
        let Ok(counter) = self.core.counters.get(header.redptr) else {
            return Err(Some(header.next));
        };
        self.core.enclave.charge_mac(16 + header.klen + header.vlen + 24);
        if entry::verify_entry(self.core.suite.as_ref(), &sealed, &counter, cell.ad_field()) {
            Ok(header)
        } else {
            Err(Some(header.next))
        }
    }

    /// Before excising a condemned entry, refresh its successor's AdField
    /// to the cell it is about to be re-linked from — but only if the
    /// successor verifies against its *current* incoming cell first.
    /// Resealing an unverified entry would launder corrupt bytes under a
    /// fresh MAC; a successor that fails here is simply left for the
    /// sweep to condemn on its own.
    fn reseal_successor_if_intact(&mut self, excised: UPtr, succ: UPtr, new_cell: Cell) {
        if succ.is_null() {
            return;
        }
        let Ok(header) = self.read_header(succ) else { return };
        let Ok(sealed) = self.core.read_sealed(succ, &header) else { return };
        let Ok(counter) = self.core.counters.get(header.redptr) else { return };
        let old_ad = Cell::Next(excised).ad_field();
        if entry::verify_entry(self.core.suite.as_ref(), &sealed, &counter, old_ad) {
            let _ = self.core.reseal_ad_field(succ, &header, new_cell.ad_field());
        }
    }

    /// Recovery sweep of one bucket chain: every entry is MAC-verified
    /// against its incoming cell; condemned entries are excised and their
    /// blocks freed. Returns `(entries kept, entries destroyed)`.
    ///
    /// Counter ids of excised entries are deliberately **not** released:
    /// a corrupt entry's RedPtr field is attacker-controlled, and freeing
    /// whatever id it names could release a live counter out from under
    /// an intact entry elsewhere. Leaking the id is the safe direction.
    fn sweep_bucket(&mut self, bucket: usize) -> (u64, u64) {
        let mut kept = 0u64;
        let mut destroyed = 0u64;
        let mut cell = Cell::Bucket(bucket);
        loop {
            let ptr = match self.read_cell(cell) {
                Ok(p) => p,
                Err(_) => {
                    // The cell itself is unreadable: cut the chain here.
                    let _ = self.write_cell(cell, UPtr::NULL);
                    destroyed += 1;
                    break;
                }
            };
            if ptr.is_null() {
                break;
            }
            match self.verify_entry_at(cell, ptr) {
                Ok(_header) => {
                    kept += 1;
                    cell = Cell::Next(ptr);
                }
                Err(Some(next)) => {
                    destroyed += 1;
                    self.reseal_successor_if_intact(ptr, next, cell);
                    let _ = self.write_cell(cell, next);
                    let _ = self.core.heap.free(ptr);
                    // Do not advance: `cell` now reaches `next`.
                }
                Err(None) => {
                    // Unparsable header: the tail pointer is garbage too.
                    destroyed += 1;
                    let _ = self.write_cell(cell, UPtr::NULL);
                    let _ = self.core.heap.free(ptr);
                    break;
                }
            }
        }
        (kept, destroyed)
    }

    fn recover_inner(&mut self) -> RecoveryReport {
        // Counter layer first: Merkle audit + fresh counters + free ring.
        let mut report = self.core.counters.recover();
        // Heap free lists from the EPC block bitmaps.
        self.core.heap.rebuild_freelists();
        // Index sweep: with the counter layer repaired, an entry MAC that
        // verifies proves the entry is the genuine latest version.
        let mut total_kept = 0u64;
        for bucket in 0..self.buckets.len() {
            self.core.enclave.access_epc(1);
            let stored = self.bucket_counts[bucket];
            let (kept, destroyed) = self.sweep_bucket(bucket);
            let silently_missing = stored != u8::MAX && u64::from(stored) != kept;
            if (destroyed > 0 || silently_missing) && !self.bucket_poisoned(bucket) {
                self.poison_bucket(bucket);
                report.buckets_poisoned += 1;
            }
            self.bucket_counts[bucket] = kept.min(u64::from(u8::MAX)) as u8;
            report.entries_destroyed += destroyed;
            report.entries_verified += kept;
            total_kept += kept;
        }
        self.core.len = total_kept;
        report
    }

    /// The store's core (diagnostics: cache stats, heap stats, ...).
    pub fn core(&self) -> &StoreCore {
        &self.core
    }

    /// Mutable core access (attack helpers, cache flush in tests).
    pub fn core_mut(&mut self) -> &mut StoreCore {
        &mut self.core
    }

    /// Number of hash buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    // --- attack-injection API (untrusted-side adversary) ------------------

    /// Locate the block of `key` as an attacker would (hint matching, no
    /// verification, no cost accounting).
    pub fn attack_locate(&self, key: &[u8]) -> Option<UPtr> {
        let bucket = self.bucket_of(key);
        let hint = entry::key_hint(key);
        let mut ptr = self.buckets[bucket];
        while !ptr.is_null() {
            let bytes = self.core.heap.read(ptr, entry::HEADER_LEN).ok()?;
            let header = entry::parse_header(bytes)?;
            if header.hint == hint {
                return Some(ptr);
            }
            ptr = header.next;
        }
        None
    }

    /// Flip a bit inside the ciphertext of `key`'s entry.
    pub fn attack_tamper_value(&mut self, key: &[u8]) -> bool {
        let Some(ptr) = self.attack_locate(key) else { return false };
        let Ok(bytes) = self.core.heap.raw_mut(ptr, entry::HEADER_LEN + 1) else { return false };
        bytes[entry::HEADER_LEN] ^= 0x01;
        true
    }

    /// Snapshot the sealed bytes of `key`'s entry (for a later replay).
    pub fn attack_snapshot(&self, key: &[u8]) -> Option<(UPtr, Vec<u8>)> {
        let ptr = self.attack_locate(key)?;
        let bytes = self.core.heap.read(ptr, entry::HEADER_LEN).ok()?;
        let header = entry::parse_header(bytes)?;
        let full = self.core.heap.read(ptr, header.total_len()).ok()?;
        Some((ptr, full.to_vec()))
    }

    /// Replay previously captured sealed bytes over the same block.
    pub fn attack_replay(&mut self, snapshot: &(UPtr, Vec<u8>)) -> bool {
        let (ptr, bytes) = snapshot;
        match self.core.heap.raw_mut(*ptr, bytes.len()) {
            Ok(dst) => {
                dst.copy_from_slice(bytes);
                true
            }
            Err(_) => false,
        }
    }

    /// Swap the head pointers of the buckets holding `key_a` and `key_b`
    /// (Figure 7's connection attack).
    pub fn attack_swap_bucket_pointers(&mut self, key_a: &[u8], key_b: &[u8]) {
        let (a, b) = (self.bucket_of(key_a), self.bucket_of(key_b));
        self.buckets.swap(a, b);
    }

    /// Unlink `key`'s entry from its chain without touching the trusted
    /// metadata (unauthorized deletion).
    pub fn attack_unauthorized_delete(&mut self, key: &[u8]) -> bool {
        let bucket = self.bucket_of(key);
        let hint = entry::key_hint(key);
        let mut cell = Cell::Bucket(bucket);
        loop {
            let ptr = match cell {
                Cell::Bucket(i) => self.buckets[i],
                Cell::Next(p) => {
                    let Ok(b) = self.core.heap.read(p, 8) else { return false };
                    UPtr::from_bytes(&b.try_into().expect("8 bytes"))
                }
            };
            if ptr.is_null() {
                return false;
            }
            let Ok(bytes) = self.core.heap.read(ptr, entry::HEADER_LEN) else { return false };
            let Some(header) = entry::parse_header(bytes) else { return false };
            if header.hint == hint {
                let next = header.next;
                match cell {
                    Cell::Bucket(i) => self.buckets[i] = next,
                    Cell::Next(p) => {
                        let Ok(dst) = self.core.heap.raw_mut(p, 8) else { return false };
                        dst.copy_from_slice(&next.to_bytes());
                    }
                }
                return true;
            }
            cell = Cell::Next(ptr);
        }
    }
}

impl AriaHash {
    /// `put` without the fixed per-request charge (shared by the single
    /// and batched entry points, which charge it differently).
    fn put_inner(&mut self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        let bucket = self.bucket_of(key);
        let hint = entry::key_hint(key);
        let key_owned = key.to_vec();

        // Walk the chain looking for an existing key (hint first, then
        // verified decrypt to confirm).
        let (found, tail_cell, _walked) = self.walk(bucket, |this, cell, ptr, header| {
            if header.hint != hint {
                return Ok(None);
            }
            let sealed = this.core.read_sealed(ptr, header)?;
            let (k, _v) = this.core.open_checked(&sealed, header, cell.ad_field())?;
            if k == key_owned {
                Ok(Some((cell, ptr, *header)))
            } else {
                Ok(None)
            }
        })?;

        if let Some((cell, ptr, header)) = found {
            // Update in place: bump the counter, re-encrypt, re-MAC.
            let counter = self.core.counters.bump(header.redptr)?;
            let new_len = entry::sealed_len(key.len(), value.len());
            let old_len = header.total_len();
            if aria_mem::UserHeap::same_block_class(new_len, old_len) {
                self.core.seal_in_place(
                    ptr,
                    header.next,
                    header.redptr,
                    key,
                    value,
                    &counter,
                    cell.ad_field(),
                )?;
            } else {
                // Relocate the entry; the successor's incoming cell moves
                // with the block, so its AdField must be refreshed.
                let new_ptr = self.core.seal_new(
                    header.next,
                    header.redptr,
                    key,
                    value,
                    &counter,
                    cell.ad_field(),
                )?;
                self.write_cell(cell, new_ptr)?;
                if !header.next.is_null() {
                    let succ = self.read_header(header.next)?;
                    self.core.reseal_ad_field(
                        header.next,
                        &succ,
                        Cell::Next(new_ptr).ad_field(),
                    )?;
                }
                self.core.heap.free(ptr)?;
            }
            return Ok(());
        }

        // Insert at the tail: the incoming cell is the walk's final cell.
        let redptr = self.core.counters.fetch()?;
        let counter = self.core.counters.bump(redptr)?;
        let new_ptr =
            self.core.seal_new(UPtr::NULL, redptr, key, value, &counter, tail_cell.ad_field())?;
        self.write_cell(tail_cell, new_ptr)?;
        self.core.enclave.access_epc(1);
        self.bucket_counts[bucket] = self.bucket_counts[bucket].saturating_add(1);
        self.core.len += 1;
        Ok(())
    }

    /// `get` without the fixed per-request charge.
    fn get_inner(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        let bucket = self.bucket_of(key);
        let hint = entry::key_hint(key);
        let key_owned = key.to_vec();
        let (found, _cell, walked) = self.walk(bucket, |this, cell, ptr, header| {
            if header.hint != hint {
                return Ok(None);
            }
            let sealed = this.core.read_sealed(ptr, header)?;
            let (k, v) = this.core.open_checked(&sealed, header, cell.ad_field())?;
            if k == key_owned {
                Ok(Some(v))
            } else {
                Ok(None)
            }
        })?;
        match found {
            Some(v) => Ok(Some(v)),
            None => {
                let _ = walked;
                let verified = self.verify_chain_on_miss(bucket)?;
                self.check_count(bucket, verified)?;
                if self.bucket_poisoned(bucket) {
                    // A recovery pass destroyed data in this bucket: the
                    // key may have existed. Refuse to answer "absent".
                    return Err(StoreError::Integrity(Violation::DataDestroyed));
                }
                Ok(None)
            }
        }
    }

    /// `delete` without the fixed per-request charge.
    fn delete_inner(&mut self, key: &[u8]) -> Result<bool, StoreError> {
        let bucket = self.bucket_of(key);
        let hint = entry::key_hint(key);
        let key_owned = key.to_vec();
        let (found, _cell, walked) = self.walk(bucket, |this, cell, ptr, header| {
            if header.hint != hint {
                return Ok(None);
            }
            let sealed = this.core.read_sealed(ptr, header)?;
            let (k, _v) = this.core.open_checked(&sealed, header, cell.ad_field())?;
            if k == key_owned {
                Ok(Some((cell, ptr, *header)))
            } else {
                Ok(None)
            }
        })?;
        let Some((cell, ptr, header)) = found else {
            let _ = walked;
            let verified = self.verify_chain_on_miss(bucket)?;
            self.check_count(bucket, verified)?;
            if self.bucket_poisoned(bucket) {
                return Err(StoreError::Integrity(Violation::DataDestroyed));
            }
            return Ok(false);
        };
        // Unlink, refresh the successor's AdField (its incoming cell moved
        // from our next-field to our predecessor cell).
        self.write_cell(cell, header.next)?;
        if !header.next.is_null() {
            let succ = self.read_header(header.next)?;
            self.core.reseal_ad_field(header.next, &succ, cell.ad_field())?;
        }
        self.core.retire_counter(header.redptr)?;
        self.core.heap.free(ptr)?;
        self.core.enclave.access_epc(1);
        if self.bucket_counts[bucket] != u8::MAX {
            self.bucket_counts[bucket] -= 1;
        }
        self.core.len -= 1;
        Ok(true)
    }
}

impl KvStore for AriaHash {
    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.core.enclave.charge(self.core.enclave.cost().request_fixed);
        self.put_inner(key, value)
    }

    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        self.core.enclave.charge(self.core.enclave.cost().request_fixed);
        self.get_inner(key)
    }

    fn delete(&mut self, key: &[u8]) -> Result<bool, StoreError> {
        self.core.enclave.charge(self.core.enclave.cost().request_fixed);
        self.delete_inner(key)
    }

    fn len(&self) -> u64 {
        self.core.len
    }

    fn enclave(&self) -> &Arc<Enclave> {
        &self.core.enclave
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        self.core.counters.as_cached().map(|c| {
            let s = c.cache_stats();
            CacheStats {
                hits: s.hits,
                misses: s.misses,
                swaps: s.evictions,
                swapping: c.swapping(),
            }
        })
    }

    fn attach_telemetry(&mut self, tele: Arc<aria_telemetry::ShardTelemetry>) {
        self.core.heap.set_telemetry(Arc::clone(&tele.mem));
        if let Some(area) = self.core.counters.as_cached_mut() {
            area.set_telemetry(Arc::clone(&tele.cache), Arc::clone(&tele.merkle));
        }
        self.tele = Some(tele);
    }

    fn refresh_gauges(&self) {
        if let Some(t) = &self.tele {
            let heap = self.core.heap.stats();
            t.mem.live_bytes.set(heap.live_bytes as u64);
            t.mem.free_buffer_bytes.set(heap.freelist_bytes as u64);
            t.store.keys_live.set(self.core.len);
            t.store.counter_live.set(self.core.counters.live());
            t.store.counter_capacity.set(self.core.counters.capacity());
        }
    }

    /// Batched lookup: the fixed request cost (ECALL dispatch, argument
    /// marshalling) is charged **once for the whole batch**, and repeated
    /// keys — the common case under zipfian skew — are resolved by a
    /// single chain walk and Merkle-path verification, then memoized.
    fn multi_get(&mut self, keys: &[&[u8]]) -> Vec<Result<Option<Vec<u8>>, StoreError>> {
        self.core.enclave.charge(self.core.enclave.cost().request_fixed);
        let mut memo: HashMap<Vec<u8>, Result<Option<Vec<u8>>, StoreError>> = HashMap::new();
        keys.iter()
            .map(|key| {
                if let Some(cached) = memo.get(*key) {
                    return cached.clone();
                }
                let result = self.get_inner(key);
                memo.insert(key.to_vec(), result.clone());
                result
            })
            .collect()
    }

    /// Batched insert: one fixed request charge per batch, and writes to
    /// the same key are coalesced — only the **last** value per key is
    /// sealed (one counter bump, one encryption, one Merkle update per
    /// distinct key), which is exactly the state a sequential replay
    /// would leave. Coalesced slots report the applied write's result.
    fn put_batch(&mut self, pairs: &[(&[u8], &[u8])]) -> Vec<Result<(), StoreError>> {
        self.core.enclave.charge(self.core.enclave.cost().request_fixed);
        // Index of the last write per key.
        let mut last_write: HashMap<&[u8], usize> = HashMap::new();
        for (i, (key, _)) in pairs.iter().enumerate() {
            last_write.insert(*key, i);
        }
        // Apply the surviving writes in order, then fan results out.
        let mut applied: HashMap<&[u8], Result<(), StoreError>> = HashMap::new();
        for (i, (key, value)) in pairs.iter().enumerate() {
            if last_write[*key] == i {
                applied.insert(*key, self.put_inner(key, value));
            }
        }
        pairs.iter().map(|(key, _)| applied[*key].clone()).collect()
    }

    /// Stream verified pairs for anti-entropy re-sync. The cursor is a
    /// bucket index; whole chains are exported at a time (a chunk may
    /// exceed `max` by one chain's length), so the cursor stays valid
    /// across calls as long as the store is not mutated in between.
    /// Every pair is produced by [`StoreCore::open_checked`] — a full
    /// MAC + counter verification inside the enclave — so a tampered
    /// entry aborts the export with the violation instead of leaking
    /// corrupt bytes to the rejoining replica.
    fn export_chunk(
        &mut self,
        cursor: u64,
        max: usize,
    ) -> Result<(Vec<(Vec<u8>, Vec<u8>)>, Option<u64>), StoreError> {
        self.core.enclave.charge(self.core.enclave.cost().request_fixed);
        let nbuckets = self.buckets.len() as u64;
        let mut bucket = cursor;
        let mut out: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        while bucket < nbuckets && out.len() < max.max(1) {
            let mut chain: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
            self.walk(bucket as usize, |this, cell, ptr, header| {
                let sealed = this.core.read_sealed(ptr, header)?;
                let (k, v) = this.core.open_checked(&sealed, header, cell.ad_field())?;
                chain.push((k, v));
                Ok(None::<()>)
            })?;
            out.append(&mut chain);
            bucket += 1;
        }
        let next = (bucket < nbuckets).then_some(bucket);
        Ok((out, next))
    }

    /// Full repair against enclave ground truth: counter-layer audit
    /// (Merkle trees, free ring), heap free-list rebuild, then a
    /// MAC-verifying sweep of every chain that excises whatever no
    /// longer verifies and poisons the affected buckets (fail-closed).
    /// Fault injection on the heap is suspended for the duration — the
    /// pass models a quiesced shard re-verifying from a safe state.
    fn recover(&mut self) -> Result<RecoveryReport, StoreError> {
        let was_active = self.core.heap.faults_active();
        self.core.heap.suspend_faults(true);
        let report = self.recover_inner();
        self.core.heap.suspend_faults(!was_active);
        Ok(report)
    }
}
