//! AES-CMAC (RFC 4493), mirroring `sgx_rijndael128_cmac`.
//!
//! Aria computes one 16-byte CMAC per KV pair over the concatenation of the
//! redirection pointer, the encrypted KV bytes, the counter value and the
//! index-protection additional field, and 16-byte CMACs over Merkle-tree
//! node contents. The streaming interface lets callers MAC multi-part
//! messages without concatenating into a scratch buffer.

use crate::aes::Aes128;

/// Size of a CMAC tag in bytes.
pub const MAC_LEN: usize = 16;

fn left_shift_one(block: &[u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    let mut carry = 0u8;
    for i in (0..16).rev() {
        out[i] = (block[i] << 1) | carry;
        carry = block[i] >> 7;
    }
    out
}

/// Keyed CMAC context with the two RFC 4493 subkeys precomputed.
#[derive(Clone)]
pub struct CmacKey {
    cipher: Aes128,
    k1: [u8; 16],
    k2: [u8; 16],
}

impl std::fmt::Debug for CmacKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CmacKey").finish_non_exhaustive()
    }
}

impl CmacKey {
    /// Derive the CMAC subkeys from a 16-byte key.
    pub fn new(key: &[u8; 16]) -> Self {
        let cipher = Aes128::new(key);
        let l = cipher.encrypt(&[0u8; 16]);
        let mut k1 = left_shift_one(&l);
        if l[0] & 0x80 != 0 {
            k1[15] ^= 0x87;
        }
        let mut k2 = left_shift_one(&k1);
        if k1[0] & 0x80 != 0 {
            k2[15] ^= 0x87;
        }
        CmacKey { cipher, k1, k2 }
    }

    /// MAC a single contiguous message.
    pub fn mac(&self, msg: &[u8]) -> [u8; MAC_LEN] {
        let mut ctx = Cmac::new(self);
        ctx.update(msg);
        ctx.finalize()
    }

    /// MAC the concatenation of `parts` without materializing it.
    pub fn mac_parts(&self, parts: &[&[u8]]) -> [u8; MAC_LEN] {
        let mut ctx = Cmac::new(self);
        for p in parts {
            ctx.update(p);
        }
        ctx.finalize()
    }

    /// Constant-shape verification helper: recompute and compare.
    pub fn verify(&self, msg: &[u8], tag: &[u8; MAC_LEN]) -> bool {
        // Not constant-time (the simulator is not a hardened target), but
        // compares the full tag so truncation attacks are impossible.
        self.mac(msg) == *tag
    }
}

/// Streaming CMAC state over a [`CmacKey`].
pub struct Cmac<'k> {
    key: &'k CmacKey,
    state: [u8; 16],
    buf: [u8; 16],
    buf_len: usize,
    total: u64,
}

impl<'k> Cmac<'k> {
    /// Start a new MAC computation.
    pub fn new(key: &'k CmacKey) -> Self {
        Cmac { key, state: [0u8; 16], buf: [0u8; 16], buf_len: 0, total: 0 }
    }

    /// Absorb message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total += data.len() as u64;
        // A full buffered block may only be processed once we know more
        // input follows (the final block gets subkey treatment instead).
        while !data.is_empty() {
            if self.buf_len == 16 {
                self.process_buf();
            }
            let take = (16 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
        }
    }

    fn process_buf(&mut self) {
        for i in 0..16 {
            self.state[i] ^= self.buf[i];
        }
        self.key.cipher.encrypt_block(&mut self.state);
        self.buf_len = 0;
    }

    /// Finish and produce the 16-byte tag.
    pub fn finalize(mut self) -> [u8; MAC_LEN] {
        let mut last = [0u8; 16];
        if self.total > 0 && self.buf_len == 16 {
            // Complete final block: xor with K1.
            for (l, (b, k)) in last.iter_mut().zip(self.buf.iter().zip(self.key.k1.iter())) {
                *l = b ^ k;
            }
        } else {
            // Empty or partial final block: pad with 10^* and xor with K2.
            last[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            last[self.buf_len] = 0x80;
            for (l, k) in last.iter_mut().zip(self.key.k2.iter()) {
                *l ^= k;
            }
        }
        for (s, l) in self.state.iter_mut().zip(last.iter()) {
            *s ^= l;
        }
        self.key.cipher.encrypt_block(&mut self.state);
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    fn rfc_key() -> CmacKey {
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        CmacKey::new(&key)
    }

    #[test]
    fn rfc4493_subkeys() {
        let k = rfc_key();
        assert_eq!(k.k1.to_vec(), hex("fbeed618357133667c85e08f7236a8de"));
        assert_eq!(k.k2.to_vec(), hex("f7ddac306ae266ccf90bc11ee46d513b"));
    }

    #[test]
    fn rfc4493_example_1_empty() {
        assert_eq!(rfc_key().mac(&[]).to_vec(), hex("bb1d6929e95937287fa37d129b756746"));
    }

    #[test]
    fn rfc4493_example_2_one_block() {
        let msg = hex("6bc1bee22e409f96e93d7e117393172a");
        assert_eq!(rfc_key().mac(&msg).to_vec(), hex("070a16b46b4d4144f79bdd9dd04a287c"));
    }

    #[test]
    fn rfc4493_example_3_40_bytes() {
        let msg =
            hex("6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411");
        assert_eq!(rfc_key().mac(&msg).to_vec(), hex("dfa66747de9ae63030ca32611497c827"));
    }

    #[test]
    fn rfc4493_example_4_64_bytes() {
        let msg = hex("6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51\
             30c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710");
        assert_eq!(rfc_key().mac(&msg).to_vec(), hex("51f0bebf7e3b9d92fc49741779363cfe"));
    }

    #[test]
    fn streaming_matches_one_shot_at_all_split_points() {
        let k = rfc_key();
        let msg: Vec<u8> = (0..100u8).collect();
        let expected = k.mac(&msg);
        for split in 0..=msg.len() {
            let mut ctx = Cmac::new(&k);
            ctx.update(&msg[..split]);
            ctx.update(&msg[split..]);
            assert_eq!(ctx.finalize(), expected, "split at {split}");
        }
    }

    #[test]
    fn mac_parts_matches_concatenation() {
        let k = rfc_key();
        let a = b"redptr--";
        let b = b"encrypted kv bytes here";
        let c = b"ctr_value_16byte";
        let concat: Vec<u8> = [a.as_slice(), b.as_slice(), c.as_slice()].concat();
        assert_eq!(k.mac_parts(&[a, b, c]), k.mac(&concat));
    }

    #[test]
    fn tamper_detection() {
        let k = rfc_key();
        let msg = b"some protected kv pair".to_vec();
        let tag = k.mac(&msg);
        assert!(k.verify(&msg, &tag));
        for bit in [0usize, 7, 50, msg.len() * 8 - 1] {
            let mut bad = msg.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(!k.verify(&bad, &tag), "flip of bit {bit} went undetected");
        }
    }
}
