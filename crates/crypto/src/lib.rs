//! Cryptographic primitives for the Aria secure in-memory KV store.
//!
//! The paper's implementation uses the Intel SGX SDK's
//! `sgx_aes_ctr_encrypt` (confidentiality) and `sgx_rijndael128_cmac`
//! (integrity). This crate provides the same algorithms implemented from
//! scratch:
//!
//! * [`aes::Aes128`] — FIPS-197 AES-128 forward cipher,
//! * [`ctr`] — counter-mode encryption with 16-byte counter blocks,
//! * [`cmac`] — AES-CMAC per RFC 4493 with a streaming interface,
//! * [`suite::CipherSuite`] — the pluggable provider the rest of the
//!   workspace programs against, with the production [`suite::RealSuite`]
//!   and the harness-only [`suite::FastSuite`].
//!
//! All algorithms are validated against FIPS-197, NIST SP 800-38A and
//! RFC 4493 test vectors in the unit tests, and by property tests below.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod cmac;
pub mod ctr;
pub mod suite;

pub use aes::Aes128;
pub use cmac::{Cmac, CmacKey, MAC_LEN};
pub use ctr::{ctr_crypt, increment_counter};
pub use suite::{CipherSuite, FastSuite, Mac, RealSuite};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn ctr_roundtrip(key in any::<[u8; 16]>(), iv in any::<[u8; 16]>(),
                         data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let cipher = Aes128::new(&key);
            let mut buf = data.clone();
            ctr_crypt(&cipher, &iv, &mut buf);
            ctr_crypt(&cipher, &iv, &mut buf);
            prop_assert_eq!(buf, data);
        }

        #[test]
        fn cmac_single_bit_flip_changes_tag(
            key in any::<[u8; 16]>(),
            data in proptest::collection::vec(any::<u8>(), 1..256),
            flip in any::<usize>(),
        ) {
            let k = CmacKey::new(&key);
            let tag = k.mac(&data);
            let bit = flip % (data.len() * 8);
            let mut bad = data.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            prop_assert_ne!(k.mac(&bad), tag);
        }

        #[test]
        fn cmac_streaming_equals_oneshot(
            key in any::<[u8; 16]>(),
            parts in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..64), 0..8),
        ) {
            let k = CmacKey::new(&key);
            let concat: Vec<u8> = parts.iter().flatten().copied().collect();
            let slices: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
            prop_assert_eq!(k.mac_parts(&slices), k.mac(&concat));
        }

        #[test]
        fn fast_suite_roundtrip(master in any::<[u8; 16]>(), ctr in any::<[u8; 16]>(),
                                data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let s = FastSuite::from_master(&master);
            let mut buf = data.clone();
            s.crypt(&ctr, &mut buf);
            s.crypt(&ctr, &mut buf);
            prop_assert_eq!(buf, data);
        }

        #[test]
        fn fast_suite_mac_tamper(master in any::<[u8; 16]>(),
                                 data in proptest::collection::vec(any::<u8>(), 1..256),
                                 flip in any::<usize>()) {
            let s = FastSuite::from_master(&master);
            let tag = s.mac(&data);
            let bit = flip % (data.len() * 8);
            let mut bad = data.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            prop_assert_ne!(s.mac(&bad), tag);
        }
    }
}
