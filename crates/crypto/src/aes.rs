//! AES-128 block cipher (encryption direction only), implemented from
//! scratch per FIPS-197.
//!
//! Only the forward cipher is provided because both of Aria's uses of AES —
//! CTR-mode encryption ([`crate::ctr`]) and CMAC ([`crate::cmac`]) — need
//! just the block-encrypt primitive.
//!
//! The implementation uses a single compile-time generated T-table (the
//! classic 32-bit round-function lookup) with rotations standing in for the
//! other three tables. The S-box and T-table are derived at compile time
//! from the GF(2^8) field arithmetic, so there are no hand-transcribed
//! constants to get wrong; correctness is pinned by the FIPS-197 appendix
//! vectors in the tests.

/// Multiply two elements of GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1.
const fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
        i += 1;
    }
    p
}

/// Multiplicative inverse in GF(2^8) (0 maps to 0), via a^254.
const fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    let mut r = 1u8;
    let mut base = a;
    let mut e = 254u32;
    while e > 0 {
        if e & 1 == 1 {
            r = gf_mul(r, base);
        }
        base = gf_mul(base, base);
        e >>= 1;
    }
    r
}

const fn sbox_entry(i: u8) -> u8 {
    let x = gf_inv(i);
    x ^ x.rotate_left(1) ^ x.rotate_left(2) ^ x.rotate_left(3) ^ x.rotate_left(4) ^ 0x63
}

const fn build_sbox() -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        t[i] = sbox_entry(i as u8);
        i += 1;
    }
    t
}

/// The AES substitution box.
pub(crate) const SBOX: [u8; 256] = build_sbox();

/// T0[x] packs the MixColumns-weighted S-box column `[2·S(x), S(x), S(x), 3·S(x)]`
/// as a big-endian u32; the other three tables are byte rotations of this one.
const fn build_t0() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let s = SBOX[i];
        let s2 = gf_mul(s, 2);
        let s3 = gf_mul(s, 3);
        t[i] = ((s2 as u32) << 24) | ((s as u32) << 16) | ((s as u32) << 8) | (s3 as u32);
        i += 1;
    }
    t
}

const T0: [u32; 256] = build_t0();

/// Round constants for the key schedule.
const RCON: [u32; 10] = [
    0x0100_0000,
    0x0200_0000,
    0x0400_0000,
    0x0800_0000,
    0x1000_0000,
    0x2000_0000,
    0x4000_0000,
    0x8000_0000,
    0x1b00_0000,
    0x3600_0000,
];

#[inline]
fn sub_word(w: u32) -> u32 {
    ((SBOX[(w >> 24) as usize] as u32) << 24)
        | ((SBOX[((w >> 16) & 0xff) as usize] as u32) << 16)
        | ((SBOX[((w >> 8) & 0xff) as usize] as u32) << 8)
        | (SBOX[(w & 0xff) as usize] as u32)
}

/// An expanded AES-128 encryption key.
///
/// Construction performs the full key schedule once; encrypting a block is
/// then ten table-lookup rounds with no per-call allocation.
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [u32; 44],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes128").finish_non_exhaustive()
    }
}

impl Aes128 {
    /// Expand a 16-byte key into the 11 round keys.
    pub fn new(key: &[u8; 16]) -> Self {
        let mut rk = [0u32; 44];
        for i in 0..4 {
            rk[i] =
                u32::from_be_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        for i in 4..44 {
            let mut t = rk[i - 1];
            if i % 4 == 0 {
                t = sub_word(t.rotate_left(8)) ^ RCON[i / 4 - 1];
            }
            rk[i] = rk[i - 4] ^ t;
        }
        Aes128 { round_keys: rk }
    }

    /// Encrypt one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        let rk = &self.round_keys;
        let mut s0 = u32::from_be_bytes([block[0], block[1], block[2], block[3]]) ^ rk[0];
        let mut s1 = u32::from_be_bytes([block[4], block[5], block[6], block[7]]) ^ rk[1];
        let mut s2 = u32::from_be_bytes([block[8], block[9], block[10], block[11]]) ^ rk[2];
        let mut s3 = u32::from_be_bytes([block[12], block[13], block[14], block[15]]) ^ rk[3];

        #[inline(always)]
        fn round(a: u32, b: u32, c: u32, d: u32, k: u32) -> u32 {
            T0[(a >> 24) as usize]
                ^ T0[((b >> 16) & 0xff) as usize].rotate_right(8)
                ^ T0[((c >> 8) & 0xff) as usize].rotate_right(16)
                ^ T0[(d & 0xff) as usize].rotate_right(24)
                ^ k
        }

        for r in 1..10 {
            let t0 = round(s0, s1, s2, s3, rk[4 * r]);
            let t1 = round(s1, s2, s3, s0, rk[4 * r + 1]);
            let t2 = round(s2, s3, s0, s1, rk[4 * r + 2]);
            let t3 = round(s3, s0, s1, s2, rk[4 * r + 3]);
            s0 = t0;
            s1 = t1;
            s2 = t2;
            s3 = t3;
        }

        // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
        #[inline(always)]
        fn last(a: u32, b: u32, c: u32, d: u32, k: u32) -> u32 {
            (((SBOX[(a >> 24) as usize] as u32) << 24)
                | ((SBOX[((b >> 16) & 0xff) as usize] as u32) << 16)
                | ((SBOX[((c >> 8) & 0xff) as usize] as u32) << 8)
                | (SBOX[(d & 0xff) as usize] as u32))
                ^ k
        }

        let o0 = last(s0, s1, s2, s3, rk[40]);
        let o1 = last(s1, s2, s3, s0, rk[41]);
        let o2 = last(s2, s3, s0, s1, rk[42]);
        let o3 = last(s3, s0, s1, s2, rk[43]);

        block[0..4].copy_from_slice(&o0.to_be_bytes());
        block[4..8].copy_from_slice(&o1.to_be_bytes());
        block[8..12].copy_from_slice(&o2.to_be_bytes());
        block[12..16].copy_from_slice(&o3.to_be_bytes());
    }

    /// Encrypt a block, returning the ciphertext instead of mutating.
    pub fn encrypt(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut out = *block;
        self.encrypt_block(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    #[test]
    fn sbox_known_entries() {
        // Spot-check against the published FIPS-197 S-box.
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
        assert_eq!(SBOX[0x10], 0xca);
    }

    #[test]
    fn fips197_appendix_b() {
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let pt: [u8; 16] = hex("3243f6a8885a308d313198a2e0370734").try_into().unwrap();
        let aes = Aes128::new(&key);
        assert_eq!(aes.encrypt(&pt).to_vec(), hex("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn fips197_appendix_c1() {
        let key: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let pt: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let aes = Aes128::new(&key);
        assert_eq!(aes.encrypt(&pt).to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    #[test]
    fn encrypt_is_deterministic_and_key_dependent() {
        let a = Aes128::new(&[0u8; 16]);
        let b = Aes128::new(&[1u8; 16]);
        let block = [0x42u8; 16];
        assert_eq!(a.encrypt(&block), a.encrypt(&block));
        assert_ne!(a.encrypt(&block), b.encrypt(&block));
    }

    #[test]
    fn gf_mul_basics() {
        assert_eq!(gf_mul(0x57, 0x83), 0xc1); // FIPS-197 §4.2 example
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
        assert_eq!(gf_mul(1, 0xab), 0xab);
        assert_eq!(gf_mul(0, 0xab), 0);
    }

    #[test]
    fn gf_inv_roundtrip() {
        for x in 1..=255u8 {
            assert_eq!(gf_mul(x, gf_inv(x)), 1, "x = {x}");
        }
    }
}
