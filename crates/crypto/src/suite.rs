//! Pluggable cipher-suite abstraction used by every Aria component that
//! encrypts or authenticates bytes.
//!
//! Two implementations are provided:
//!
//! * [`RealSuite`] — AES-128-CTR + AES-CMAC exactly as the paper's
//!   implementation uses via the SGX SDK (`sgx_aes_ctr_encrypt`,
//!   `sgx_rijndael128_cmac`). This is the default everywhere.
//! * [`FastSuite`] — a keyed xorshift keystream and a keyed 128-bit
//!   mixing MAC. Exercises the identical code paths (data really is
//!   transformed, tampering really is detected by tag mismatch) but at a
//!   fraction of the host-CPU cost; intended only for the largest
//!   benchmark sweeps. Reported throughput is unaffected by the choice
//!   because the simulator charges crypto cycles from its cost model, not
//!   from wall time. **Not cryptographically secure.**

use crate::aes::Aes128;
use crate::cmac::{CmacKey, MAC_LEN};
use crate::ctr::ctr_crypt;

/// A 16-byte authentication tag.
pub type Mac = [u8; MAC_LEN];

/// Symmetric encryption + authentication provider.
///
/// Encryption is CTR-style: `crypt` is its own inverse given the same
/// counter block, and security relies on the caller never reusing a
/// counter for different plaintexts (Aria increments the per-KV counter on
/// every re-encryption).
pub trait CipherSuite: Send + Sync {
    /// Encrypt or decrypt `data` in place under the suite's encryption key
    /// and the given 16-byte counter block.
    fn crypt(&self, counter: &[u8; 16], data: &mut [u8]);

    /// MAC the concatenation of `parts` under the suite's MAC key.
    fn mac_parts(&self, parts: &[&[u8]]) -> Mac;

    /// MAC a single contiguous message.
    fn mac(&self, data: &[u8]) -> Mac {
        self.mac_parts(&[data])
    }

    /// Verify a tag over the concatenation of `parts`.
    fn verify_parts(&self, parts: &[&[u8]], tag: &Mac) -> bool {
        self.mac_parts(parts) == *tag
    }
}

/// Production suite: AES-128-CTR encryption + AES-CMAC authentication.
pub struct RealSuite {
    enc: Aes128,
    mac: CmacKey,
}

impl std::fmt::Debug for RealSuite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RealSuite").finish_non_exhaustive()
    }
}

impl RealSuite {
    /// Build from independent encryption and MAC keys.
    pub fn new(enc_key: &[u8; 16], mac_key: &[u8; 16]) -> Self {
        RealSuite { enc: Aes128::new(enc_key), mac: CmacKey::new(mac_key) }
    }

    /// Derive both keys from a single 16-byte master secret (domain
    /// separated by encrypting two distinct constants).
    pub fn from_master(master: &[u8; 16]) -> Self {
        let kdf = Aes128::new(master);
        let enc_key = kdf.encrypt(&[0x01; 16]);
        let mac_key = kdf.encrypt(&[0x02; 16]);
        RealSuite::new(&enc_key, &mac_key)
    }
}

impl CipherSuite for RealSuite {
    fn crypt(&self, counter: &[u8; 16], data: &mut [u8]) {
        ctr_crypt(&self.enc, counter, data);
    }

    fn mac_parts(&self, parts: &[&[u8]]) -> Mac {
        self.mac.mac_parts(parts)
    }
}

#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Harness-only suite: keyed xorshift keystream + keyed mixing MAC.
///
/// See the module docs for when this is appropriate. It preserves every
/// behavioural property the store relies on — deterministic keystream per
/// (key, counter), ciphertext differs from plaintext, any bit flip in the
/// message flips the tag with overwhelming probability — but offers no
/// cryptographic security.
#[derive(Debug, Clone)]
pub struct FastSuite {
    enc_seed: u64,
    mac_seed: u64,
}

impl FastSuite {
    /// Build from a 16-byte master secret.
    pub fn from_master(master: &[u8; 16]) -> Self {
        let a = u64::from_le_bytes(master[..8].try_into().unwrap());
        let b = u64::from_le_bytes(master[8..].try_into().unwrap());
        FastSuite { enc_seed: splitmix64(a ^ 0xa5a5), mac_seed: splitmix64(b ^ 0x5a5a) }
    }
}

impl CipherSuite for FastSuite {
    fn crypt(&self, counter: &[u8; 16], data: &mut [u8]) {
        let c0 = u64::from_le_bytes(counter[..8].try_into().unwrap());
        let c1 = u64::from_le_bytes(counter[8..].try_into().unwrap());
        let mut state = splitmix64(splitmix64(self.enc_seed ^ c0) ^ c1);
        let mut chunks = data.chunks_exact_mut(8);
        for chunk in &mut chunks {
            state = splitmix64(state);
            let ks = state.to_le_bytes();
            for (d, k) in chunk.iter_mut().zip(ks.iter()) {
                *d ^= k;
            }
        }
        let tail = chunks.into_remainder();
        if !tail.is_empty() {
            state = splitmix64(state);
            let ks = state.to_le_bytes();
            for (d, k) in tail.iter_mut().zip(ks.iter()) {
                *d ^= k;
            }
        }
    }

    fn mac_parts(&self, parts: &[&[u8]]) -> Mac {
        // 2x64-bit keyed multiply-mix over all bytes; length-prefixed per
        // part so ("ab","c") and ("a","bc") differ.
        let mut h0 = self.mac_seed;
        let mut h1 = self.mac_seed ^ 0x6a09_e667_f3bc_c908;
        let mut absorb = |word: u64| {
            h0 = splitmix64(h0 ^ word);
            h1 = h1.rotate_left(29) ^ splitmix64(word.wrapping_add(h1));
        };
        for part in parts {
            absorb(part.len() as u64 ^ 0xdead_beef);
            let mut chunks = part.chunks_exact(8);
            for chunk in &mut chunks {
                absorb(u64::from_le_bytes(chunk.try_into().unwrap()));
            }
            let rem = chunks.remainder();
            if !rem.is_empty() {
                let mut last = [0u8; 8];
                last[..rem.len()].copy_from_slice(rem);
                absorb(u64::from_le_bytes(last) ^ 0x0101_0101);
            }
        }
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&splitmix64(h0 ^ h1).to_le_bytes());
        out[8..].copy_from_slice(&splitmix64(h1.rotate_left(17) ^ h0).to_le_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suites() -> Vec<Box<dyn CipherSuite>> {
        vec![
            Box::new(RealSuite::from_master(&[0x11; 16])),
            Box::new(FastSuite::from_master(&[0x11; 16])),
        ]
    }

    #[test]
    fn crypt_roundtrip_both_suites() {
        for suite in suites() {
            for len in [0usize, 1, 7, 8, 9, 16, 33, 257] {
                let original: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
                let mut data = original.clone();
                suite.crypt(&[5u8; 16], &mut data);
                if len > 0 {
                    assert_ne!(data, original);
                }
                suite.crypt(&[5u8; 16], &mut data);
                assert_eq!(data, original);
            }
        }
    }

    #[test]
    fn mac_detects_tampering_both_suites() {
        for suite in suites() {
            let msg = b"the quick brown fox jumps over the lazy dog".to_vec();
            let tag = suite.mac(&msg);
            for i in 0..msg.len() {
                let mut bad = msg.clone();
                bad[i] ^= 0x40;
                assert_ne!(suite.mac(&bad), tag);
            }
        }
    }

    #[test]
    fn mac_parts_boundary_sensitivity() {
        for suite in suites() {
            // Part boundaries must be authenticated (length prefixing for
            // FastSuite; CMAC concatenation is handled by the store always
            // using fixed-width fields, but FastSuite hardens anyway).
            let t1 = suite.mac_parts(&[b"ab", b"c"]);
            let t2 = suite.mac_parts(&[b"a", b"bc"]);
            // RealSuite concatenates, so only FastSuite distinguishes; both
            // must at minimum be deterministic.
            assert_eq!(t1, suite.mac_parts(&[b"ab", b"c"]));
            assert_eq!(t2, suite.mac_parts(&[b"a", b"bc"]));
        }
    }

    #[test]
    fn different_counters_differ() {
        for suite in suites() {
            let mut a = vec![0u8; 64];
            let mut b = vec![0u8; 64];
            suite.crypt(&[0u8; 16], &mut a);
            suite.crypt(&[1u8; 16], &mut b);
            assert_ne!(a, b);
        }
    }
}
