//! AES counter-mode (CTR) encryption, mirroring `sgx_aes_ctr_encrypt`.
//!
//! Aria associates one 16-byte counter with each KV pair and bumps it on
//! every re-encryption, so a (key, counter) pair is never reused and the
//! keystream stays one-time. Encryption and decryption are the same
//! operation (xor with the keystream).

use crate::aes::Aes128;

/// Increment a 16-byte counter block as a big-endian 128-bit integer.
#[inline]
pub fn increment_counter(ctr: &mut [u8; 16]) {
    for byte in ctr.iter_mut().rev() {
        let (v, overflow) = byte.overflowing_add(1);
        *byte = v;
        if !overflow {
            return;
        }
    }
}

/// Encrypt or decrypt `data` in place with AES-CTR under `cipher`, starting
/// from counter block `iv`. The caller's `iv` is not modified; CTR blocks
/// are derived per 16-byte chunk.
pub fn ctr_crypt(cipher: &Aes128, iv: &[u8; 16], data: &mut [u8]) {
    let mut counter = *iv;
    let mut chunks = data.chunks_exact_mut(16);
    for chunk in &mut chunks {
        let keystream = cipher.encrypt(&counter);
        for (d, k) in chunk.iter_mut().zip(keystream.iter()) {
            *d ^= k;
        }
        increment_counter(&mut counter);
    }
    let tail = chunks.into_remainder();
    if !tail.is_empty() {
        let keystream = cipher.encrypt(&counter);
        for (d, k) in tail.iter_mut().zip(keystream.iter()) {
            *d ^= k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    /// NIST SP 800-38A F.5.1 (AES-128 CTR) — first two blocks.
    #[test]
    fn nist_sp800_38a_ctr() {
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let iv: [u8; 16] = hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff").try_into().unwrap();
        let mut data = hex("6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51");
        let cipher = Aes128::new(&key);
        ctr_crypt(&cipher, &iv, &mut data);
        assert_eq!(data, hex("874d6191b620e3261bef6864990db6ce9806f66b7970fdff8617187bb9fffdff"));
    }

    #[test]
    fn roundtrip_various_lengths() {
        let cipher = Aes128::new(&[7u8; 16]);
        let iv = [3u8; 16];
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 100, 4096] {
            let original: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let mut data = original.clone();
            ctr_crypt(&cipher, &iv, &mut data);
            if len > 0 {
                assert_ne!(data, original, "ciphertext equals plaintext at len {len}");
            }
            ctr_crypt(&cipher, &iv, &mut data);
            assert_eq!(data, original, "roundtrip failed at len {len}");
        }
    }

    #[test]
    fn different_counters_produce_different_ciphertext() {
        let cipher = Aes128::new(&[9u8; 16]);
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        ctr_crypt(&cipher, &[0u8; 16], &mut a);
        ctr_crypt(&cipher, &[1u8; 16], &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn counter_increment_carries() {
        let mut c = [0xffu8; 16];
        increment_counter(&mut c);
        assert_eq!(c, [0u8; 16]);

        let mut c = [0u8; 16];
        c[15] = 0xff;
        increment_counter(&mut c);
        assert_eq!(c[15], 0);
        assert_eq!(c[14], 1);
    }
}
