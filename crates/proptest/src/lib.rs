//! Vendored stand-in for the `proptest` crate, implementing the subset
//! this workspace uses so property tests run with no network access to
//! a registry:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(N))]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * strategies: integer/float ranges, [`any`], [`Just`], tuples,
//!   [`collection::vec`], weighted [`prop_oneof!`], and
//!   [`Strategy::prop_map`].
//!
//! Cases are generated from a seed derived from the test's module path
//! and name, so every run of a given binary sees the same inputs
//! (deterministic CI). Unlike real proptest there is **no shrinking**:
//! a failing case reports its inputs via `Debug` instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-block test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property (what `prop_assert!` returns and `?` propagates).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool, f64);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut StdRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// See [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// Strategy producing unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Weighted choice between strategies of one value type (the expansion
/// of [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
}

impl<V> Union<V> {
    /// Build from `(weight, strategy)` arms. Panics if empty or all
    /// weights are zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.gen_range(0..total);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Box a strategy for use in a [`Union`] (type-inference helper used by
/// [`prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Sources of a collection length: a fixed size or a range.
    pub trait SizeRange {
        /// Pick a length.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, Z> {
        elem: S,
        size: Z,
    }

    /// Strategy producing a `Vec` of `size.pick()` elements of `elem`.
    pub fn vec<S: Strategy, Z: SizeRange>(elem: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[doc(hidden)]
pub fn __seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[doc(hidden)]
pub fn __rng_for_case(seed: u64, case: u32) -> StdRng {
    StdRng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Assert a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{}: {:?} == {:?}", format!($($fmt)+), l, r);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{}: {:?} != {:?}", format!($($fmt)+), l, r);
    }};
}

/// Weighted choice: `prop_oneof![3 => a, 1 => b]` (or unweighted
/// `prop_oneof![a, b]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::boxed($strat))),+])
    };
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __seed = $crate::__seed_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::__rng_for_case(__seed, __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}  "),+),
                    $(&$arg),+
                );
                let __result = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = __result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name), __case, __cfg.cases, e, __inputs,
                    );
                }
            }
        }
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Get(u64),
        Put(u64, u8),
        Flush,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => (0u64..100).prop_map(Op::Get),
            2 => (0u64..100, any::<u8>()).prop_map(|(k, v)| Op::Put(k, v)),
            1 => Just(Op::Flush),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 5u64..10, y in 1usize..=3, f in 0.25f64..0.75) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((1..=3).contains(&y));
            prop_assert!((0.25..0.75).contains(&f), "f = {f}");
        }

        #[test]
        fn vecs_respect_size(v in collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5, "len {}", v.len());
        }

        #[test]
        fn nested_vec_and_tuples(
            rows in collection::vec((any::<bool>(), collection::vec(0u8..4, 3)), 1..4),
        ) {
            for (_, row) in &rows {
                prop_assert_eq!(row.len(), 3);
                for cell in row {
                    prop_assert!(*cell < 4);
                }
            }
        }

        #[test]
        fn oneof_covers_arms(ops in collection::vec(op_strategy(), 50)) {
            prop_assert_eq!(ops.len(), 50);
            for op in &ops {
                match op {
                    Op::Get(k) => prop_assert!(*k < 100),
                    Op::Put(k, _) => prop_assert!(*k < 100),
                    Op::Flush => {}
                }
            }
        }

        #[test]
        fn question_mark_propagates(x in any::<u32>()) {
            fn helper(x: u32) -> Result<u32, TestCaseError> {
                prop_assert!(x == x, "reflexivity");
                Ok(x)
            }
            let y = helper(x)?;
            prop_assert_eq!(x, y);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let s = collection::vec(any::<u64>(), 4);
        let a: Vec<u64> = Strategy::generate(&s, &mut crate::__rng_for_case(9, 3));
        let b: Vec<u64> = Strategy::generate(&s, &mut crate::__rng_for_case(9, 3));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failing_property_panics_with_inputs() {
        mod inner {
            use crate::prelude::*;
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                #[allow(dead_code)]
                fn always_fails(x in 0u8..4) {
                    prop_assert!(x > 200, "x = {x}");
                }
            }
            pub fn run() {
                always_fails();
            }
        }
        inner::run();
    }
}
